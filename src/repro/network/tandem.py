"""Packet-level tandem of two switches.

The Section-5.4 caveat made testable: the analytic network model feeds
each switch a Poisson stream, but real departure processes of
non-FIFO disciplines are not Poisson.  This simulator runs two
unit-rate exponential servers in series — every packet visits switch 0
then switch 1 — under any pair of queue policies, and measures per-user
mean queues at each hop.

For FIFO/FIFO the model is a Jackson network, so the measured queues
match the analytic per-switch M/M/1 allocations *exactly* in
distribution (Burke's theorem).  For priority ladders the comparison
quantifies the Poisson-output approximation error.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.exceptions import SimulationError
from repro.numerics.rng import default_rng
from repro.sim.measurements import QueueTracker
from repro.sim.packet import Packet
from repro.sim.queues import QueuePolicy, make_policy


@dataclass
class TandemConfig:
    """Configuration of a two-switch tandem simulation.

    Attributes
    ----------
    rates:
        Per-user Poisson arrival rates (every user crosses both
        switches).
    policies:
        Two queue policies (instances or names); entry 0 is the first
        hop.
    service_rates:
        Per-switch exponential service rates.
    horizon, warmup, seed, n_batches:
        As in the single-switch simulator.
    """

    rates: Sequence[float]
    policies: Sequence[Union[str, QueuePolicy]] = ("fifo", "fifo")
    service_rates: Sequence[float] = (1.0, 1.0)
    horizon: float = 20000.0
    warmup: float = 1000.0
    seed: int = 0
    n_batches: int = 20


@dataclass
class TandemResult:
    """Measured outcome: per-switch, per-user mean queues.

    Attributes
    ----------
    mean_queues:
        Shape ``(2, N)``: time-average number of user ``i``'s packets
        at each switch.
    total_mean_queues:
        Per-user sums across both switches (the network ``c_i``).
    batches:
        Per-switch batch-means summaries.
    arrivals, departures:
        External arrivals and final (second-hop) departures.
    """

    mean_queues: np.ndarray
    total_mean_queues: np.ndarray
    batches: list
    arrivals: int
    departures: int


def _resolve(policy, rates, n_users):
    if isinstance(policy, QueuePolicy):
        return policy
    return make_policy(policy, rates=rates, n_users=n_users)


def simulate_tandem(config: TandemConfig) -> TandemResult:
    """Run the two-hop tandem to its horizon.

    Both servers are exponential, so the same jump-chain trick as the
    single-switch engine applies independently at each hop: whenever a
    hop's state changes, its next completion is redrawn ``Exp(mu)`` for
    whichever packet its policy serves.
    """
    rates = np.asarray(config.rates, dtype=float)
    if rates.ndim != 1 or rates.size == 0:
        raise SimulationError("rates must be a non-empty vector")
    if np.any(rates <= 0.0):
        raise SimulationError(f"rates must be positive, got {rates}")
    if len(config.policies) != 2 or len(config.service_rates) != 2:
        raise SimulationError("a tandem has exactly two hops")
    mu = [float(s) for s in config.service_rates]
    if any(s <= 0.0 for s in mu):
        raise SimulationError("service rates must be positive")
    if config.horizon <= config.warmup:
        raise SimulationError("horizon must exceed warmup")
    n = rates.size
    hops = [_resolve(config.policies[k], rates, n) for k in range(2)]
    rng = default_rng(config.seed)
    trackers = [QueueTracker(n, warmup=config.warmup) for _ in range(2)]
    for tracker in trackers:
        tracker.configure_batches(config.horizon,
                                  n_batches=config.n_batches)

    # greedwork: ignore[GW501] -- single-stream tandem toy engine
    # predates VariateStream; its draw order is pinned by the event
    # loop itself and golden-tested, and it never enters CRN pairing.
    arrivals_heap = [(float(rng.exponential(1.0 / rates[i])), i)
                     for i in range(n)]
    heapq.heapify(arrivals_heap)
    completion = [math.inf, math.inf]
    now = 0.0
    n_arrivals = 0
    n_departures = 0

    def advance(t: float) -> None:
        trackers[0].advance(t)
        trackers[1].advance(t)

    def redraw(hop: int) -> None:
        # greedwork: ignore[GW501] -- see the arrivals_heap note above.
        completion[hop] = (now + float(rng.exponential(1.0 / mu[hop]))
                           if len(hops[hop]) > 0 else math.inf)

    # greedwork: ignore[GW503] -- golden-tested two-hop toy engine
    # predating the chunked kernels; the sharded switch-graph engine
    # (repro.network.sharded) is the chunked-era replacement.
    while True:
        next_arrival = arrivals_heap[0][0]
        next_event = min(next_arrival, completion[0], completion[1])
        if next_event >= config.horizon:
            advance(config.horizon)
            break
        if next_arrival <= completion[0] and next_arrival <= completion[1]:
            event_time, user = heapq.heappop(arrivals_heap)
            advance(event_time)
            now = event_time
            hops[0].push(Packet(user=user, arrival_time=now), rng=rng)
            trackers[0].on_arrival(user)
            n_arrivals += 1
            heapq.heappush(
                arrivals_heap,
                # greedwork: ignore[GW501] -- see arrivals_heap note.
                (now + float(rng.exponential(1.0 / rates[user])), user))
            redraw(0)
        elif completion[0] <= completion[1]:
            advance(completion[0])
            now = completion[0]
            done = hops[0].complete(rng)
            trackers[0].on_departure(done.user)
            # Forward to the second hop as a fresh packet event.
            forwarded = Packet(user=done.user, arrival_time=now)
            hops[1].push(forwarded, rng=rng)
            trackers[1].on_arrival(done.user)
            redraw(0)
            redraw(1)
        else:
            advance(completion[1])
            now = completion[1]
            done = hops[1].complete(rng)
            done.departure_time = now
            trackers[1].on_departure(done.user)
            n_departures += 1
            redraw(1)

    mean_queues = np.vstack([trackers[0].mean_queues(),
                             trackers[1].mean_queues()])
    return TandemResult(mean_queues=mean_queues,
                        total_mean_queues=mean_queues.sum(axis=0),
                        batches=[trackers[0].batch_means(),
                                 trackers[1].batch_means()],
                        arrivals=n_arrivals, departures=n_departures)
