"""Exception hierarchy for the greedwork reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors
(``TypeError``, ``KeyError``, ...) from their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FeasibilityError(ReproError):
    """An allocation or rate vector violates the queueing feasibility set.

    Raised, for example, when a rate vector lies outside the natural
    domain ``D = {r : r_i > 0 and sum(r) < 1}`` of a nonstalling
    discipline, or when an allocation breaks the Coffman-Mitrani subset
    constraints.
    """


class ConvergenceError(ReproError):
    """An iterative solver failed to reach its tolerance.

    Attributes
    ----------
    iterations:
        Number of iterations completed before giving up.
    residual:
        Final residual (solver specific; ``nan`` when unavailable).
    """

    def __init__(self, message: str, iterations: int = 0,
                 residual: float = float("nan")) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class UtilityDomainError(ReproError):
    """A utility function was evaluated outside its admissible domain."""


class DisciplineError(ReproError):
    """A service discipline was configured or queried inconsistently."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistent state."""


class MechanismError(ReproError):
    """A revelation/allocation mechanism received invalid reports."""


class SweepError(ReproError):
    """A scenario-sweep catalog, journal, or schedule is inconsistent.

    Raised, for example, when a catalog spec names an unknown axis or
    policy, when a journal on disk belongs to a different catalog
    digest than the one being resumed, or when ``sweep resume`` finds
    no journal to resume from.
    """
