"""Symmetry-class Nash solving: the K-class reduction of the N-user game.

Profiles of interest contain a handful of *distinct* utility types;
because acceptable allocations are symmetric under user permutation
(Section 2), the N-user game collapses to a K-class game with
multiplicities.  Starting from a class-symmetric point, simultaneous
best responses preserve the symmetry — every member of a class faces
the same deviation problem — so the damped best-response iteration of
:func:`repro.game.nash.solve_nash` runs unchanged on the K-dimensional
reduced game.  That is what :func:`solve_nash_classes` does: the same
fixed-point driver and grid-zoom maximizer, with congestion evaluated
through the O(K) class-space paths
(:meth:`~repro.disciplines.base.AllocationFunction.class_congestion`,
:meth:`~repro.disciplines.base.AllocationFunction
.class_deviation_evaluator`), making exact equilibria tractable at
N=10^4+ where the per-user solver's O(N) inner loop is prohibitive.

Results are *certified twice*: in class space (the max class deviation
gain, exact for the full game by symmetry) and by expansion — a
bounded number of per-user :func:`~repro.game.best_response
.utility_improvement` spot checks against the expanded N-vector, which
exercise the completely independent per-user evaluation path.

Per-user O(N) loops do not belong in this module; the GW107
staticcheck rule enforces that, and the deliberately bounded
certification loop carries the one justified suppression.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize as sp_optimize

from repro.disciplines.base import check_classes, expand_class_rates
from repro.game.best_response import (
    MIN_RATE,
    _default_rate_cap,
    utility_improvement,
)
from repro.numerics import instrumentation
from repro.numerics.iterate import damped_fixed_point
from repro.numerics.optimize import ScalarMaxResult, multistart_maximize
from repro.users.utility import Utility


@dataclass(frozen=True)
class ClassProfile:
    """A partition of N users into K utility classes.

    Attributes
    ----------
    utilities:
        One representative utility per class.
    counts:
        Users per class (positive).
    members:
        Original user indices per class when the partition was
        detected from a per-user profile (:func:`detect_classes`);
        ``None`` when the profile was specified directly in class
        form.  Expansion uses it to restore the original user order.
    """

    utilities: Tuple[Utility, ...]
    counts: Tuple[int, ...]
    members: Optional[Tuple[Tuple[int, ...], ...]] = None

    def __post_init__(self) -> None:
        if len(self.utilities) != len(self.counts):
            raise ValueError(
                f"{len(self.utilities)} utilities for "
                f"{len(self.counts)} counts")
        if any(int(m) < 1 for m in self.counts):
            raise ValueError(f"class counts must be positive, "
                             f"got {self.counts}")
        if self.members is not None:
            if len(self.members) != len(self.counts):
                raise ValueError("members does not match classes")
            if any(len(idx) != int(m)
                   for idx, m in zip(self.members, self.counts)):
                raise ValueError("members does not match counts")

    @property
    def n_classes(self) -> int:
        return len(self.counts)

    @property
    def n_users(self) -> int:
        return int(sum(self.counts))

    def counts_array(self) -> np.ndarray:
        """The multiplicities as an integer array."""
        return np.asarray(self.counts, dtype=int)

    def scatter(self, class_values: Sequence[float]) -> np.ndarray:
        """Per-user vector from per-class values.

        Original user order when :attr:`members` is known, class-block
        order otherwise.
        """
        values = np.asarray(class_values, dtype=float)
        if values.size != self.n_classes:
            raise ValueError(
                f"expected {self.n_classes} class values, "
                f"got {values.size}")
        if self.members is None:
            return np.repeat(values, self.counts_array())
        out = np.empty(self.n_users)
        for k, indices in enumerate(self.members):
            out[list(indices)] = values[k]
        return out


def _utility_key(utility: Utility) -> Tuple[object, ...]:
    """A hashable identity key grouping exactly-equal utilities."""
    try:
        attrs = vars(utility)
    except TypeError:                       # __slots__ or builtins
        attrs = {}
    items: List[Tuple[str, object]] = []
    for name in sorted(attrs):
        value = attrs[name]
        if isinstance(value, Utility):
            items.append((name, _utility_key(value)))
        else:
            items.append((name, repr(value)))
    return (type(utility).__module__, type(utility).__qualname__,
            tuple(items))


def detect_classes(profile: Sequence[Utility]) -> ClassProfile:
    """Group a per-user profile into utility classes.

    Users whose utilities are of the same type with identical
    parameters share a class; classes are ordered by first appearance,
    and the returned :attr:`ClassProfile.members` remembers each
    user's original index so expanded results come back in input
    order.
    """
    if not profile:
        raise ValueError("profile must contain at least one utility")
    groups: Dict[Tuple[object, ...], int] = {}
    utilities: List[Utility] = []
    members: List[List[int]] = []
    for index, utility in enumerate(profile):
        key = _utility_key(utility)
        slot = groups.get(key)
        if slot is None:
            slot = len(utilities)
            groups[key] = slot
            utilities.append(utility)
            members.append([])
        members[slot].append(index)
    return ClassProfile(
        utilities=tuple(utilities),
        counts=tuple(len(idx) for idx in members),
        members=tuple(tuple(idx) for idx in members))


def class_best_response(allocation, utility: Utility,
                        class_rates: Sequence[float],
                        counts: Sequence[int], i: int,
                        include_self: bool = False,
                        r_max: Optional[float] = None,
                        n_scan: int = 65,
                        tol: float = 1e-11) -> ScalarMaxResult:
    """Best response of one member of class ``i`` in class space.

    The same scan + grid-zoom maximization as
    :func:`repro.game.best_response.best_response`, with congestion
    evaluated through the O(K)
    :meth:`~repro.disciplines.base.AllocationFunction
    .class_deviation_evaluator`.  Honors the solver-vectorization
    switch: when vectorization is off the evaluator is consumed
    point-by-point through the golden-section path, keeping the scalar
    oracle available in class space too.
    """
    evaluator = allocation.class_deviation_evaluator(
        class_rates, counts, i, include_self=include_self)
    hi = _default_rate_cap(allocation) if r_max is None else float(r_max)

    def objective(x: float) -> float:
        value = float(evaluator(np.asarray([x]))[0])
        return utility.value(x, value)

    grid = None
    if instrumentation.vectorized():
        def grid(xs: np.ndarray) -> np.ndarray:
            return utility.value_grid(xs, evaluator(xs))

    result = multistart_maximize(objective, MIN_RATE, hi, n_scan=n_scan,
                                 tol=tol, grid_func=grid)
    instrumentation.record(objective_evals=result.evaluations,
                           congestion_evals=result.evaluations,
                           grid_calls=result.grid_calls,
                           wall_time=result.wall_time)
    return result


def class_best_response_map(allocation, utilities: Sequence[Utility],
                            class_rates: Sequence[float],
                            counts: Sequence[int],
                            include_self: bool = False,
                            r_max: Optional[float] = None,
                            n_scan: int = 65) -> np.ndarray:
    """Simultaneous class best responses ``B(c)_k``.

    Fixed points are exactly the class-symmetric Nash equilibria of
    the expanded game (``include_self=False``) or the mean-field
    equilibria (``include_self=True``).
    """
    c, m = check_classes(class_rates, counts)
    if len(utilities) != c.size:
        raise ValueError(
            f"{len(utilities)} utilities for {c.size} classes")
    out = np.empty_like(c)
    for k, utility in enumerate(utilities):
        out[k] = class_best_response(allocation, utility, c, m, k,
                                     include_self=include_self,
                                     r_max=r_max, n_scan=n_scan).x
    return out


@dataclass
class ClassNashResult:
    """A class-space Nash equilibrium candidate.

    Attributes
    ----------
    class_rates / class_congestion / class_utilities:
        Per-class equilibrium values (each member of class ``k``
        sends ``class_rates[k]``).
    counts:
        Users per class.
    converged:
        Whether the damped fixed point met its tolerance.
    iterations:
        Fixed-point iterations used.
    max_gain:
        Largest class-space deviation gain — by symmetry this *is*
        the max unilateral gain over all N users (certificate).
    spot_gain:
        Largest gain among the expanded per-user spot checks
        (``nan`` when certification was skipped); computed through
        the independent per-user evaluation path.
    method:
        Solver tag (``"class-space"``).
    members:
        Original user indices per class when known (see
        :class:`ClassProfile`).
    """

    class_rates: np.ndarray
    class_congestion: np.ndarray
    class_utilities: np.ndarray
    counts: np.ndarray
    converged: bool
    iterations: int
    max_gain: float
    spot_gain: float
    method: str
    members: Optional[Tuple[Tuple[int, ...], ...]] = None

    @property
    def n_users(self) -> int:
        return int(self.counts.sum())

    def _scatter(self, values: np.ndarray) -> np.ndarray:
        if self.members is None:
            return np.repeat(values, self.counts)
        out = np.empty(self.n_users)
        for k, indices in enumerate(self.members):
            out[list(indices)] = values[k]
        return out

    def expand_rates(self) -> np.ndarray:
        """The equilibrium as a full per-user rate vector."""
        return self._scatter(self.class_rates)

    def expand_congestion(self) -> np.ndarray:
        """Per-user congestion at the equilibrium."""
        return self._scatter(self.class_congestion)

    def expand_utilities(self) -> np.ndarray:
        """Per-user utility levels at the equilibrium."""
        return self._scatter(self.class_utilities)

    def is_equilibrium(self, tol: float = 1e-6) -> bool:
        """Whether no user can gain more than ``tol`` by deviating."""
        return self.max_gain <= tol


def _class_gains(allocation, utilities: Sequence[Utility],
                 class_rates: np.ndarray, counts: np.ndarray,
                 class_utilities: np.ndarray,
                 include_self: bool = False) -> float:
    """Max class-space deviation gain (the reduced-game certificate)."""
    worst = -math.inf
    for k, utility in enumerate(utilities):
        best = class_best_response(allocation, utility, class_rates,
                                   counts, k, include_self=include_self)
        current = float(class_utilities[k])
        if math.isinf(current) and math.isinf(best.value):
            gain = 0.0
        else:
            gain = best.value - current
        worst = max(worst, gain)
    return worst


def certify_expansion(allocation, utilities: Sequence[Utility],
                      class_rates: Sequence[float],
                      counts: Sequence[int],
                      users_per_class: int = 1) -> float:
    """Exact per-user spot checks of an expanded class equilibrium.

    Expands the class rates to the full N-vector and measures the
    unilateral :func:`~repro.game.best_response.utility_improvement`
    of up to ``users_per_class`` members of every class against it —
    the per-user evaluation path end to end, independent of the
    class-space formulas.  Returns the largest gain observed.
    """
    c, m = check_classes(class_rates, counts)
    expanded = expand_class_rates(c, m)
    starts = np.concatenate(([0], np.cumsum(m)[:-1]))
    worst = -math.inf
    # greedwork: ignore[GW107] -- deliberately bounded spot check:
    # users_per_class members of each of K classes, never O(N); this
    # is the expansion certificate the class-space solver ships with.
    for k, utility in enumerate(utilities):
        for j in range(min(int(users_per_class), int(m[k]))):
            gain = utility_improvement(allocation, utility, expanded,
                                       int(starts[k]) + j)
            worst = max(worst, gain)
    return worst


def _resolve_classes(allocation, profile: Sequence[Utility],
                     counts: Optional[Sequence[int]]
                     ) -> Tuple[Tuple[Utility, ...], np.ndarray,
                                Optional[Tuple[Tuple[int, ...], ...]]]:
    """Normalize a per-user or class-form profile to class form."""
    if counts is None:
        detected = detect_classes(profile)
        return detected.utilities, detected.counts_array(), detected.members
    utilities = tuple(profile)
    counts_arr = np.asarray(counts, dtype=int)
    if counts_arr.ndim != 1 or counts_arr.size != len(utilities):
        raise ValueError(
            f"counts must be 1-D of length {len(utilities)}, got shape "
            f"{counts_arr.shape}")
    if counts_arr.size and int(counts_arr.min()) < 1:
        raise ValueError(f"class counts must be positive, got {counts_arr}")
    return utilities, counts_arr, None


def _default_class_start(allocation, counts: np.ndarray) -> np.ndarray:
    """Equal split at 50% load — :func:`repro.game.nash.default_start`
    collapsed to class space."""
    n_users = int(counts.sum())
    capacity = getattr(getattr(allocation, "curve", None), "capacity",
                       math.inf)
    level = capacity if math.isfinite(capacity) else 1.0
    return np.full(counts.size, 0.5 * level / n_users)


def class_fdc_residuals(allocation, utilities: Sequence[Utility],
                        class_rates: Sequence[float],
                        counts: Sequence[int]) -> np.ndarray:
    """Nash first-derivative-condition residuals in class space.

    Entry ``k`` is ``E_k = M_k(s_k, C_k) + dC/dx`` for one member of
    class ``k`` deviating — zero at an interior class-symmetric Nash
    equilibrium.  The slope comes from
    :meth:`~repro.disciplines.base.AllocationFunction
    .class_own_derivative` (analytic for the core families), so the
    residual costs O(K) per call.
    """
    c, m = check_classes(class_rates, counts)
    if len(utilities) != c.size:
        raise ValueError(
            f"{len(utilities)} utilities for {c.size} classes")
    congestion = allocation.class_congestion(c, m)
    out = np.empty(c.size)
    for k, utility in enumerate(utilities):
        if not math.isfinite(float(congestion[k])):
            out[k] = 1e6
            continue
        ratio = utility.marginal_ratio(float(c[k]), float(congestion[k]))
        out[k] = ratio + allocation.class_own_derivative(c, m, k)
    return out


def solve_nash_classes_fdc(allocation, profile: Sequence[Utility],
                           counts: Optional[Sequence[int]] = None,
                           r0: Optional[Sequence[float]] = None,
                           tol: float = 1e-10,
                           certify_users: int = 1) -> ClassNashResult:
    """Root-find the class-space Nash first-derivative conditions.

    The K-dimensional twin of :func:`repro.game.nash.solve_nash_fdc`:
    Newton-quality precision where the damped best-response iteration
    is limited by the flat-objective noise floor of derivative-free
    maximization (~``sqrt(eps)`` on rates).  As in the per-user
    solver, every root is re-certified with actual best responses; use
    ``r0`` (typically a :func:`solve_nash_classes` result) to select
    the basin when equilibria are not unique.
    """
    utilities, counts_arr, members = _resolve_classes(
        allocation, profile, counts)
    _, m = check_classes(np.zeros(counts_arr.size), counts_arr)
    start = (_default_class_start(allocation, m) if r0 is None
             else np.asarray(r0, dtype=float))

    def residuals(c: np.ndarray) -> np.ndarray:
        return class_fdc_residuals(allocation, utilities, np.abs(c), m)

    solution = sp_optimize.root(residuals, start, method="hybr",
                                options={"xtol": tol})
    class_rates = np.abs(np.asarray(solution.x, dtype=float))
    converged = bool(solution.success) and bool(np.all(class_rates > 0.0))
    congestion = allocation.class_congestion(class_rates, m)
    class_utilities = np.asarray(
        [utility.value(float(class_rates[k]), float(congestion[k]))
         for k, utility in enumerate(utilities)], dtype=float)
    max_gain = _class_gains(allocation, utilities, class_rates, m,
                            class_utilities)
    spot_gain = math.nan
    if certify_users > 0:
        spot_gain = certify_expansion(allocation, utilities, class_rates,
                                      m, users_per_class=certify_users)
    return ClassNashResult(class_rates=class_rates,
                           class_congestion=congestion,
                           class_utilities=class_utilities,
                           counts=m, converged=converged,
                           iterations=int(solution.nfev),
                           max_gain=max_gain, spot_gain=spot_gain,
                           method="fdc-root-class", members=members)


def solve_nash_classes(allocation, profile: Sequence[Utility],
                       counts: Optional[Sequence[int]] = None,
                       r0: Optional[Sequence[float]] = None,
                       damping: float = 0.5, tol: float = 1e-9,
                       max_iter: int = 400,
                       certify_users: int = 1) -> ClassNashResult:
    """Damped best-response iteration on the K-class reduced game.

    Parameters
    ----------
    allocation:
        An allocation function exposing the class-space evaluation
        hooks (every discipline does; the five core families are
        O(K)).
    profile:
        Either a per-user profile (``counts is None``; classes are
        detected with :func:`detect_classes`) or one representative
        utility per class.
    counts:
        Users per class when ``profile`` is already in class form.
    r0:
        K-dimensional starting point; defaults to the equal split at
        50% load, matching :func:`repro.game.nash.default_start` for
        the expanded game.
    certify_users:
        Per-user expansion spot checks per class (0 skips the
        expansion certificate; the class-space ``max_gain``
        certificate is always computed).

    From a class-symmetric start the damped iteration coincides with
    the per-user :func:`~repro.game.nash.solve_nash` trajectory on the
    expanded game, so the result matches the exact solver to solver
    tolerance while doing O(K) work per step instead of O(N).
    """
    utilities, counts_arr, members = _resolve_classes(
        allocation, profile, counts)
    c0, m = check_classes(
        np.zeros(len(utilities)) if r0 is None else r0, counts_arr)
    if r0 is None:
        c0 = _default_class_start(allocation, m)

    def mapping(c: np.ndarray) -> np.ndarray:
        return class_best_response_map(allocation, utilities, c, m)

    outcome = damped_fixed_point(mapping, c0, damping=damping, tol=tol,
                                 max_iter=max_iter)
    class_rates = np.asarray(outcome.x, dtype=float)
    congestion = allocation.class_congestion(class_rates, m)
    class_utilities = np.asarray(
        [utility.value(float(class_rates[k]), float(congestion[k]))
         for k, utility in enumerate(utilities)], dtype=float)
    max_gain = _class_gains(allocation, utilities, class_rates, m,
                            class_utilities)
    spot_gain = math.nan
    if certify_users > 0:
        spot_gain = certify_expansion(allocation, utilities, class_rates,
                                      m, users_per_class=certify_users)
    return ClassNashResult(class_rates=class_rates,
                           class_congestion=congestion,
                           class_utilities=class_utilities,
                           counts=m, converged=outcome.converged,
                           iterations=outcome.iterations,
                           max_gain=max_gain, spot_gain=spot_gain,
                           method="class-space", members=members)
