"""Envy and the unilaterally envy-free property (Section 4.1.2).

User ``i`` envies user ``j`` when she would strictly prefer ``j``'s
allocation to her own, judged by *her own* utility (no interpersonal
comparison).  The paper's strong fairness notion is *unilateral*
envy-freeness: whenever a user has best-responded, she envies no one —
no matter what the others are doing.  Fair Share has it (Theorem 3);
FIFO does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.game.best_response import best_response
from repro.numerics.rng import default_rng
from repro.users.utility import Utility


def envy_matrix(profile: Sequence[Utility], rates: Sequence[float],
                congestion: Sequence[float]) -> np.ndarray:
    """``E[i, j] = U_i(r_j, c_j) - U_i(r_i, c_i)``.

    Positive entries mean ``i`` envies ``j``.  The diagonal is zero by
    construction.  Infinite congestions compare as equally bad.
    """
    r = np.asarray(rates, dtype=float)
    c = np.asarray(congestion, dtype=float)
    n = r.size
    out = np.zeros((n, n))
    with np.errstate(invalid="ignore"):
        for i, utility in enumerate(profile):
            own = utility.value(float(r[i]), float(c[i]))
            # One value_grid pass scores every rival allocation under
            # user i's utility; infinite-vs-infinite pairs tie at zero.
            others = utility.value_grid(r, c)
            gaps = others - own
            if np.isinf(own):
                gaps = np.where(np.isinf(others), 0.0, gaps)
            gaps[i] = 0.0
            out[i] = gaps
    return out


def max_envy(profile: Sequence[Utility], rates: Sequence[float],
             congestion: Sequence[float]) -> float:
    """Largest envy entry; ``<= 0`` iff the allocation is envy-free."""
    return float(envy_matrix(profile, rates, congestion).max())


@dataclass
class UnilateralEnvyOutcome:
    """Result of one unilateral-envy probe.

    Attributes
    ----------
    rates:
        Rate vector after user ``i`` best-responded.
    envy:
        Max envy user ``i`` feels toward anyone at that point.
    best_rate:
        The best response chosen.
    """

    rates: np.ndarray
    envy: float
    best_rate: float


def unilateral_envy(allocation, profile: Sequence[Utility],
                    opponent_rates: Sequence[float], i: int) -> (
        UnilateralEnvyOutcome):
    """Best-respond user ``i`` against ``opponent_rates``, measure envy.

    ``opponent_rates`` is a full-length vector whose ``i``-th entry is
    ignored.  An allocation function is unilaterally envy-free iff this
    envy is ``<= 0`` for every opponent configuration and every utility
    in AU.
    """
    r = np.asarray(opponent_rates, dtype=float).copy()
    response = best_response(allocation, profile[i], r, i)
    r[i] = response.x
    congestion = allocation.congestion(r)
    utility = profile[i]
    own = utility.value(float(r[i]), float(congestion[i]))
    others = utility.value_grid(r, congestion)
    with np.errstate(invalid="ignore"):
        gaps = others - own
    if np.isinf(own):
        gaps = np.where(np.isinf(others), 0.0, gaps)
    gaps[i] = -np.inf                       # never "envies" herself
    worst = float(np.max(gaps)) if r.size > 1 else -np.inf
    return UnilateralEnvyOutcome(rates=r, envy=worst,
                                 best_rate=float(response.x))


def search_unilateral_envy(allocation, profile: Sequence[Utility],
                           n_trials: int = 50,
                           rng: Optional[np.random.Generator] = None,
                           load_high: float = 0.95) -> UnilateralEnvyOutcome:
    """Adversarial search for positive unilateral envy.

    Samples random opponent rate vectors, best-responds each user in
    turn, and returns the single worst (most envious) outcome found.
    For Fair Share the returned envy should never be positive; for FIFO
    it usually is.
    """
    generator = default_rng(rng if rng is not None else 11)
    n = len(profile)
    alpha = np.ones(n)
    worst: Optional[UnilateralEnvyOutcome] = None
    for _ in range(n_trials):
        direction = generator.dirichlet(alpha)
        load = generator.uniform(0.1, load_high)
        rates = direction * load
        for i in range(n):
            outcome = unilateral_envy(allocation, profile, rates, i)
            if worst is None or outcome.envy > worst.envy:
                worst = outcome
    assert worst is not None  # n_trials >= 1 and n >= 1
    return worst
