"""Newton self-optimization dynamics and the relaxation matrix (§4.2.3).

Each user measures how far she is from her Nash condition,
``E_i = M_i(r_i, C_i(r)) + dC_i/dr_i``, and updates
``r_i <- r_i - E_i / (dE_i/dr_i)`` (Newton's method on her own FDC).
With synchronous updates the linearized error evolves by the relaxation
matrix

``A_ij = delta_ij - (dE_i/dr_j) / (dE_j/dr_j)``,

whose diagonal vanishes identically.  Theorem 7: under Fair Share ``A``
is strictly lower triangular in rate order — nilpotent, so the linear
dynamics die in at most ``N`` steps — and Fair Share is the only MAC
discipline with that property.  Under FIFO with identical linear
utilities the leading eigenvalue approaches ``1 - N``: unstable for
``N > 2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize as sp_optimize

from repro.users.utility import Utility

_H = 1e-6


def fdc_residuals(allocation, profile: Sequence[Utility],
                  rates: Sequence[float]) -> np.ndarray:
    """``E_i = M_i(r_i, C_i(r)) + dC_i/dr_i`` for each user."""
    r = np.asarray(rates, dtype=float)
    congestion = allocation.congestion(r)
    out = np.empty(r.size)
    for i, utility in enumerate(profile):
        if not math.isfinite(congestion[i]):
            out[i] = math.nan
            continue
        m = utility.marginal_ratio(float(r[i]), float(congestion[i]))
        out[i] = m + allocation.own_derivative(r, i)
    return out


def _marginal_ratio_partials(utility: Utility, r: float,
                             c: float) -> Tuple[float, float]:
    """Numeric ``(dM/dr, dM/dc)`` of the marginal-ratio surface."""
    dm_dr = (utility.marginal_ratio(r + _H, c)
             - utility.marginal_ratio(r - _H, c)) / (2.0 * _H)
    dm_dc = (utility.marginal_ratio(r, c + _H)
             - utility.marginal_ratio(r, c - _H)) / (2.0 * _H)
    return dm_dr, dm_dc


def fdc_jacobian(allocation, profile: Sequence[Utility],
                 rates: Sequence[float]) -> np.ndarray:
    """``dE_i/dr_j`` via the chain rule.

    ``dE_i/dr_j = (dM_i/dc) * dC_i/dr_j + delta_ij * dM_i/dr
    + d^2 C_i / dr_i dr_j``.
    """
    r = np.asarray(rates, dtype=float)
    n = r.size
    congestion = allocation.congestion(r)
    jac_c = allocation.jacobian(r)
    out = np.empty((n, n))
    for i, utility in enumerate(profile):
        dm_dr, dm_dc = _marginal_ratio_partials(
            utility, float(r[i]), float(congestion[i]))
        # Whole row at once: analytic under Fair Share / proportional,
        # one numeric pass otherwise — never N^2 scalar second partials.
        row = dm_dc * jac_c[i] + allocation.second_gradient_i(r, i)
        row[i] += dm_dr
        out[i] = row
    return out


def relaxation_matrix(allocation, profile: Sequence[Utility],
                      rates: Sequence[float]) -> np.ndarray:
    """``A_ij = delta_ij - (dE_i/dr_j)/(dE_j/dr_j)`` (zero diagonal)."""
    de = fdc_jacobian(allocation, profile, rates)
    n = de.shape[0]
    out = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            out[i, j] = (1.0 if i == j else 0.0) - de[i, j] / de[j, j]
    return out


def is_nilpotent(matrix: np.ndarray, tol: float = 1e-8) -> bool:
    """Whether ``matrix ** n`` vanishes (n = dimension)."""
    power = np.linalg.matrix_power(matrix, matrix.shape[0])
    scale = max(1.0, float(np.max(np.abs(matrix))) ** matrix.shape[0])
    return bool(np.max(np.abs(power)) <= tol * scale)


def spectral_radius(matrix: np.ndarray) -> float:
    """Largest eigenvalue magnitude."""
    return float(np.max(np.abs(np.linalg.eigvals(matrix))))


def newton_step(allocation, profile: Sequence[Utility],
                rates: Sequence[float],
                max_step: Optional[float] = None) -> np.ndarray:
    """One synchronous Newton update of all users' rates.

    ``max_step`` optionally clamps each user's move — pure Newton (the
    paper's Section 4.2.3 dynamics) is exact in the linear regime but
    can overshoot from far starts, like any Newton method.
    """
    r = np.asarray(rates, dtype=float)
    e = fdc_residuals(allocation, profile, r)
    de = fdc_jacobian(allocation, profile, r)
    delta = -e / np.diag(de)
    if max_step is not None:
        delta = np.clip(delta, -max_step, max_step)
    updated = r + delta
    return np.maximum(updated, 1e-9)


@dataclass
class NewtonTrajectory:
    """Trace of synchronous Newton dynamics.

    Attributes
    ----------
    rates:
        Iterates, shape ``(steps + 1, N)``.
    residual_norms:
        Sup-norm of ``E`` at each iterate.
    converged:
        Whether the residual dropped below tolerance.
    steps_to_converge:
        First step index with residual below tolerance (or -1).
    diverged:
        Whether the iteration blew up (residual overflow / NaN).
    """

    rates: np.ndarray
    residual_norms: np.ndarray
    converged: bool
    steps_to_converge: int
    diverged: bool


def _async_newton_step(allocation, profile: Sequence[Utility],
                       rates: np.ndarray,
                       max_step: Optional[float]) -> np.ndarray:
    """One Gauss-Seidel sweep: users update in turn, seeing the
    freshest rates of everyone before them."""
    r = rates.copy()
    for i in range(r.size):
        congestion_i = allocation.congestion_i(r, i)
        if not math.isfinite(congestion_i):
            continue
        m = profile[i].marginal_ratio(float(r[i]), float(congestion_i))
        e_i = m + allocation.own_derivative(r, i)
        # dE_i/dr_i via the same chain rule as the Jacobian diagonal.
        dm_dr, dm_dc = _marginal_ratio_partials(profile[i], float(r[i]),
                                                float(congestion_i))
        de_ii = (dm_dr + dm_dc * allocation.own_derivative(r, i)
                 + allocation.own_second_derivative(r, i))
        delta = -e_i / de_ii
        if max_step is not None:
            delta = min(max(delta, -max_step), max_step)
        r[i] = max(r[i] + delta, 1e-9)
    return r


def run_newton_dynamics(allocation, profile: Sequence[Utility],
                        r0: Sequence[float], n_steps: int = 50,
                        tol: float = 1e-8,
                        max_step: Optional[float] = None,
                        synchronous: bool = True) -> NewtonTrajectory:
    """Run Newton self-optimization dynamics from ``r0``.

    ``synchronous=True`` is the paper's Section-4.2.3 model: everyone
    updates at once (Jacobi), and the relaxation-matrix analysis
    applies — under Fair Share the nilpotent matrix kills the error in
    at most ``N`` steps; under FIFO with many users it diverges.
    ``synchronous=False`` runs Gauss-Seidel sweeps (users update in
    turn on fresh information), an ablation showing how much of FIFO's
    instability is an artifact of simultaneous moves.
    """
    r = np.asarray(r0, dtype=float).copy()
    trail: List[np.ndarray] = [r.copy()]
    norms: List[float] = []
    converged = False
    diverged = False
    steps_to_converge = -1
    for step in range(n_steps):
        e = fdc_residuals(allocation, profile, r)
        norm = float(np.max(np.abs(e)))
        norms.append(norm)
        if not math.isfinite(norm) or norm > 1e8:
            diverged = True
            break
        if norm < tol:
            converged = True
            steps_to_converge = step
            break
        if synchronous:
            r = newton_step(allocation, profile, r, max_step=max_step)
        else:
            r = _async_newton_step(allocation, profile, r, max_step)
        trail.append(r.copy())
    return NewtonTrajectory(rates=np.array(trail),
                            residual_norms=np.array(norms),
                            converged=converged,
                            steps_to_converge=steps_to_converge,
                            diverged=diverged)


def fifo_symmetric_linear_nash(n_users: int, gamma: float) -> float:
    """Symmetric Nash rate under FIFO for ``U = r - gamma c``.

    Solves ``(1 - S + r) / (1 - S)^2 = 1/gamma`` with ``S = N r``
    (the Nash FDC for the proportional allocation).
    """
    if n_users < 1:
        raise ValueError("need at least one user")
    if not 0.0 < gamma < 1.0:
        # dC_i/dr_i >= g'(0) = 1 everywhere, so a user with gamma >= 1
        # prefers r = 0: no interior symmetric equilibrium exists.
        raise ValueError(
            f"gamma must lie in (0, 1) for an interior FIFO equilibrium, "
            f"got {gamma}")

    def residual(r: float) -> float:
        total = n_users * r
        return (1.0 - total + r) - (1.0 - total) ** 2 / gamma

    lo, hi = 1e-12, (1.0 - 1e-12) / n_users
    return float(sp_optimize.brentq(residual, lo, hi))


def fifo_linear_eigenvalue(n_users: int, gamma: float) -> float:
    """Leading relaxation-matrix eigenvalue, FIFO + identical linear U.

    At the symmetric Nash point the relaxation matrix is
    ``-a (J - I)`` with ``a = (1 - S + 2r) / (2 (1 - S + r))``; its
    leading eigenvalue is ``-a (N - 1)``, which tends to ``1 - N`` as
    the load approaches capacity — the paper's instability example
    (stable only for ``N <= 2``).
    """
    r = fifo_symmetric_linear_nash(n_users, gamma)
    total = n_users * r
    if total >= 1.0:
        raise ValueError(
            f"symmetric Nash load {total} must stay below capacity 1")
    a = (1.0 - total + 2.0 * r) / (2.0 * (1.0 - total + r))
    return -a * (n_users - 1)
