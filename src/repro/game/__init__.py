"""Game-theoretic core: selfish users on a shared switch.

Implements the machinery of Sections 3.2 and 4: best responses, Nash
equilibria (existence, computation, uniqueness search), Pareto
optimality (weighted-sum frontier and FDC residuals), envy-freeness,
Stackelberg leadership, Newton relaxation dynamics and the relaxation
matrix, generalized hill climbing (iterated elimination of dominated
rates), revelation mechanisms, and protectiveness.

Large populations go through the symmetry-class reduction
(:mod:`repro.game.classes`) and its N→∞ limit
(:mod:`repro.game.meanfield`): K-class solves at O(K) per step with
expansion certificates back in the exact N-user game.
"""

from repro.game.best_response import best_response, best_response_map
from repro.game.classes import (
    ClassNashResult,
    ClassProfile,
    class_best_response,
    detect_classes,
    solve_nash_classes,
    solve_nash_classes_fdc,
)
from repro.game.meanfield import (
    meanfield_error,
    solve_nash_meanfield,
)
from repro.game.nash import (
    NashResult,
    find_all_nash,
    is_nash,
    solve_nash,
    solve_nash_fdc,
)
from repro.game.pareto import (
    ConstraintAdapter,
    ParetoResult,
    is_pareto_fdc,
    pareto_fdc_residuals,
    pareto_improvement,
    solve_weighted_pareto,
)
from repro.game.envy import (
    envy_matrix,
    max_envy,
    unilateral_envy,
)
from repro.game.stackelberg import (
    StackelbergResult,
    follower_equilibrium,
    leader_advantage,
    solve_stackelberg,
)
from repro.game.dynamics import (
    NewtonTrajectory,
    fdc_residuals,
    fifo_linear_eigenvalue,
    is_nilpotent,
    newton_step,
    relaxation_matrix,
    run_newton_dynamics,
)
from repro.game.learning import (
    AutomataResult,
    EliminationResult,
    iterated_elimination,
    learning_automata,
    stochastic_better_reply,
)
from repro.game.revelation import (
    MechanismOutcome,
    misreport_gain,
    nash_mechanism,
)
from repro.game.protection import (
    ProtectionReport,
    protection_bound,
    verify_protective,
    worst_case_congestion,
)

__all__ = [
    "best_response",
    "best_response_map",
    "ClassNashResult",
    "ClassProfile",
    "class_best_response",
    "detect_classes",
    "solve_nash_classes",
    "solve_nash_classes_fdc",
    "meanfield_error",
    "solve_nash_meanfield",
    "NashResult",
    "solve_nash",
    "solve_nash_fdc",
    "find_all_nash",
    "is_nash",
    "ConstraintAdapter",
    "ParetoResult",
    "pareto_fdc_residuals",
    "is_pareto_fdc",
    "solve_weighted_pareto",
    "pareto_improvement",
    "envy_matrix",
    "max_envy",
    "unilateral_envy",
    "StackelbergResult",
    "follower_equilibrium",
    "solve_stackelberg",
    "leader_advantage",
    "NewtonTrajectory",
    "fdc_residuals",
    "relaxation_matrix",
    "newton_step",
    "run_newton_dynamics",
    "is_nilpotent",
    "fifo_linear_eigenvalue",
    "EliminationResult",
    "iterated_elimination",
    "learning_automata",
    "AutomataResult",
    "stochastic_better_reply",
    "MechanismOutcome",
    "nash_mechanism",
    "misreport_gain",
    "ProtectionReport",
    "protection_bound",
    "worst_case_congestion",
    "verify_protective",
]
