"""Pareto optimality: frontier computation and FDC diagnostics.

An interior allocation is Pareto optimal only if every user's marginal
rate of substitution matches the constraint's marginal cost:
``M_i(r_i, c_i) = -df/dr_i`` (the paper's ``Z_i``).  For the M/M/1
curve ``df/dr_i = g'(sum r)`` is the same for everyone; for separable
constraints it is user specific.

The frontier itself is computed by maximizing weighted utility sums
over the *full* feasible set — equality ``sum c = f(r)`` plus the
Coffman-Mitrani subset inequalities, enumerated exactly for the small
``N`` used in experiments.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import optimize as sp_optimize

from repro.numerics.rng import default_rng
from repro.queueing.service_curves import ServiceCurve
from repro.users.utility import Utility


class ConstraintAdapter:
    """Uniform interface over total-congestion constraints.

    Wraps either a :class:`~repro.queueing.service_curves.ServiceCurve`
    (total congestion depends on total load only) or any object with
    ``total(rates)`` / ``partial(rates, i)`` methods (e.g. the
    separable sum-of-squares constraint of Corollary 2).
    """

    def __init__(self, source) -> None:
        self._curve: Optional[ServiceCurve] = None
        if isinstance(source, ServiceCurve):
            self._curve = source
        elif hasattr(source, "total") and hasattr(source, "partial"):
            self._generic = source
        else:
            raise TypeError(
                "constraint source must be a ServiceCurve or expose "
                f"total/partial, got {type(source).__name__}")

    @classmethod
    def for_allocation(cls, allocation) -> "ConstraintAdapter":
        """The constraint an allocation function is feasible against."""
        constraint = getattr(allocation, "constraint", None)
        if constraint is not None:
            return cls(constraint)
        return cls(allocation.curve)

    def total(self, rates: Sequence[float]) -> float:
        """``f(r)``: total congestion forced by the rate vector."""
        if self._curve is not None:
            return self._curve.value(float(np.sum(rates)))
        return self._generic.total(rates)

    def partial(self, rates: Sequence[float], i: int) -> float:
        """``df/dr_i``."""
        if self._curve is not None:
            return self._curve.derivative(float(np.sum(rates)))
        return self._generic.partial(rates, i)

    @property
    def has_subset_constraints(self) -> bool:
        """Whether the Coffman-Mitrani subset inequalities apply."""
        return self._curve is not None

    def subset_total(self, subset_rates: Sequence[float]) -> float:
        """Minimum aggregate congestion of a user subset."""
        if self._curve is None:
            raise ValueError("subset constraints only apply to curves")
        return self._curve.value(float(np.sum(subset_rates)))


@dataclass
class ParetoResult:
    """A point on the Pareto frontier.

    Attributes
    ----------
    rates, congestion:
        The allocation.
    utilities:
        Utility levels there.
    weights:
        The welfare weights that generated it.
    success:
        Whether the optimizer converged.
    """

    rates: np.ndarray
    congestion: np.ndarray
    utilities: np.ndarray
    weights: np.ndarray
    success: bool


def pareto_fdc_residuals(profile: Sequence[Utility],
                         rates: Sequence[float],
                         congestion: Sequence[float],
                         constraint: ConstraintAdapter) -> np.ndarray:
    """``M_i + df/dr_i`` for each user (zero at interior Pareto points)."""
    r = np.asarray(rates, dtype=float)
    c = np.asarray(congestion, dtype=float)
    out = np.empty(r.size)
    for i, utility in enumerate(profile):
        out[i] = (utility.marginal_ratio(float(r[i]), float(c[i]))
                  + constraint.partial(r, i))
    return out


def is_pareto_fdc(profile: Sequence[Utility], rates: Sequence[float],
                  congestion: Sequence[float],
                  constraint: ConstraintAdapter,
                  tol: float = 1e-5) -> bool:
    """Whether the interior Pareto first-derivative condition holds."""
    residuals = pareto_fdc_residuals(profile, rates, congestion, constraint)
    return bool(np.max(np.abs(residuals)) <= tol)


def _feasibility_constraints(n: int, constraint: ConstraintAdapter,
                             rate_cap: float):
    """Build SLSQP constraint dicts over the stacked variable (r, c)."""
    constraints = [{
        "type": "eq",
        "fun": lambda x: float(np.sum(x[n:]) - constraint.total(x[:n])),
    }]
    if constraint.has_subset_constraints:
        indices = range(n)
        for size in range(1, n):
            for subset in itertools.combinations(indices, size):
                idx = np.array(subset)
                constraints.append({
                    "type": "ineq",
                    "fun": (lambda x, idx=idx: float(
                        np.sum(x[n + idx])
                        - constraint.subset_total(x[idx]))),
                })
    # Keep total load inside the stable region for curve constraints.
    if math.isfinite(rate_cap):
        constraints.append({
            "type": "ineq",
            "fun": lambda x: rate_cap - float(np.sum(x[:n])),
        })
    return constraints


def solve_weighted_pareto(profile: Sequence[Utility],
                          weights: Sequence[float],
                          constraint: ConstraintAdapter,
                          r0: Optional[Sequence[float]] = None,
                          c0: Optional[Sequence[float]] = None,
                          rate_cap: float = 0.999) -> ParetoResult:
    """Maximize ``sum_i W_i U_i`` over the feasible allocation set.

    Every maximizer with nonnegative weights is Pareto optimal; sweeping
    weights traces the frontier.  Utilities are ordinal, but that is
    fine here — the weighted sum is only a *generator* of Pareto points,
    not a welfare statement.
    """
    n = len(profile)
    w = np.asarray(weights, dtype=float)
    if w.size != n:
        raise ValueError(f"{w.size} weights for {n} users")
    if np.any(w < 0.0) or w.sum() <= 0.0:
        raise ValueError("weights must be nonnegative and not all zero")
    start_r = (np.full(n, 0.5 / n) if r0 is None
               else np.asarray(r0, dtype=float))
    if c0 is None:
        total = constraint.total(start_r)
        start_c = np.full(n, max(total, 1e-3) / n)
    else:
        start_c = np.asarray(c0, dtype=float)
    x0 = np.concatenate([start_r, start_c])

    def objective(x: np.ndarray) -> float:
        value = 0.0
        for i, utility in enumerate(profile):
            u = utility.value(float(x[i]), float(x[n + i]))
            if not math.isfinite(u):
                return 1e9
            value += w[i] * u
        return -value

    bounds = ([(1e-5, rate_cap)] * n) + ([(1e-7, None)] * n)
    result = sp_optimize.minimize(
        objective, x0, method="SLSQP", bounds=bounds,
        constraints=_feasibility_constraints(n, constraint, rate_cap),
        options={"maxiter": 400, "ftol": 1e-12})
    rates = np.asarray(result.x[:n], dtype=float)
    congestion = np.asarray(result.x[n:], dtype=float)
    utilities = np.array([u.value(float(rates[i]), float(congestion[i]))
                          for i, u in enumerate(profile)])
    return ParetoResult(rates=rates, congestion=congestion,
                        utilities=utilities, weights=w,
                        success=bool(result.success))


def pareto_improvement(profile: Sequence[Utility],
                       rates: Sequence[float],
                       congestion: Sequence[float],
                       constraint: ConstraintAdapter,
                       rate_cap: float = 0.999,
                       min_gain: float = 1e-6) -> Optional[ParetoResult]:
    """Search for a feasible allocation Pareto-dominating the given one.

    Maximizes the *sum* of utility gains subject to feasibility and to
    no user losing — a smooth program whose optimum, when the total
    gain is positive, is a (weak) Pareto improvement: nobody worse,
    somebody strictly better.  Several jittered starts are tried
    because the base point itself sits on the no-loss constraint
    boundary.  Returns ``None`` when no dominating point was found
    (evidence — not proof — of Pareto optimality).
    """
    n = len(profile)
    base_r = np.asarray(rates, dtype=float)
    base_c = np.asarray(congestion, dtype=float)
    base_u = np.array([u.value(float(base_r[i]), float(base_c[i]))
                       for i, u in enumerate(profile)])

    def utilities_of(x: np.ndarray) -> np.ndarray:
        out = np.empty(n)
        for i, utility in enumerate(profile):
            out[i] = utility.value(float(x[i]), float(x[n + i]))
        return out

    def objective(x: np.ndarray) -> float:
        values = utilities_of(x)
        if not np.all(np.isfinite(values)):
            return 1e9
        return -float(np.sum(values - base_u))

    constraints = _feasibility_constraints(n, constraint, rate_cap)
    for i in range(n):
        constraints.append({
            "type": "ineq",
            "fun": (lambda x, i=i: float(
                profile[i].value(float(x[i]), float(x[n + i]))
                - base_u[i])),
        })
    bounds = ([(1e-5, rate_cap)] * n) + ([(1e-7, None)] * n)
    rng = default_rng(0)
    best: Optional[np.ndarray] = None
    best_total = 0.0
    x0_base = np.concatenate([base_r, base_c])
    for attempt in range(4):
        x0 = x0_base
        if attempt > 0:
            x0 = x0_base * rng.uniform(0.9, 1.1, size=x0_base.size)
            x0[:n] = np.clip(x0[:n], 1e-5, rate_cap)
        result = sp_optimize.minimize(
            objective, x0, method="SLSQP", bounds=bounds,
            constraints=constraints,
            options={"maxiter": 400, "ftol": 1e-12})
        if not result.success:
            continue
        gains = utilities_of(result.x) - base_u
        # Verify feasibility wasn't traded away by solver slack.
        residual = abs(float(np.sum(result.x[n:])
                             - constraint.total(result.x[:n])))
        if residual > 1e-6:
            continue
        if float(gains.min()) >= -1e-8 and float(gains.sum()) > best_total:
            best = np.asarray(result.x, dtype=float)
            best_total = float(gains.sum())
    if best is None or best_total < min_gain:
        return None
    rates_new = best[:n]
    congestion_new = best[n:]
    return ParetoResult(rates=rates_new, congestion=congestion_new,
                        utilities=utilities_of(best),
                        weights=np.full(n, 1.0 / n), success=True)
