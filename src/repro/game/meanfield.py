"""Mean-field (heavy-traffic) Nash approximation for huge populations.

As N grows, one user's own rate is an infinitesimal fraction of the
load, so her unilateral deviation no longer moves the field she is
responding to.  Dropping the self-exclusion from the deviation
problem — the deviator *rides on top of the full class profile*
instead of being removed from her class first — yields the mean-field
closure used for large-scale congestion games in the tradition of
Wu–Bui–Johari-style heavy-traffic analyses: a K-dimensional
per-class fixed point

``s_k = argmax_x U_k(x, C_k^field(x))``,

where ``C_k^field`` is the class deviation evaluator with
``include_self=True``.  The approximation error against the exact
class-space equilibrium is O(1/N) (one user's mass mis-counted out of
N), so it *improves* as the population grows — exactly the regime
where it is needed.  The exact solver
(:func:`repro.game.classes.solve_nash_classes`) stays O(K) per step
too, so the mean-field route is not about asymptotics of cost; it is
the limit object itself, with an even better-conditioned fixed point
(no 1/(m_k-1) self-exclusion discontinuities for singleton classes)
and the natural starting point for N in the millions.

Both drivers from the class-space solver are available: the damped
best-response iteration and the Newton-quality FDC root
(``method="fdc"``, the default for its precision).  Results certify
against the *exact* game by expansion spot checks, so ``spot_gain``
directly measures the mean-field error in utility terms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import optimize as sp_optimize

from repro.disciplines.base import check_classes
from repro.game.classes import (
    ClassNashResult,
    _default_class_start,
    _resolve_classes,
    certify_expansion,
    class_best_response,
)
from repro.numerics.iterate import damped_fixed_point
from repro.users.utility import Utility


def meanfield_fdc_residuals(allocation, utilities: Sequence[Utility],
                            class_rates: Sequence[float],
                            counts: Sequence[int]) -> np.ndarray:
    """First-derivative conditions under the mean-field closure.

    Entry ``k`` is ``M_k(s_k, C_k) + dC^field/dx``: the congestion
    level is the actual class congestion (the field the whole class
    generates), while the slope is the ``include_self=True`` deviation
    derivative — an infinitesimal agent perturbing a fixed field.
    """
    c, m = check_classes(class_rates, counts)
    if len(utilities) != c.size:
        raise ValueError(
            f"{len(utilities)} utilities for {c.size} classes")
    congestion = allocation.class_congestion(c, m)
    out = np.empty(c.size)
    for k, utility in enumerate(utilities):
        if not math.isfinite(float(congestion[k])):
            out[k] = 1e6
            continue
        ratio = utility.marginal_ratio(float(c[k]), float(congestion[k]))
        out[k] = ratio + allocation.class_own_derivative(
            c, m, k, include_self=True)
    return out


def solve_nash_meanfield(allocation, profile: Sequence[Utility],
                         counts: Optional[Sequence[int]] = None,
                         r0: Optional[Sequence[float]] = None,
                         method: str = "fdc",
                         damping: float = 0.5, tol: float = 1e-10,
                         max_iter: int = 400,
                         certify_users: int = 1) -> ClassNashResult:
    """Solve the K-class mean-field equilibrium.

    Parameters mirror :func:`repro.game.classes.solve_nash_classes`;
    ``method`` selects the FDC root (``"fdc"``, default — fast and
    Newton-precise) or the damped best-response iteration
    (``"best-response"``), both under the ``include_self=True``
    closure.  The returned congestion/utilities are evaluated on the
    *exact* class-symmetric profile at the mean-field rates, and the
    certificates (``max_gain`` via exact-game class best responses,
    ``spot_gain`` via expanded per-user checks) measure the distance
    from true equilibrium — i.e. the mean-field error, O(1/N).
    """
    utilities, counts_arr, members = _resolve_classes(
        allocation, profile, counts)
    _, m = check_classes(np.zeros(counts_arr.size), counts_arr)
    start = (_default_class_start(allocation, m) if r0 is None
             else np.asarray(r0, dtype=float))

    if method == "fdc":
        def residuals(c: np.ndarray) -> np.ndarray:
            return meanfield_fdc_residuals(allocation, utilities,
                                           np.abs(c), m)

        solution = sp_optimize.root(residuals, start, method="hybr",
                                    options={"xtol": tol})
        class_rates = np.abs(np.asarray(solution.x, dtype=float))
        converged = bool(solution.success) and bool(
            np.all(class_rates > 0.0))
        iterations = int(solution.nfev)
    elif method == "best-response":
        def mapping(c: np.ndarray) -> np.ndarray:
            out = np.empty_like(c)
            for k, utility in enumerate(utilities):
                out[k] = class_best_response(allocation, utility, c, m, k,
                                             include_self=True).x
            return out

        outcome = damped_fixed_point(mapping, start, damping=damping,
                                     tol=tol, max_iter=max_iter)
        class_rates = np.asarray(outcome.x, dtype=float)
        converged = bool(outcome.converged)
        iterations = int(outcome.iterations)
    else:
        raise ValueError(
            f"unknown mean-field method {method!r}; use 'fdc' or "
            f"'best-response'")

    congestion = allocation.class_congestion(class_rates, m)
    class_utilities = np.asarray(
        [utility.value(float(class_rates[k]), float(congestion[k]))
         for k, utility in enumerate(utilities)], dtype=float)
    # Certify against the EXACT game: the residual gain a real (finite,
    # self-excluded) user retains at the mean-field point is the
    # mean-field approximation error expressed in utility.
    worst = -math.inf
    for k, utility in enumerate(utilities):
        best = class_best_response(allocation, utility, class_rates, m, k,
                                   include_self=False)
        current = float(class_utilities[k])
        if math.isinf(current) and math.isinf(best.value):
            gain = 0.0
        else:
            gain = best.value - current
        worst = max(worst, gain)
    spot_gain = math.nan
    if certify_users > 0:
        spot_gain = certify_expansion(allocation, utilities, class_rates,
                                      m, users_per_class=certify_users)
    return ClassNashResult(class_rates=class_rates,
                           class_congestion=congestion,
                           class_utilities=class_utilities,
                           counts=m, converged=converged,
                           iterations=iterations, max_gain=worst,
                           spot_gain=spot_gain, method="mean-field",
                           members=members)


def meanfield_error(exact: ClassNashResult,
                    approx: ClassNashResult) -> float:
    """Sup-norm class-rate gap between an exact and a mean-field solve.

    The headline O(1/N) quantity: compare
    :func:`repro.game.classes.solve_nash_classes` (or its FDC twin)
    against :func:`solve_nash_meanfield` at the same profile.
    """
    if exact.class_rates.size != approx.class_rates.size:
        raise ValueError(
            f"class counts differ: {exact.class_rates.size} vs "
            f"{approx.class_rates.size}")
    return float(np.max(np.abs(exact.class_rates - approx.class_rates)))
