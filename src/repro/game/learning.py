"""Generalized hill climbing: iterated elimination of dominated rates.

Section 4.2.2 models "reasonable" self-optimization abstractly: each
user starts with a candidate set of rates and must eventually discard
any candidate that is *strictly worse than some other candidate against
every possible configuration of the opponents' surviving candidates*.
The limiting survivor set ``S^inf`` contains every Nash and Stackelberg
equilibrium; convergence is robust iff ``S^inf`` is a single point.

Theorem 5 (via [8]): under Fair Share ``S^inf`` is always the unique
Nash equilibrium — any mix of reasonable learners converges.  Under
FIFO the survivor set typically stays fat, leaving room for super-games
and leader exploitation.

We implement the elimination dynamics exactly on finite rate grids, and
a stochastic better-reply process as a concrete "naive learner".
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.numerics import instrumentation
from repro.numerics.rng import default_rng
from repro.users.utility import Utility


@dataclass
class EliminationResult:
    """Outcome of iterated elimination of dominated rates.

    Attributes
    ----------
    survivors:
        Per-user arrays of surviving rate candidates (``S_i^inf``).
    rounds:
        Elimination rounds executed until a fixed point.
    collapsed:
        Whether every user's survivor set is a single rate.
    survivor_spans:
        Per-user width ``max(S_i) - min(S_i)`` of the survivor set.
    """

    survivors: List[np.ndarray]
    rounds: int
    collapsed: bool
    survivor_spans: np.ndarray


def _payoff_table(allocation, profile: Sequence[Utility],
                  grids: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Precompute ``U_i`` over the full candidate product.

    ``tables[i][k_1, ..., k_N]`` is user ``i``'s utility when each user
    ``j`` plays grid point ``k_j``.  Exact but exponential in N — the
    elimination experiments use N <= 3 and modest grids.
    """
    shapes = tuple(len(g) for g in grids)
    n = len(grids)
    tables = [np.empty(shapes) for _ in range(n)]
    if (instrumentation.vectorized()
            and getattr(allocation, "vectorized_grid", False)):
        # The whole candidate product as one (prod(shapes), n) batch;
        # C-order meshgrid flattening matches itertools.product, so
        # reshaping back to ``shapes`` lands every entry where the
        # scalar loop would have written it.
        mesh = np.meshgrid(*grids, indexing="ij")
        profiles_flat = np.stack([m.reshape(-1) for m in mesh], axis=1)
        congestion = allocation.congestion_many(profiles_flat)
        for i in range(n):
            values = profile[i].value_grid(profiles_flat[:, i],
                                           congestion[:, i])
            tables[i] = values.reshape(shapes)
        instrumentation.record(congestion_evals=profiles_flat.shape[0],
                               grid_calls=1)
    else:
        for index in itertools.product(*(range(s) for s in shapes)):
            rates = np.array([grids[j][index[j]] for j in range(n)])
            congestion_row = allocation.congestion(rates)
            for i in range(n):
                tables[i][index] = profile[i].value(
                    float(rates[i]), float(congestion_row[i]))
        instrumentation.record(
            congestion_evals=int(np.prod(shapes)))
    return tables


def iterated_elimination(allocation, profile: Sequence[Utility],
                         grids: Sequence[np.ndarray],
                         max_rounds: int = 100) -> EliminationResult:
    """Run exact iterated strict dominance on finite rate grids.

    A candidate ``s`` of user ``i`` is eliminated when some surviving
    candidate ``s_hat`` yields strictly higher utility against *every*
    surviving opponent combination.  Iterates to a fixed point.
    """
    n = len(profile)
    if len(grids) != n:
        raise ValueError(f"{len(grids)} grids for {n} users")
    grid_arrays = [np.asarray(g, dtype=float) for g in grids]
    tables = _payoff_table(allocation, profile, grid_arrays)
    alive = [np.ones(len(g), dtype=bool) for g in grid_arrays]
    rounds = 0
    changed = True
    while changed and rounds < max_rounds:
        changed = False
        rounds += 1
        for i in range(n):
            table = np.moveaxis(tables[i], i, 0)   # own axis first
            opponent_mask = np.ones(table.shape[1:], dtype=bool)
            for j in range(n):
                if j == i:
                    continue
                axis = j if j < i else j - 1
                shape = [1] * (n - 1)
                shape[axis] = alive[j].size
                opponent_mask = opponent_mask & alive[j].reshape(shape)
            live_idx = np.nonzero(alive[i])[0]
            for s in live_idx:
                payoff_s = table[s][opponent_mask]
                if np.any(~np.isfinite(payoff_s)):
                    payoff_s = np.where(np.isfinite(payoff_s), payoff_s,
                                        -1e18)
                for s_hat in live_idx:
                    if s_hat == s:
                        continue
                    payoff_hat = table[s_hat][opponent_mask]
                    payoff_hat = np.where(np.isfinite(payoff_hat),
                                          payoff_hat, -1e18)
                    if np.all(payoff_hat > payoff_s):
                        alive[i][s] = False
                        changed = True
                        break
    survivors = [grid_arrays[i][alive[i]] for i in range(n)]
    spans = np.array([
        float(s.max() - s.min()) if s.size else math.nan
        for s in survivors])
    collapsed = all(s.size == 1 for s in survivors)
    return EliminationResult(survivors=survivors, rounds=rounds,
                             collapsed=collapsed, survivor_spans=spans)


@dataclass
class AutomataResult:
    """Outcome of a linear reward-inaction (L_R-I) automata run.

    Attributes
    ----------
    probabilities:
        Final per-user probability vectors over their rate grids.
    modal_rates:
        The most probable rate of each user at the end.
    history:
        Modal rates every ``record_every`` steps.
    """

    probabilities: List[np.ndarray]
    modal_rates: np.ndarray
    history: np.ndarray


def learning_automata(allocation, profile: Sequence[Utility],
                      grids: Sequence[np.ndarray],
                      n_steps: int = 4000,
                      learning_rate: float = 0.03,
                      rng: Optional[np.random.Generator] = None,
                      record_every: int = 200) -> AutomataResult:
    """Linear reward-inaction automata (the [8] family of learners).

    Each user keeps a probability vector over her candidate rates,
    samples one per round, observes a normalized reward from her own
    utility, and shifts mass toward the sampled action proportionally
    to the reward (L_R-I).  These are "generalized hill climbers" in
    the paper's sense; under Fair Share their play concentrates on the
    unique Nash equilibrium.

    Rewards are normalized per user with a running min/max so that the
    ordinal utilities become [0, 1] reinforcement signals.
    """
    generator = default_rng(rng if rng is not None else 17)
    n = len(profile)
    if len(grids) != n:
        raise ValueError(f"{len(grids)} grids for {n} users")
    grid_arrays = [np.asarray(g, dtype=float) for g in grids]
    probs = [np.full(g.size, 1.0 / g.size) for g in grid_arrays]
    # Per-user EWMA baseline and spread for reward centering: an
    # action is reinforced according to how much better than the
    # user's *recent* experience it performed, which keeps rewards
    # informative as play drifts (a global min/max washes out).
    baselines = [None] * n
    spreads = [1.0] * n
    ewma = 0.05
    n_records = n_steps // record_every + 1
    history = np.empty((n_records, n))
    record_row = 0
    for step in range(n_steps):
        choices = [int(generator.choice(g.size, p=probs[k]))
                   for k, g in enumerate(grid_arrays)]
        rates = np.array([grid_arrays[k][choices[k]] for k in range(n)])
        congestion = allocation.congestion(rates)
        for k in range(n):
            value = profile[k].value(float(rates[k]),
                                     float(congestion[k]))
            if not math.isfinite(value):
                # Overload: zero reinforcement; keep it out of the
                # baseline (it would swamp the spread).
                reward = 0.0
            elif baselines[k] is None:
                baselines[k] = value
                reward = 0.5
            else:
                deviation = value - baselines[k]
                spreads[k] = ((1.0 - ewma) * spreads[k]
                              + ewma * abs(deviation))
                scale = max(spreads[k], 1e-9)
                reward = min(max(0.5 + deviation / (4.0 * scale), 0.0),
                             1.0)
                baselines[k] += ewma * deviation
            # L_R-I update: move toward the chosen action.
            chosen = choices[k]
            probs[k] *= (1.0 - learning_rate * reward)
            probs[k][chosen] += learning_rate * reward
            probs[k] /= probs[k].sum()
        if step % record_every == 0:
            history[record_row] = [
                grid_arrays[k][int(np.argmax(probs[k]))]
                for k in range(n)]
            record_row += 1
    history = history[:record_row]
    modal = np.array([grid_arrays[k][int(np.argmax(probs[k]))]
                      for k in range(n)])
    return AutomataResult(probabilities=probs, modal_rates=modal,
                          history=history)


def stochastic_better_reply(allocation, profile: Sequence[Utility],
                            r0: Sequence[float], n_steps: int = 2000,
                            step_scale: float = 0.05,
                            rng: Optional[np.random.Generator] = None,
                            anneal: float = 0.999) -> np.ndarray:
    """A concrete naive learner: random local search, keep improvements.

    Each step, a random user perturbs her rate by a shrinking random
    amount and keeps the change iff her *own* utility improved — the
    "adjust the knob until the picture looks best" behavior from the
    paper's TV-contrast analogy.  Returns the rate trajectory
    (``n_steps + 1`` rows).
    """
    generator = default_rng(rng if rng is not None else 3)
    r = np.asarray(r0, dtype=float).copy()
    n = r.size
    trail = np.empty((n_steps + 1, n))
    trail[0] = r
    scale = step_scale
    for step in range(1, n_steps + 1):
        i = int(generator.integers(0, n))
        candidate = r[i] + generator.normal(0.0, scale)
        candidate = min(max(candidate, 1e-6), 0.999)
        current_c = allocation.congestion_i(r, i)
        current_u = profile[i].value(float(r[i]), float(current_c))
        probe = r.copy()
        probe[i] = candidate
        new_c = allocation.congestion_i(probe, i)
        new_u = profile[i].value(candidate, float(new_c))
        if new_u > current_u:
            r = probe
        scale *= anneal
        trail[step] = r
    return trail
