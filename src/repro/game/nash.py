"""Nash equilibrium computation.

Two complementary solvers:

* :func:`solve_nash` — damped best-response iteration.  Globally robust;
  under Fair Share it converges for any profile in AU (Theorem 5), and
  the damping handles FIFO's oscillatory coupling.
* :func:`solve_nash_fdc` — Newton/root-finding on the first-derivative
  conditions ``E_i(r) = M_i(r_i, C_i(r)) + dC_i/dr_i = 0``.  Fast and
  precise near a solution; every root is re-certified with actual best
  responses before being reported.

:func:`find_all_nash` runs multistart searches and clusters the
results — the experimental instrument behind the Theorem-4 uniqueness
study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy import optimize as sp_optimize

from repro.game.best_response import (
    best_response_map,
    utility_improvement,
)
from repro.game.classes import ClassProfile, detect_classes
from repro.numerics.iterate import damped_fixed_point
from repro.numerics.rng import default_rng
from repro.users.utility import Utility

#: Population above which :func:`find_all_nash` seeds starts per class
#: by default.  An N-dimensional Dirichlet concentrates as N grows
#: (every start degenerates to the equal split), so large-N multistart
#: needs the class structure to stay diverse.
CLASS_START_MIN_USERS = 100


@dataclass
class NashResult:
    """A computed Nash equilibrium candidate.

    Attributes
    ----------
    rates:
        Equilibrium rate vector.
    congestion:
        The induced congestion vector ``C(r)``.
    utilities:
        Per-user utility levels at the equilibrium.
    converged:
        Whether the solver met its tolerance.
    iterations:
        Iterations used by the underlying solver.
    max_gain:
        Largest unilateral utility improvement any user retains
        (certificate; ~0 at a true equilibrium).
    method:
        Which solver produced the point.
    """

    rates: np.ndarray
    congestion: np.ndarray
    utilities: np.ndarray
    converged: bool
    iterations: int
    max_gain: float
    method: str

    def is_equilibrium(self, tol: float = 1e-6) -> bool:
        """Whether no user can gain more than ``tol`` by deviating."""
        return self.max_gain <= tol


def _certify(allocation, profile: Sequence[Utility],
             rates: np.ndarray) -> float:
    """Max unilateral gain over all users (equilibrium certificate)."""
    gains = [utility_improvement(allocation, u, rates, i)
             for i, u in enumerate(profile)]
    return float(max(gains))


def _package(allocation, profile: Sequence[Utility], rates: np.ndarray,
             converged: bool, iterations: int, method: str) -> NashResult:
    congestion = allocation.congestion(rates)
    utilities = np.array([u.value(float(rates[i]), float(congestion[i]))
                          for i, u in enumerate(profile)])
    return NashResult(rates=np.asarray(rates, dtype=float),
                      congestion=congestion, utilities=utilities,
                      converged=converged, iterations=iterations,
                      max_gain=_certify(allocation, profile, rates),
                      method=method)


def default_start(n_users: int, allocation=None) -> np.ndarray:
    """A safe interior starting point (equal split at 50% load)."""
    capacity = 1.0
    if allocation is not None:
        cap = getattr(getattr(allocation, "curve", None), "capacity",
                      math.inf)
        if math.isfinite(cap):
            capacity = cap
    return np.full(n_users, 0.5 * capacity / n_users)


def solve_nash(allocation, profile: Sequence[Utility],
               r0: Optional[Sequence[float]] = None,
               damping: float = 0.5, tol: float = 1e-9,
               max_iter: int = 400) -> NashResult:
    """Damped best-response iteration to a Nash equilibrium."""
    n = len(profile)
    start = (default_start(n, allocation) if r0 is None
             else np.asarray(r0, dtype=float))

    def mapping(r: np.ndarray) -> np.ndarray:
        return best_response_map(allocation, profile, r)

    outcome = damped_fixed_point(mapping, start, damping=damping, tol=tol,
                                 max_iter=max_iter)
    return _package(allocation, profile, outcome.x, outcome.converged,
                    outcome.iterations, method="best-response")


def solve_nash_fdc(allocation, profile: Sequence[Utility],
                   r0: Optional[Sequence[float]] = None,
                   tol: float = 1e-10) -> NashResult:
    """Root-find the Nash first-derivative conditions.

    ``E_i(r) = M_i(r_i, C_i(r)) + dC_i/dr_i``; a Nash equilibrium in
    the interior satisfies ``E = 0``.  The returned point carries its
    best-response certificate — for non-Fair-Share disciplines an FDC
    root need not be a global best response (Lemma 4 is specific to
    Fair Share), and the ``max_gain`` field exposes that.
    """
    n = len(profile)
    start = (default_start(n, allocation) if r0 is None
             else np.asarray(r0, dtype=float))

    def residuals(r: np.ndarray) -> np.ndarray:
        out = np.empty(n)
        congestion = allocation.congestion(r)
        for i, utility in enumerate(profile):
            if not math.isfinite(congestion[i]):
                out[i] = 1e6
                continue
            m = utility.marginal_ratio(float(r[i]), float(congestion[i]))
            out[i] = m + allocation.own_derivative(r, i)
        return out

    solution = sp_optimize.root(residuals, start, method="hybr",
                                options={"xtol": tol})
    rates = np.asarray(solution.x, dtype=float)
    converged = bool(solution.success) and bool(np.all(rates > 0.0))
    iterations = int(solution.nfev)
    return _package(allocation, profile, np.abs(rates), converged,
                    iterations, method="fdc-root")


def is_nash(allocation, profile: Sequence[Utility],
            rates: Sequence[float], tol: float = 1e-6) -> bool:
    """Certify ``rates`` as a Nash equilibrium by best responses."""
    r = np.asarray(rates, dtype=float)
    return _certify(allocation, profile, r) <= tol


def _class_seeded_start(generator: np.random.Generator,
                        grouping: ClassProfile,
                        max_total: float) -> np.ndarray:
    """One random start with class-level diversity.

    The total load and its split *across classes* come from
    low-dimensional draws (K-dim Dirichlet), so distinct starts place
    genuinely different masses on each utility class even at N=10^4;
    the split *within* a class is a further Dirichlet so the start is
    not artificially class-symmetric.
    """
    load = generator.uniform(0.05, max_total)
    totals = generator.dirichlet(np.ones(grouping.n_classes)) * load
    start = np.empty(grouping.n_users)
    for k, indices in enumerate(grouping.members):
        share = generator.dirichlet(np.ones(len(indices)))
        start[list(indices)] = totals[k] * share
    return start


def find_all_nash(allocation, profile: Sequence[Utility],
                  n_starts: int = 12,
                  rng: Optional[np.random.Generator] = None,
                  gain_tol: float = 1e-6,
                  distinct_tol: float = 1e-3,
                  max_iter: int = 400,
                  class_starts: Optional[bool] = None) -> List[NashResult]:
    """Multistart equilibrium search with clustering.

    Runs damped best-response iteration from ``n_starts`` random
    interior points, keeps runs that certify as equilibria, and merges
    points closer than ``distinct_tol`` in sup norm.  Returns the
    distinct equilibria found (possibly empty if nothing certified).

    ``class_starts`` controls the start distribution: ``True`` seeds
    per utility class (:func:`_class_seeded_start`), ``False`` uses
    the flat N-dimensional Dirichlet, and ``None`` (default) picks
    class seeding exactly when ``len(profile) >=``
    :data:`CLASS_START_MIN_USERS` and the profile actually has fewer
    classes than users — below the threshold the RNG draw sequence is
    byte-identical to the historical behaviour.
    """
    generator = default_rng(rng if rng is not None else 0)
    n = len(profile)
    capacity = getattr(getattr(allocation, "curve", None), "capacity",
                       math.inf)
    max_total = 0.95 * capacity if math.isfinite(capacity) else 2.0
    use_classes = (n >= CLASS_START_MIN_USERS if class_starts is None
                   else bool(class_starts))
    grouping: Optional[ClassProfile] = None
    if use_classes:
        grouping = detect_classes(profile)
        if grouping.n_classes >= n:
            grouping = None         # no symmetry to exploit
    found: List[NashResult] = []
    alpha = np.ones(n)
    for trial in range(n_starts):
        if grouping is not None:
            start = _class_seeded_start(generator, grouping, max_total)
        else:
            direction = generator.dirichlet(alpha)
            load = generator.uniform(0.05, max_total)
            start = direction * load
        result = solve_nash(allocation, profile, r0=start,
                            max_iter=max_iter)
        if not result.is_equilibrium(gain_tol):
            continue
        duplicate = any(
            float(np.max(np.abs(result.rates - other.rates))) < distinct_tol
            for other in found)
        if not duplicate:
            found.append(result)
    return found
