"""Best responses: one user's optimal rate against fixed opponents.

The paper's users are selfish: user ``i`` varies ``r_i`` to maximize
``U_i(r_i, C_i(r |^i r_i))`` with the other rates held fixed.  The
objective is smooth inside the stable region and drops to ``-inf``
where the user's own congestion diverges, so a scan + golden-section
maximization is both robust and accurate.

When the discipline advertises a one-pass grid
(:attr:`~repro.disciplines.base.AllocationFunction.vectorized_grid`)
and the solver-vector switch is on, the scan and refinement run as a
handful of batched ``congestion_grid`` + ``value_grid`` calls instead
of ~100 scalar congestion evaluations — the core of the vectorized
solver path.  Every best response records its evaluation counts via
:mod:`repro.numerics.instrumentation`.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.numerics import instrumentation
from repro.numerics.optimize import (GridFunc, ScalarMaxResult,
                                     multistart_maximize)
from repro.users.utility import Utility

#: Smallest rate a user will consider (the paper requires ``r_i > 0``).
MIN_RATE = 1e-6


def _default_rate_cap(allocation) -> float:
    """Upper end of the rate interval a user searches.

    For curves with a capacity pole (M/M/1), rates at or beyond capacity
    are never optimal (own congestion is infinite), so the pole bounds
    the search.  For pole-free constraints (the separable world) or
    allocations that do not carry a service curve at all, we use a
    generous fixed cap; utilities in AU eventually punish congestion
    enough to keep optima interior.
    """
    curve = getattr(allocation, "curve", None)
    capacity = getattr(curve, "capacity", math.inf)
    if math.isfinite(capacity):
        return capacity * (1.0 - 1e-6)
    return 4.0


def _grid_objective(allocation, utility: Utility, rates: np.ndarray,
                    i: int) -> Optional[GridFunc]:
    """Batched objective for :func:`multistart_maximize`, if available.

    In ``auto`` mode the discipline's
    :attr:`~repro.disciplines.base.AllocationFunction.grid_min_users`
    cost hint arbitrates: below that population the scalar scan beats
    the grid's fixed numpy overhead (FIFO's scalar objective is a
    single ``sum``), so the call returns ``None`` and the maximizer
    takes the scalar path — same bracket, same result, less time.
    """
    solver_mode = instrumentation.mode()
    if solver_mode == "off":
        return None
    if not getattr(allocation, "vectorized_grid", False):
        return None
    if (solver_mode == "auto"
            and rates.size < getattr(allocation, "grid_min_users", 0)):
        return None
    # One evaluator per best response: the opponent-side precomputation
    # (sort, ladder, prefix sums) is shared by every grid-zoom round.
    evaluator = allocation.grid_evaluator(rates.copy(), i)

    def grid(xs: np.ndarray) -> np.ndarray:
        return utility.value_grid(xs, evaluator(xs))

    return grid


def best_response(allocation, utility: Utility, rates: Sequence[float],
                  i: int, r_max: Optional[float] = None,
                  n_scan: int = 65, tol: float = 1e-11) -> ScalarMaxResult:
    """Maximize user ``i``'s utility along her own rate axis.

    Parameters
    ----------
    allocation:
        An allocation function (or subsystem) exposing ``congestion_i``.
    utility:
        User ``i``'s utility.
    rates:
        Current full rate vector; entry ``i`` is ignored.
    r_max:
        Upper search bound; defaults to just under the capacity pole.
    n_scan:
        Grid size of the global scan preceding local refinement.
    """
    base = np.asarray(rates, dtype=float).copy()
    hi = _default_rate_cap(allocation) if r_max is None else float(r_max)

    def objective(x: float) -> float:
        base[i] = x
        congestion = allocation.congestion_i(base, i)
        return utility.value(x, congestion)

    grid = _grid_objective(allocation, utility,
                           np.asarray(rates, dtype=float), i)
    result = multistart_maximize(objective, MIN_RATE, hi, n_scan=n_scan,
                                 tol=tol, grid_func=grid)
    base[i] = result.x
    instrumentation.record(objective_evals=result.evaluations,
                           congestion_evals=result.evaluations,
                           grid_calls=result.grid_calls,
                           wall_time=result.wall_time)
    return result


def best_response_map(allocation, profile: Sequence[Utility],
                      rates: Sequence[float],
                      r_max: Optional[float] = None,
                      n_scan: int = 65, tol: float = 1e-11) -> np.ndarray:
    """Simultaneous best responses: ``B(r)_i = argmax_x U_i(x, C_i)``.

    Fixed points of this map are exactly the Nash equilibria.
    """
    r = np.asarray(rates, dtype=float)
    if len(profile) != r.size:
        raise ValueError(
            f"profile has {len(profile)} utilities for {r.size} rates")
    out = np.empty_like(r)
    for i, utility in enumerate(profile):
        out[i] = best_response(allocation, utility, r, i, r_max=r_max,
                               n_scan=n_scan, tol=tol).x
    return out


def utility_improvement(allocation, utility: Utility,
                        rates: Sequence[float], i: int,
                        r_max: Optional[float] = None) -> float:
    """How much user ``i`` could gain by deviating unilaterally.

    Zero (up to solver tolerance) at a Nash equilibrium.  Used as the
    equilibrium certificate because rate-space distance is a bad metric
    when the objective is flat.  Counts toward the active solver
    tracker, so ``is_nash``/certification cost shows up in experiment
    reports rather than being invisible.
    """
    r = np.asarray(rates, dtype=float)
    current = utility.value(float(r[i]), allocation.congestion_i(r, i))
    instrumentation.record(objective_evals=1, congestion_evals=1)
    best = best_response(allocation, utility, r, i, r_max=r_max)
    if math.isinf(current) and math.isinf(best.value):
        return 0.0
    return best.value - current
