"""Revelation mechanisms (Section 4.2.2, Theorem 6).

A direct mechanism asks users to *report* their utility functions and
maps the reports to an allocation.  ``B^FS`` — report utilities, play
the unique Fair Share Nash equilibrium of the reported profile — is a
revelation mechanism: truth-telling is a dominant strategy (no
misreport ever helps, whatever others report).  The analogous
FIFO-based mechanism is manipulable.

Reports are drawn from parametric utility families, so "lying" means
reporting distorted parameters (e.g. a false congestion sensitivity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.exceptions import MechanismError
from repro.game.nash import solve_nash
from repro.users.utility import Utility


@dataclass
class MechanismOutcome:
    """Allocation chosen by a direct mechanism for a report vector."""

    rates: np.ndarray
    congestion: np.ndarray
    converged: bool


def nash_mechanism(allocation, reported_profile: Sequence[Utility],
                   r0: Optional[Sequence[float]] = None) -> MechanismOutcome:
    """``B(reported) =`` the Nash allocation of the reported profile.

    With ``allocation`` = Fair Share this is the paper's ``B^FS``
    (well defined because the FS equilibrium is unique, Theorem 4).
    With other disciplines the mechanism inherits whatever equilibrium
    the solver selects — itself a symptom of non-uniqueness.
    """
    result = solve_nash(allocation, reported_profile, r0=r0)
    return MechanismOutcome(rates=result.rates,
                            congestion=result.congestion,
                            converged=result.converged)


@dataclass
class MisreportOutcome:
    """Result of searching user ``i``'s misreport space.

    Attributes
    ----------
    truthful_utility:
        True utility when reporting truthfully.
    best_misreport_utility:
        Best true utility achievable by lying.
    gain:
        ``best_misreport_utility - truthful_utility``; ``<= 0`` (up to
        solver noise) certifies incentive compatibility on the searched
        family.
    best_report_index:
        Index of the most profitable lie in ``candidate_reports``
        (-1 when truth is best).
    """

    truthful_utility: float
    best_misreport_utility: float
    gain: float
    best_report_index: int


def misreport_gain(allocation, true_profile: Sequence[Utility], i: int,
                   candidate_reports: Sequence[Utility],
                   reported_others: Optional[Sequence[Utility]] = None) -> (
        MisreportOutcome):
    """Evaluate every candidate lie for user ``i``.

    Parameters
    ----------
    true_profile:
        The users' actual utilities (used to *evaluate* outcomes).
    candidate_reports:
        Alternative utilities user ``i`` might claim.
    reported_others:
        What the other users report (defaults to their truths, but the
        revelation property quantifies over all reports).
    """
    if not 0 <= i < len(true_profile):
        raise MechanismError(
            f"user index {i} out of range for {len(true_profile)} users")
    if reported_others is not None and \
            len(reported_others) != len(true_profile):
        raise MechanismError(
            f"expected {len(true_profile)} reports, got "
            f"{len(reported_others)}")
    others = (list(true_profile) if reported_others is None
              else list(reported_others))
    truth_reports = list(others)
    truth_reports[i] = true_profile[i]
    truthful = nash_mechanism(allocation, truth_reports)
    true_u = true_profile[i]
    truthful_value = true_u.value(float(truthful.rates[i]),
                                  float(truthful.congestion[i]))
    best_value = truthful_value
    best_index = -1
    for k, lie in enumerate(candidate_reports):
        reports = list(others)
        reports[i] = lie
        outcome = nash_mechanism(allocation, reports)
        value = true_u.value(float(outcome.rates[i]),
                             float(outcome.congestion[i]))
        if value > best_value:
            best_value = value
            best_index = k
    return MisreportOutcome(truthful_utility=float(truthful_value),
                            best_misreport_utility=float(best_value),
                            gain=float(best_value - truthful_value),
                            best_report_index=best_index)


def scaled_reports(base: Utility, scales: Sequence[float],
                   make: Callable[[Utility, float], Utility]) -> (
        List[Utility]):
    """Build a lie family by scaling one parameter of a base utility."""
    return [make(base, float(s)) for s in scales]
