"""Coalitional manipulation (footnote 14, via [23] p. 1025).

The paper notes that Fair Share Nash equilibria are resilient against
*joint* manipulations: no coalition of users can coordinate a deviation
that makes every member strictly better off.  This module implements
the computational check — grid + local search over a coalition's joint
rate space with everyone else held fixed — and its mirror image, the
search for profitable coalitions under other disciplines.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy import optimize as sp_optimize

from repro.numerics import instrumentation
from repro.users.utility import Utility


@dataclass
class CoalitionOutcome:
    """Result of searching one coalition's joint deviations.

    Attributes
    ----------
    members:
        The coalition's user indices.
    gain:
        Largest *minimum member gain* found over joint deviations
        (``<= 0`` means no deviation helps every member).
    deviation:
        The best joint rate choice found for the members.
    """

    members: Tuple[int, ...]
    gain: float
    deviation: np.ndarray


def coalition_gain(allocation, profile: Sequence[Utility],
                   rates: Sequence[float], members: Sequence[int],
                   grid_points: int = 9,
                   span: float = 0.5,
                   refine: bool = True) -> CoalitionOutcome:
    """Max-min utility gain a coalition can grab by deviating jointly.

    Each member's candidate rates form a grid around (and including)
    her current rate; all joint combinations are evaluated and the one
    maximizing the *worst member's* gain is polished with Nelder-Mead.
    Non-members keep their rates.
    """
    base = np.asarray(rates, dtype=float)
    members = tuple(int(m) for m in members)
    if len(set(members)) != len(members) or not members:
        raise ValueError(f"invalid coalition {members}")
    base_c = allocation.congestion(base)
    base_u = np.array([profile[m].value(float(base[m]),
                                        float(base_c[m]))
                       for m in members])

    def min_gain(joint: np.ndarray) -> float:
        candidate = base.copy()
        for k, m in enumerate(members):
            candidate[m] = max(float(joint[k]), 1e-6)
        congestion = allocation.congestion(candidate)
        worst = np.inf
        for k, m in enumerate(members):
            value = profile[m].value(float(candidate[m]),
                                     float(congestion[m]))
            if not np.isfinite(value):
                return -1e9
            worst = min(worst, value - base_u[k])
        return float(worst)

    grids = []
    for m in members:
        lo = max(base[m] * (1.0 - span), 1e-6)
        hi = base[m] * (1.0 + span) + 0.02
        grid = np.unique(np.concatenate(
            (np.linspace(lo, hi, grid_points), [base[m]])))
        grids.append(grid)
    best_gain = 0.0
    best_joint = base[list(members)].copy()
    if (instrumentation.vectorized()
            and getattr(allocation, "vectorized_grid", False)):
        # All joint combinations in one congestion_many batch.  The
        # meshgrid flattening enumerates combinations in the same
        # (C-order) sequence as itertools.product, and argmax keeps the
        # first maximum, so ties resolve exactly like the scalar loop.
        mesh = np.meshgrid(*grids, indexing="ij")
        combos = np.stack([m.reshape(-1) for m in mesh], axis=1)
        candidates = np.tile(base, (combos.shape[0], 1))
        candidates[:, list(members)] = np.maximum(combos, 1e-6)
        congestion = allocation.congestion_many(candidates)
        worst = np.full(combos.shape[0], np.inf)
        finite = np.ones(combos.shape[0], dtype=bool)
        with np.errstate(invalid="ignore"):
            for k, m in enumerate(members):
                values = profile[m].value_grid(candidates[:, m],
                                               congestion[:, m])
                finite &= np.isfinite(values)
                worst = np.minimum(worst, values - base_u[k])
        scores = np.where(finite, worst, -1e9)
        pick = int(np.argmax(scores))
        if float(scores[pick]) > best_gain:
            best_gain = float(scores[pick])
            best_joint = combos[pick].astype(float)
        instrumentation.record(congestion_evals=combos.shape[0],
                               grid_calls=1)
    else:
        for joint in itertools.product(*grids):
            gain = min_gain(np.asarray(joint))
            if gain > best_gain:
                best_gain = gain
                best_joint = np.asarray(joint, dtype=float)
    if refine:
        result = sp_optimize.minimize(
            lambda x: -min_gain(x), best_joint, method="Nelder-Mead",
            options={"maxiter": 200, "xatol": 1e-8, "fatol": 1e-10})
        polished = min_gain(np.asarray(result.x))
        if polished > best_gain:
            best_gain = polished
            best_joint = np.abs(np.asarray(result.x, dtype=float))
    return CoalitionOutcome(members=members, gain=float(best_gain),
                            deviation=best_joint)


def search_profitable_coalitions(allocation, profile: Sequence[Utility],
                                 rates: Sequence[float],
                                 max_size: int = 2,
                                 grid_points: int = 9,
                                 tol: float = 1e-6) -> List[CoalitionOutcome]:
    """All coalitions up to ``max_size`` that profit from deviating."""
    n = len(profile)
    profitable: List[CoalitionOutcome] = []
    for size in range(2, max_size + 1):
        for members in itertools.combinations(range(n), size):
            outcome = coalition_gain(allocation, profile, rates,
                                     members, grid_points=grid_points)
            if outcome.gain > tol:
                profitable.append(outcome)
    return profitable
