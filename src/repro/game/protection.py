"""Protectiveness (Section 4.3, Theorem 8).

A discipline is *protective* when no combination of other users'
behavior — greedy, broken, or malicious — can push user ``i``'s
congestion above the symmetric worst case
``C_i(r_i * e) = g(N r_i) / N`` (everyone sending what she sends).
This is the out-of-equilibrium guarantee: the converse of the Golden
Rule.  Fair Share is protective in all subsystems and is the only MAC
discipline that is; under FIFO a single heavy sender inflicts unbounded
congestion on everyone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import optimize as sp_optimize

from repro.numerics import instrumentation
from repro.numerics.rng import default_rng
from repro.queueing.service_curves import MM1Curve, ServiceCurve


def protection_bound(own_rate: float, n_users: int,
                     curve: Optional[ServiceCurve] = None) -> float:
    """The symmetric bound ``C_i(r_i * e) = g(N r_i) / N``."""
    if own_rate < 0.0:
        raise ValueError(f"rate must be nonnegative, got {own_rate}")
    if n_users < 1:
        raise ValueError(f"need at least one user, got {n_users}")
    g = curve if curve is not None else MM1Curve()
    total = n_users * own_rate
    if total >= g.capacity:
        return math.inf
    return g.value(total) / n_users


@dataclass
class ProtectionReport:
    """Result of an adversarial search against one user.

    Attributes
    ----------
    own_rate:
        The protected user's fixed rate.
    bound:
        The symmetric protection bound.
    worst_congestion:
        Largest congestion the search inflicted on the user.
    worst_opponents:
        The opponent rate vector achieving it.
    protective:
        Whether ``worst_congestion <= bound`` (within tolerance).
    """

    own_rate: float
    bound: float
    worst_congestion: float
    worst_opponents: np.ndarray
    protective: bool


def worst_case_congestion(allocation, i: int, own_rate: float,
                          n_users: int,
                          rng: Optional[np.random.Generator] = None,
                          n_samples: int = 200,
                          refine: bool = True,
                          opponent_cap: float = 2.0,
                          bound: Optional[float] = None) -> ProtectionReport:
    """Adversarially maximize ``C_i`` over the opponents' rates.

    Opponent rates range over ``[0, opponent_cap]`` — deliberately
    *beyond* the stable region, since malice is exactly the
    out-of-equilibrium case the guarantee must cover.  Random sampling
    is followed by a Nelder-Mead polish from the worst sample (the
    objective is not smooth where the allocation saturates).

    ``bound`` overrides the symmetric single-switch bound — network
    allocations, for example, supply the sum of their per-hop bounds.
    """
    if n_users < 2:
        raise ValueError("protection needs at least one opponent")
    generator = default_rng(rng if rng is not None else 23)
    if bound is None:
        bound = protection_bound(own_rate, n_users,
                                 curve=allocation.curve)

    def congestion_of(opponents: np.ndarray) -> float:
        rates = np.insert(np.abs(opponents), i, own_rate)
        return float(allocation.congestion_i(rates, i))

    worst_value = -math.inf
    worst_opponents = np.zeros(n_users - 1)
    if (instrumentation.vectorized()
            and getattr(allocation, "vectorized_grid", False)):
        # One (n_samples, n-1) draw consumes the identical RNG stream
        # as n_samples sequential size-(n-1) draws, so the batched scan
        # visits the same adversaries; argmax keeps the first maximum,
        # matching the strict ``>`` of the sequential loop.
        draws = generator.uniform(0.0, opponent_cap,
                                  size=(n_samples, n_users - 1))
        profiles = np.insert(np.abs(draws), i, own_rate, axis=1)
        values = allocation.congestion_many(profiles)[:, i]
        best = int(np.argmax(values))
        worst_value = float(values[best])
        worst_opponents = draws[best]
        instrumentation.record(congestion_evals=n_samples, grid_calls=1)
    else:
        for _ in range(n_samples):
            opponents = generator.uniform(0.0, opponent_cap,
                                          size=n_users - 1)
            value = congestion_of(opponents)
            if value > worst_value:
                worst_value = value
                worst_opponents = opponents
        instrumentation.record(congestion_evals=n_samples)
    if refine and math.isfinite(worst_value):
        result = sp_optimize.minimize(
            lambda x: -congestion_of(x), worst_opponents,
            method="Nelder-Mead",
            options={"maxiter": 400, "xatol": 1e-9, "fatol": 1e-12})
        polished = congestion_of(np.asarray(result.x))
        if polished > worst_value:
            worst_value = polished
            worst_opponents = np.abs(np.asarray(result.x))
    protective = bool(worst_value <= bound * (1.0 + 1e-9) + 1e-12)
    return ProtectionReport(own_rate=float(own_rate), bound=float(bound),
                            worst_congestion=float(worst_value),
                            worst_opponents=worst_opponents,
                            protective=protective)


def verify_protective(allocation, n_users: int,
                      rates_to_check: Optional[np.ndarray] = None,
                      rng: Optional[np.random.Generator] = None,
                      n_samples: int = 120) -> bool:
    """Check protectiveness for a sweep of own-rates (user 0).

    By symmetry checking one user index suffices for symmetric
    allocation functions.
    """
    generator = default_rng(rng if rng is not None else 29)
    if rates_to_check is None:
        rates_to_check = np.linspace(0.02, 0.9 / n_users, 6)
    for own_rate in np.asarray(rates_to_check, dtype=float).tolist():
        report = worst_case_congestion(allocation, 0, float(own_rate),
                                       n_users, rng=generator,
                                       n_samples=n_samples)
        if not report.protective:
            return False
    return True
