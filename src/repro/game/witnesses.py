"""Hand-constructed games witnessing FIFO pathologies.

The uniqueness/Stackelberg/learning theorems are "only Fair Share"
statements; exhibiting them experimentally needs explicit games where
FIFO misbehaves.  The biconvex witness below is the workhorse: one
utility in AU, shared by two users, tuned so an *asymmetric* point
satisfies the FIFO Nash conditions — by symmetry its mirror is then a
second equilibrium, and in fact a near-flat component of equilibria
connects them.  On the same profile Fair Share has a single (symmetric)
equilibrium.
"""

from __future__ import annotations

import math
from typing import List

from repro.users.families import BiconvexUtility
from repro.users.utility import Utility


def fifo_multiplicity_witness(a: float = 0.15, b: float = 0.45,
                              a1: float = 0.1, b1: float = 0.6,
                              ell: float = 0.1) -> BiconvexUtility:
    """Tune a biconvex utility so ``(a, b)`` is a FIFO Nash point.

    The FIFO Nash condition at own rate ``x`` with total ``S = a + b``
    is ``a0 e^{a1 x} = k(x) (ell + b0 e^{-b1 c(x)})`` with
    ``k(x) = (1 - S + x)/(1 - S)^2`` and ``c(x) = x/(1 - S)``.
    Imposing it at both ``a`` and ``b`` gives two equations; solving
    for ``(a0, b0)`` with the curvatures ``(a1, b1, ell)`` fixed yields
    the witness utility.  Both users share it, so the mirror point
    ``(b, a)`` is an equilibrium whenever ``(a, b)`` is.
    """
    if not 0.0 < a < b or a + b >= 1.0:
        raise ValueError(f"need 0 < a < b with a + b < 1, got {a}, {b}")
    total = a + b
    slack = 1.0 - total
    c_a, c_b = a / slack, b / slack
    k_a = (slack + a) / slack ** 2
    k_b = (slack + b) / slack ** 2
    ea, eb = math.exp(-b1 * c_a), math.exp(-b1 * c_b)
    growth = math.exp(a1 * (b - a))
    denominator = k_a * growth * ea - k_b * eb
    if abs(denominator) < 1e-12:
        raise ValueError("degenerate curvature choice; pick a1 != b1 mix")
    b0 = ell * (k_b - k_a * growth) / denominator
    if b0 <= 0.0:
        raise ValueError("curvatures give a negative b0; adjust a1/b1/ell")
    a0 = k_a * (ell + b0 * ea) / math.exp(a1 * a)
    return BiconvexUtility(a0=a0, a1=a1, ell=ell, b0=b0, b1=b1)


def witness_profile(a: float = 0.15, b: float = 0.45) -> List[Utility]:
    """The two-user profile built from the multiplicity witness."""
    utility = fifo_multiplicity_witness(a=a, b=b)
    return [utility, utility]
