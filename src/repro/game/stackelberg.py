"""Stackelberg equilibria: sophisticated leaders vs. naive followers.

A leader commits to a rate and lets the remaining users equilibrate in
the induced subsystem; she then picks the commitment maximizing her own
utility over the followers' equilibria (Definition 5).  Under FIFO a
leader can profit from this sophistication; under Fair Share she
cannot — every Stackelberg equilibrium is already a Nash equilibrium
(Theorem 5), so naive hill climbers are safe from strategic
exploitation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.game.nash import NashResult, solve_nash
from repro.numerics.optimize import multistart_maximize
from repro.users.utility import Utility


@dataclass
class StackelbergResult:
    """Outcome of a Stackelberg (leader-follower) computation.

    Attributes
    ----------
    leader:
        Index of the leading user.
    rates:
        Full rate vector: leader's commitment + followers' equilibrium.
    leader_utility:
        The leader's utility at the Stackelberg point.
    follower_converged:
        Whether the follower equilibrium at the optimum converged.
    evaluations:
        Number of leader-rate candidates examined.
    """

    leader: int
    rates: np.ndarray
    leader_utility: float
    follower_converged: bool
    evaluations: int


def follower_equilibrium(allocation, profile: Sequence[Utility],
                         leader: int, leader_rate: float,
                         r0: Optional[Sequence[float]] = None,
                         tol: float = 1e-9) -> NashResult:
    """Nash equilibrium of the subsystem with the leader's rate frozen.

    Returns a full-length :class:`NashResult` (leader entry included)
    for convenience.
    """
    n = len(profile)
    sub = allocation.subsystem({leader: leader_rate})
    follower_profile = [u for i, u in enumerate(profile) if i != leader]
    if r0 is None:
        start = None
    else:
        start = np.asarray([r0[i] for i in range(n) if i != leader],
                           dtype=float)
    inner = solve_nash(sub, follower_profile, r0=start, tol=tol)
    full = sub.embed(inner.rates)
    congestion = allocation.congestion(full)
    utilities = np.array([u.value(float(full[i]), float(congestion[i]))
                          for i, u in enumerate(profile)])
    return NashResult(rates=full, congestion=congestion,
                      utilities=utilities, converged=inner.converged,
                      iterations=inner.iterations, max_gain=inner.max_gain,
                      method="follower-equilibrium")


def solve_stackelberg(allocation, profile: Sequence[Utility], leader: int,
                      n_scan: int = 25,
                      r_max: Optional[float] = None) -> StackelbergResult:
    """Optimize the leader's commitment over follower equilibria.

    The outer problem is one-dimensional; each candidate commitment
    requires an inner Nash solve for the followers, so the scan is kept
    coarse and refined by golden-section search around the best
    candidate.
    """
    if not 0 <= leader < len(profile):
        raise ValueError(f"leader index {leader} out of range")
    capacity = getattr(allocation.curve, "capacity", math.inf)
    hi = (capacity * (1.0 - 1e-6) if math.isfinite(capacity) else 4.0)
    if r_max is not None:
        hi = float(r_max)

    cache = {}

    def leader_value(rate: float) -> float:
        key = round(rate, 12)
        if key not in cache:
            outcome = follower_equilibrium(allocation, profile, leader,
                                           rate)
            cache[key] = outcome
        outcome = cache[key]
        return float(outcome.utilities[leader])

    best = multistart_maximize(leader_value, 1e-5, hi, n_scan=n_scan,
                               tol=1e-8)
    final = follower_equilibrium(allocation, profile, leader, best.x)
    return StackelbergResult(leader=leader, rates=final.rates,
                             leader_utility=float(
                                 final.utilities[leader]),
                             follower_converged=final.converged,
                             evaluations=best.evaluations)


def leader_advantage(allocation, profile: Sequence[Utility], leader: int,
                     nash: Optional[NashResult] = None,
                     n_scan: int = 25) -> float:
    """``U_leader(Stackelberg) - U_leader(commit to the Nash rate)``.

    The baseline is evaluated through the *same* follower-equilibrium
    pipeline as the Stackelberg optimum, so inner-solver noise cancels
    and the advantage is nonnegative by construction (the Nash rate is
    always an available commitment).  Positive advantage is the
    incentive to deploy sophisticated flow control; Fair Share drives
    it to zero.
    """
    if nash is None:
        nash = solve_nash(allocation, profile)
    stackelberg = solve_stackelberg(allocation, profile, leader,
                                    n_scan=n_scan)
    baseline = follower_equilibrium(allocation, profile, leader,
                                    float(nash.rates[leader]))
    advantage = stackelberg.leader_utility - float(
        baseline.utilities[leader])
    return max(float(advantage), 0.0)
