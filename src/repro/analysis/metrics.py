"""Traditional switch-centric performance metrics.

For a work-conserving M/M/1-style switch at total load ``S`` with
per-user queues ``c``:

* utilization = ``S`` (fraction of time busy, unit service rate);
* total mean queue = ``sum c`` (= ``g(S)`` when work conserving);
* mean delay = ``g(S)/S`` by Little's law;
* power = throughput / mean delay = ``S^2 / g(S)`` — Kleinrock's
  classic knee metric, which for the M/M/1 curve reduces to
  ``S (1 - S)`` and is therefore *blind to the split*: every
  discipline at the same total load scores the same power.

That blindness is the quantitative content of the paper's principle 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.queueing.service_curves import MM1Curve, ServiceCurve


@dataclass(frozen=True)
class SwitchMetrics:
    """The switch-centered scorecard for one operating point.

    Attributes
    ----------
    utilization:
        Total offered load (fraction of service capacity in use).
    total_queue:
        Aggregate mean number in system.
    mean_delay:
        Aggregate mean sojourn time (Little's law).
    power:
        Throughput divided by mean delay.
    """

    utilization: float
    total_queue: float
    mean_delay: float
    power: float


def switch_metrics(rates: Sequence[float],
                   congestion: Optional[Sequence[float]] = None,
                   curve: Optional[ServiceCurve] = None) -> SwitchMetrics:
    """Compute the traditional scorecard at an operating point.

    ``congestion`` defaults to the work-conserving total ``g(S)``
    split arbitrarily (the metrics don't care — that is the point).
    """
    r = np.asarray(rates, dtype=float)
    if np.any(r < 0.0):
        raise ValueError(f"rates must be nonnegative, got {r}")
    g = curve if curve is not None else MM1Curve()
    total_rate = float(r.sum())
    if congestion is None:
        total_queue = g.value(total_rate)
    else:
        c = np.asarray(congestion, dtype=float)
        total_queue = float(c.sum())
    if total_rate <= 0.0:
        return SwitchMetrics(utilization=0.0, total_queue=total_queue,
                             mean_delay=0.0, power=0.0)
    if not math.isfinite(total_queue):
        return SwitchMetrics(utilization=total_rate,
                             total_queue=math.inf, mean_delay=math.inf,
                             power=0.0)
    mean_delay = total_queue / total_rate
    power = total_rate / mean_delay if mean_delay > 0 else math.inf
    return SwitchMetrics(utilization=total_rate,
                         total_queue=total_queue,
                         mean_delay=mean_delay, power=power)
