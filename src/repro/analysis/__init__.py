"""Switch-centric metrics — what the paper argues *against*.

Principle 3 of Section 2.1: performance must be judged by user
satisfaction, not by switch-centered quantities like power, line
utilization, or total queueing delay.  This package computes those
traditional metrics precisely so experiments can show how blind they
are: at the paper's own operating points, FIFO's and Fair Share's
"power" are nearly identical while the users' utilities differ
sharply.
"""

from repro.analysis.metrics import (
    SwitchMetrics,
    switch_metrics,
)

__all__ = ["SwitchMetrics", "switch_metrics"]
