"""Shared numerical tolerances and float-comparison helpers.

Every near-equality decision in the library flows through the named
constants below, so the question "how close is close enough?" has one
answer per kind of comparison instead of a magic literal per call
site.  The static-analysis rule ``GW004`` (see
:mod:`repro.staticcheck.rules.floats`) rejects raw ``==``/``!=``
between float expressions; these helpers are the sanctioned
replacement.

Constants
---------
``ABS_TOL``
    General-purpose absolute tolerance for quantities of order one
    (congestions, rates, utilities).
``REL_TOL``
    General-purpose relative tolerance.
``ZERO_ATOL``
    Threshold below which a nonnegative aggregate (a total rate, a
    weighted demand sum) is treated as exactly zero.  Chosen far below
    any physically meaningful rate so the zero-total shortcuts in
    :func:`repro.queueing.mm1.proportional_split` and the cost-sharing
    rules keep their intended semantics.
"""

from __future__ import annotations

import math

ABS_TOL: float = 1e-9
REL_TOL: float = 1e-9
ZERO_ATOL: float = 1e-12


def isclose(a: float, b: float, *, rel_tol: float = REL_TOL,
            atol: float = ABS_TOL) -> bool:
    """``math.isclose`` with the library-wide default tolerances."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=atol)


def is_zero(x: float, *, atol: float = ZERO_ATOL) -> bool:
    """Whether a scalar is numerically indistinguishable from zero."""
    return abs(x) <= atol
