"""Robust one-dimensional maximization.

Best-response computation reduces to maximizing a user's utility along
her own rate axis.  The objective is smooth and usually unimodal, but
under some disciplines (and outside equilibrium) it can have plateaus or
several local maxima, and it can diverge to ``-inf`` near the capacity
boundary.  The helpers here therefore combine golden-section search with
a coarse multistart scan, and treat non-finite objective values as
``-inf`` rather than propagating exceptions.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

import numpy as np

INVPHI = (math.sqrt(5.0) - 1.0) / 2.0        # 1/phi
INVPHI2 = (3.0 - math.sqrt(5.0)) / 2.0       # 1/phi^2

#: A batched objective: maps an array of candidates to their values.
GridFunc = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class ScalarMaxResult:
    """Outcome of a scalar maximization.

    Attributes
    ----------
    x:
        Argmax estimate.
    value:
        Objective value at ``x``.
    evaluations:
        Number of objective evaluations performed.
    grid_calls:
        Number of batched grid evaluations (0 on the scalar path).
    wall_time:
        Seconds spent inside the maximizer (0.0 when not measured).
    """

    x: float
    value: float
    evaluations: int
    grid_calls: int = 0
    wall_time: float = 0.0


def _safe(func: Callable[[float], float]) -> Callable[[float], float]:
    """Wrap ``func`` so numerical blowups become ``-inf``."""

    def wrapped(x: float) -> float:
        try:
            value = func(x)
        except (OverflowError, ZeroDivisionError, ValueError,
                FloatingPointError):
            return -math.inf
        if value != value:          # NaN check without numpy
            return -math.inf
        return value

    return wrapped


def golden_section_max(func: Callable[[float], float], lo: float, hi: float,
                       tol: float = 1e-10,
                       max_iter: int = 200) -> ScalarMaxResult:
    """Golden-section search for the maximum of ``func`` on ``[lo, hi]``.

    Exact for unimodal objectives; for multimodal ones it returns a local
    maximum, which is why callers normally go through
    :func:`multistart_maximize`.
    """
    if hi < lo:
        lo, hi = hi, lo
    safe = _safe(func)
    a, b = lo, hi
    h = b - a
    evals = 2
    c = a + INVPHI2 * h
    d = a + INVPHI * h
    yc = safe(c)
    yd = safe(d)
    iterations = 0
    while h > tol and iterations < max_iter:
        if yc > yd:
            b, d, yd = d, c, yc
            h = b - a
            c = a + INVPHI2 * h
            yc = safe(c)
        else:
            a, c, yc = c, d, yd
            h = b - a
            d = a + INVPHI * h
            yd = safe(d)
        evals += 1
        iterations += 1
    if yc > yd:
        return ScalarMaxResult(x=c, value=yc, evaluations=evals)
    return ScalarMaxResult(x=d, value=yd, evaluations=evals)


def maximize_scalar(func: Callable[[float], float], lo: float, hi: float,
                    tol: float = 1e-10) -> ScalarMaxResult:
    """Maximize ``func`` on ``[lo, hi]`` assuming it is unimodal."""
    return golden_section_max(func, lo, hi, tol=tol)


def _safe_grid(grid_func: GridFunc, xs: np.ndarray) -> np.ndarray:
    """Evaluate a batch, mapping NaNs (and exceptions) to ``-inf``."""
    try:
        ys = np.asarray(grid_func(xs), dtype=float)
    except (OverflowError, ZeroDivisionError, ValueError,
            FloatingPointError):
        return np.full(xs.shape, -math.inf)
    if ys.shape != xs.shape:
        raise ValueError(
            f"grid objective returned shape {ys.shape} for {xs.shape}")
    return np.where(np.isnan(ys), -math.inf, ys)


#: Points per refinement round of the batched zoom (bracket shrinks by
#: ``2 / (GRID_REFINE_POINTS - 1)`` = 16x per round).
GRID_REFINE_POINTS = 33


def grid_multistart_maximize(grid_func: GridFunc, lo: float, hi: float,
                             n_scan: int = 33,
                             tol: float = 1e-10) -> ScalarMaxResult:
    """Batched scan + iterative grid-zoom maximization.

    The vectorized counterpart of :func:`multistart_maximize`: one grid
    call evaluates the coarse scan, then each refinement round
    evaluates :data:`GRID_REFINE_POINTS` points across the bracket
    around the incumbent and shrinks the bracket 16x, until its width
    falls under ``tol``.  Golden-section search is inherently
    sequential (~45 scalar calls at ``tol=1e-11``); the zoom replaces
    it with ~8 batched rounds, which is what lets a vectorized
    ``congestion_grid`` pay off end to end.  The argmax agrees with
    the scalar path to within ``tol`` (both land inside the same
    final bracket).
    """
    if n_scan < 3:
        raise ValueError("n_scan must be at least 3")
    if hi < lo:
        lo, hi = hi, lo
    xs = np.linspace(lo, hi, n_scan)
    ys = _safe_grid(grid_func, xs)
    evals = n_scan
    calls = 1
    best = int(np.argmax(ys))
    best_x = float(xs[best])
    best_y = float(ys[best])
    left = float(xs[max(best - 1, 0)])
    right = float(xs[min(best + 1, n_scan - 1)])
    width = right - left
    while width > tol:
        xs = np.linspace(left, right, GRID_REFINE_POINTS)
        ys = _safe_grid(grid_func, xs)
        evals += GRID_REFINE_POINTS
        calls += 1
        best = int(np.argmax(ys))
        if float(ys[best]) > best_y:
            best_x = float(xs[best])
            best_y = float(ys[best])
        left = float(xs[max(best - 1, 0)])
        right = float(xs[min(best + 1, GRID_REFINE_POINTS - 1)])
        new_width = right - left
        if new_width >= width:       # float resolution floor
            break
        width = new_width
    return ScalarMaxResult(x=best_x, value=best_y, evaluations=evals,
                           grid_calls=calls)


def multistart_maximize(func: Callable[[float], float], lo: float, hi: float,
                        n_scan: int = 33,
                        tol: float = 1e-10,
                        grid_func: Optional[GridFunc] = None,
                        ) -> ScalarMaxResult:
    """Global scalar maximization by scan + local refinement.

    Evaluates ``func`` on an ``n_scan``-point grid, then runs a
    golden-section search on the bracket around the best grid point.  The
    endpoints themselves are candidates, so boundary maxima are found.

    When ``grid_func`` is given (a batched objective evaluating a whole
    candidate array in one pass), the scan *and* the refinement run
    through :func:`grid_multistart_maximize` instead — same bracket
    logic, a handful of numpy calls instead of ~100 Python ones.  If
    the batched path raises, the scalar path is used as a fallback so
    a discipline with a buggy grid override degrades to correct-but-
    slow rather than failing.

    This is the workhorse behind best-response computation: accurate for
    unimodal objectives and resistant to the mild multimodality that
    arises under non-Fair-Share disciplines out of equilibrium.
    """
    # greedwork: ignore[GW502] -- wall_time is diagnostic metadata
    # only; it never feeds a numeric result, table, or golden.
    start = time.perf_counter()
    if grid_func is not None:
        try:
            result = grid_multistart_maximize(grid_func, lo, hi,
                                              n_scan=n_scan, tol=tol)
        except (TypeError, ValueError, IndexError, AttributeError):
            result = None
        if result is not None:
            return replace(result,
                           # greedwork: ignore[GW502] -- diagnostic.
                           wall_time=time.perf_counter() - start)
    if n_scan < 3:
        raise ValueError("n_scan must be at least 3")
    if hi < lo:
        lo, hi = hi, lo
    safe = _safe(func)
    width = hi - lo
    xs = [lo + width * k / (n_scan - 1) for k in range(n_scan)]
    ys = [safe(x) for x in xs]
    best = max(range(n_scan), key=lambda k: ys[k])
    left = xs[max(best - 1, 0)]
    right = xs[min(best + 1, n_scan - 1)]
    refined = golden_section_max(func, left, right, tol=tol)
    evals = n_scan + refined.evaluations
    # greedwork: ignore[GW502] -- diagnostic wall time only.
    elapsed = time.perf_counter() - start
    if ys[best] > refined.value:
        return ScalarMaxResult(x=xs[best], value=ys[best], evaluations=evals,
                               wall_time=elapsed)
    return ScalarMaxResult(x=refined.x, value=refined.value,
                           evaluations=evals, wall_time=elapsed)


def argmax_on_grid(func: Callable[[float], float],
                   grid: Sequence[float]) -> float:
    """Return the grid point maximizing ``func`` (ties go to the first)."""
    if not grid:
        raise ValueError("grid must be non-empty")
    safe = _safe(func)
    best_x = grid[0]
    best_y = safe(grid[0])
    for x in grid[1:]:
        y = safe(x)
        if y > best_y:
            best_x, best_y = x, y
    return best_x
