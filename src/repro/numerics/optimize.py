"""Robust one-dimensional maximization.

Best-response computation reduces to maximizing a user's utility along
her own rate axis.  The objective is smooth and usually unimodal, but
under some disciplines (and outside equilibrium) it can have plateaus or
several local maxima, and it can diverge to ``-inf`` near the capacity
boundary.  The helpers here therefore combine golden-section search with
a coarse multistart scan, and treat non-finite objective values as
``-inf`` rather than propagating exceptions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

INVPHI = (math.sqrt(5.0) - 1.0) / 2.0        # 1/phi
INVPHI2 = (3.0 - math.sqrt(5.0)) / 2.0       # 1/phi^2


@dataclass(frozen=True)
class ScalarMaxResult:
    """Outcome of a scalar maximization.

    Attributes
    ----------
    x:
        Argmax estimate.
    value:
        Objective value at ``x``.
    evaluations:
        Number of objective evaluations performed.
    """

    x: float
    value: float
    evaluations: int


def _safe(func: Callable[[float], float]) -> Callable[[float], float]:
    """Wrap ``func`` so numerical blowups become ``-inf``."""

    def wrapped(x: float) -> float:
        try:
            value = func(x)
        except (OverflowError, ZeroDivisionError, ValueError,
                FloatingPointError):
            return -math.inf
        if value != value:          # NaN check without numpy
            return -math.inf
        return value

    return wrapped


def golden_section_max(func: Callable[[float], float], lo: float, hi: float,
                       tol: float = 1e-10,
                       max_iter: int = 200) -> ScalarMaxResult:
    """Golden-section search for the maximum of ``func`` on ``[lo, hi]``.

    Exact for unimodal objectives; for multimodal ones it returns a local
    maximum, which is why callers normally go through
    :func:`multistart_maximize`.
    """
    if hi < lo:
        lo, hi = hi, lo
    safe = _safe(func)
    a, b = lo, hi
    h = b - a
    evals = 2
    c = a + INVPHI2 * h
    d = a + INVPHI * h
    yc = safe(c)
    yd = safe(d)
    iterations = 0
    while h > tol and iterations < max_iter:
        if yc > yd:
            b, d, yd = d, c, yc
            h = b - a
            c = a + INVPHI2 * h
            yc = safe(c)
        else:
            a, c, yc = c, d, yd
            h = b - a
            d = a + INVPHI * h
            yd = safe(d)
        evals += 1
        iterations += 1
    if yc > yd:
        return ScalarMaxResult(x=c, value=yc, evaluations=evals)
    return ScalarMaxResult(x=d, value=yd, evaluations=evals)


def maximize_scalar(func: Callable[[float], float], lo: float, hi: float,
                    tol: float = 1e-10) -> ScalarMaxResult:
    """Maximize ``func`` on ``[lo, hi]`` assuming it is unimodal."""
    return golden_section_max(func, lo, hi, tol=tol)


def multistart_maximize(func: Callable[[float], float], lo: float, hi: float,
                        n_scan: int = 33,
                        tol: float = 1e-10) -> ScalarMaxResult:
    """Global scalar maximization by scan + local refinement.

    Evaluates ``func`` on an ``n_scan``-point grid, then runs a
    golden-section search on the bracket around the best grid point.  The
    endpoints themselves are candidates, so boundary maxima are found.

    This is the workhorse behind best-response computation: accurate for
    unimodal objectives and resistant to the mild multimodality that
    arises under non-Fair-Share disciplines out of equilibrium.
    """
    if n_scan < 3:
        raise ValueError("n_scan must be at least 3")
    if hi < lo:
        lo, hi = hi, lo
    safe = _safe(func)
    width = hi - lo
    xs = [lo + width * k / (n_scan - 1) for k in range(n_scan)]
    ys = [safe(x) for x in xs]
    best = max(range(n_scan), key=lambda k: ys[k])
    left = xs[max(best - 1, 0)]
    right = xs[min(best + 1, n_scan - 1)]
    refined = golden_section_max(func, left, right, tol=tol)
    evals = n_scan + refined.evaluations
    if ys[best] > refined.value:
        return ScalarMaxResult(x=xs[best], value=ys[best], evaluations=evals)
    return ScalarMaxResult(x=refined.x, value=refined.value,
                           evaluations=evals)


def argmax_on_grid(func: Callable[[float], float],
                   grid: Sequence[float]) -> float:
    """Return the grid point maximizing ``func`` (ties go to the first)."""
    if not grid:
        raise ValueError("grid must be non-empty")
    safe = _safe(func)
    best_x = grid[0]
    best_y = safe(grid[0])
    for x in grid[1:]:
        y = safe(x)
        if y > best_y:
            best_x, best_y = x, y
    return best_x
