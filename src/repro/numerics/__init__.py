"""Shared numerical routines.

The game-theoretic layers need reliable derivatives of allocation
functions and utilities, robust one-dimensional maximization for best
responses, and damped iteration helpers for equilibrium computation.
They are collected here so every subsystem differentiates and optimizes
the same way.
"""

from repro.numerics.diff import (
    gradient,
    hessian,
    partial_derivative,
    second_partial,
)
from repro.numerics.optimize import (
    ScalarMaxResult,
    golden_section_max,
    maximize_scalar,
    multistart_maximize,
)
from repro.numerics.iterate import (
    FixedPointResult,
    damped_fixed_point,
)
from repro.numerics.rng import DEFAULT_SEED, default_rng
from repro.numerics.tolerances import (
    ABS_TOL,
    REL_TOL,
    ZERO_ATOL,
    is_zero,
    isclose,
)

__all__ = [
    "gradient",
    "hessian",
    "partial_derivative",
    "second_partial",
    "ScalarMaxResult",
    "golden_section_max",
    "maximize_scalar",
    "multistart_maximize",
    "FixedPointResult",
    "damped_fixed_point",
    "DEFAULT_SEED",
    "default_rng",
    "ABS_TOL",
    "REL_TOL",
    "ZERO_ATOL",
    "is_zero",
    "isclose",
]
