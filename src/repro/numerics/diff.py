"""Finite-difference derivatives.

Central differences with a curvature-aware default step.  These are used
both as the numeric fallback for allocation functions without analytic
derivatives and as the cross-check for those with them.

All routines accept functions of a numpy vector returning a float, and
are careful never to evaluate the target function at the base point more
often than necessary (allocation functions can be moderately expensive
when they wrap a simulator).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

#: Default relative step for first derivatives (cube root of eps is the
#: textbook optimum for central differences).
DEFAULT_STEP = float(np.cbrt(np.finfo(float).eps))

#: Default relative step for second derivatives (fourth root of eps).
DEFAULT_STEP2 = float(np.finfo(float).eps ** 0.25)

VectorFunc = Callable[[np.ndarray], float]


def _step_for(x: float, rel: float) -> float:
    """Absolute step scaled to the magnitude of ``x``."""
    return rel * max(abs(x), 1.0)


def diff_step(x: float) -> float:
    """The default first-derivative step at ``x`` (public helper).

    Exposed so callers that differentiate through evaluator closures
    (e.g. the class-space FDC residuals) use the same step policy as
    :func:`partial_derivative`.
    """
    return _step_for(float(x), DEFAULT_STEP)


def partial_derivative(func: VectorFunc, x: np.ndarray, i: int,
                       step: Optional[float] = None) -> float:
    """Central-difference estimate of ``d func / d x_i`` at ``x``.

    Parameters
    ----------
    func:
        Scalar function of a vector.
    x:
        Evaluation point; not modified.
    i:
        Index of the coordinate to differentiate.
    step:
        Absolute step size; defaults to a relative step of
        :data:`DEFAULT_STEP`.
    """
    x = np.asarray(x, dtype=float)
    h = _step_for(x[i], DEFAULT_STEP) if step is None else step
    forward = x.copy()
    backward = x.copy()
    forward[i] += h
    backward[i] -= h
    return (func(forward) - func(backward)) / (2.0 * h)


def gradient(func: VectorFunc, x: np.ndarray,
             step: Optional[float] = None) -> np.ndarray:
    """Central-difference gradient of ``func`` at ``x``."""
    x = np.asarray(x, dtype=float)
    return np.array([partial_derivative(func, x, i, step=step)
                     for i in range(x.size)])


def second_partial(func: VectorFunc, x: np.ndarray, i: int, j: int,
                   step: Optional[float] = None) -> float:
    """Central-difference estimate of ``d^2 func / d x_i d x_j``.

    Uses the four-point stencil for mixed partials and the three-point
    stencil on the diagonal.
    """
    x = np.asarray(x, dtype=float)
    hi = _step_for(x[i], DEFAULT_STEP2) if step is None else step
    if i == j:
        plus = x.copy()
        minus = x.copy()
        plus[i] += hi
        minus[i] -= hi
        return (func(plus) - 2.0 * func(x) + func(minus)) / (hi * hi)
    hj = _step_for(x[j], DEFAULT_STEP2) if step is None else step
    pp = x.copy()
    pm = x.copy()
    mp = x.copy()
    mm = x.copy()
    pp[i] += hi
    pp[j] += hj
    pm[i] += hi
    pm[j] -= hj
    mp[i] -= hi
    mp[j] += hj
    mm[i] -= hi
    mm[j] -= hj
    return (func(pp) - func(pm) - func(mp) + func(mm)) / (4.0 * hi * hj)


def hessian(func: VectorFunc, x: np.ndarray,
            step: Optional[float] = None) -> np.ndarray:
    """Symmetric central-difference Hessian of ``func`` at ``x``."""
    x = np.asarray(x, dtype=float)
    n = x.size
    out = np.empty((n, n))
    for i in range(n):
        out[i, i] = second_partial(func, x, i, i, step=step)
        for j in range(i + 1, n):
            value = second_partial(func, x, i, j, step=step)
            out[i, j] = value
            out[j, i] = value
    return out
