"""Solver observability: evaluation counters and the vectorization switch.

The analytic game layer is the hot path once the event engine is fast
(PR 3), so its solvers carry lightweight instrumentation: every best
response records how many objective/congestion evaluations it spent and
how many batched grid calls it made, and experiment reports surface the
deterministic totals.  The module also owns the switch between the
vectorized grid evaluation core and the legacy scalar scan, so the two
can be A/B-timed on the same box (``benchmarks/bench_solver.py``) and
the scalar path stays available as a correctness oracle.

Mirrors the toggle idiom of :mod:`repro.sim.cache`:

* environment: ``GREEDWORK_SOLVER_VECTOR=off`` (or ``0``/``false``/
  ``no``) disables the vectorized paths for the whole process;
* programmatic: :func:`set_vectorized` overrides the environment for
  the current process (``None`` restores environment control).

Counters nest: :func:`track_solver` pushes a fresh
:class:`SolverCounters` onto a stack and :func:`record` adds to every
frame, so an outer tracker (the experiment runner) sees the totals of
everything beneath it.  Wall time is recorded but deliberately kept
out of experiment stdout — report output must stay byte-identical
across serial/parallel runs and across machines; only the
deterministic evaluation counts are printed.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

ENV_TOGGLE = "GREEDWORK_SOLVER_VECTOR"
_DISABLING_VALUES = {"0", "off", "false", "no"}

_vector_override: Optional[bool] = None


def vectorized() -> bool:
    """Whether solvers should use the batched grid evaluation core."""
    if _vector_override is not None:
        return _vector_override
    raw = os.environ.get(ENV_TOGGLE)
    if raw is None:
        return True
    return raw.strip().lower() not in _DISABLING_VALUES


def set_vectorized(value: Optional[bool]) -> None:
    """Force the vectorization switch on/off; ``None`` defers to the env."""
    # greedwork: ignore[GW601] -- deliberately per-process: each worker
    # re-applies the parent's flag from its payload (registry._run_one).
    global _vector_override
    _vector_override = value


@dataclass
class SolverCounters:
    """Evaluation totals accumulated inside one :func:`track_solver`.

    Attributes
    ----------
    objective_evals:
        Scalar utility-objective evaluations (one per candidate rate).
    congestion_evals:
        Allocation congestion evaluations; equals ``objective_evals``
        on the best-response path but also counts certification and
        adversarial-search congestion calls that bypass a utility.
    grid_calls:
        Batched evaluations (one numpy pass over a whole grid).
    wall_time:
        Seconds spent inside instrumented solver sections.  Never
        printed in experiment output (non-deterministic); exposed for
        benchmarks.
    """

    objective_evals: int = 0
    congestion_evals: int = 0
    grid_calls: int = 0
    wall_time: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """The counters as a plain dict (benchmark/report records)."""
        return {
            "objective_evals": self.objective_evals,
            "congestion_evals": self.congestion_evals,
            "grid_calls": self.grid_calls,
            "wall_time": self.wall_time,
        }


_STACK: List[SolverCounters] = []


def record(objective_evals: int = 0, congestion_evals: int = 0,
           grid_calls: int = 0, wall_time: float = 0.0) -> None:
    """Add to every active tracker (no-op when none is active)."""
    for frame in _STACK:
        frame.objective_evals += objective_evals
        frame.congestion_evals += congestion_evals
        frame.grid_calls += grid_calls
        frame.wall_time += wall_time


@contextmanager
def track_solver() -> Iterator[SolverCounters]:
    """Collect solver counters for the duration of the ``with`` block."""
    frame = SolverCounters()
    # greedwork: ignore[GW601] -- per-process instrumentation stack;
    # counters are returned to the caller and merged in the parent.
    _STACK.append(frame)
    try:
        yield frame
    finally:
        _STACK.remove(frame)
