"""Solver observability: evaluation counters and the vectorization switch.

The analytic game layer is the hot path once the event engine is fast
(PR 3), so its solvers carry lightweight instrumentation: every best
response records how many objective/congestion evaluations it spent and
how many batched grid calls it made, and experiment reports surface the
deterministic totals.  The module also owns the switch between the
vectorized grid evaluation core and the legacy scalar scan, so the two
can be A/B-timed on the same box (``benchmarks/bench_solver.py``) and
the scalar path stays available as a correctness oracle.

Mirrors the toggle idiom of :mod:`repro.sim.cache`:

* environment: ``GREEDWORK_SOLVER_VECTOR=off`` (or ``0``/``false``/
  ``no``) disables the vectorized paths for the whole process;
  ``GREEDWORK_SOLVER_VECTOR=auto`` selects per-call between the grid
  and scalar paths from the discipline's measured cost model;
* programmatic: :func:`set_vectorized` overrides the environment for
  the current process (``None`` restores environment control).

The switch is tri-state (:func:`mode`): ``"on"`` always uses the
batched grid when a discipline advertises one, ``"off"`` always scans
scalar, and ``"auto"`` consults the discipline's
:attr:`~repro.disciplines.base.AllocationFunction.grid_min_users`
cost hint — disciplines whose scalar objective is a single reduction
(FIFO's one ``sum``) beat the fixed numpy call overhead of the grid
path at small N, and auto keeps them on the faster path without
giving up the grid at scale.  Auto is a pure cost decision: its
output is bit-identical to whichever pure mode it selects (``"off"``
below the hint, ``"on"`` at or above it), and the two pure paths
themselves agree to within the maximizer tolerance (both refine
inside the same scan bracket).

Counters nest: :func:`track_solver` pushes a fresh
:class:`SolverCounters` onto a stack and :func:`record` adds to every
frame, so an outer tracker (the experiment runner) sees the totals of
everything beneath it.  Wall time is recorded but deliberately kept
out of experiment stdout — report output must stay byte-identical
across serial/parallel runs and across machines; only the
deterministic evaluation counts are printed.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

ENV_TOGGLE = "GREEDWORK_SOLVER_VECTOR"
_DISABLING_VALUES = {"0", "off", "false", "no"}
_AUTO_VALUES = {"auto", "cost", "adaptive"}

_vector_override: Optional[str] = None


def mode() -> str:
    """The solver-vectorization mode: ``"on"``, ``"off"`` or ``"auto"``."""
    if _vector_override is not None:
        return _vector_override
    raw = os.environ.get(ENV_TOGGLE)
    if raw is None:
        return "on"
    cleaned = raw.strip().lower()
    if cleaned in _DISABLING_VALUES:
        return "off"
    if cleaned in _AUTO_VALUES:
        return "auto"
    return "on"


def vectorized() -> bool:
    """Whether solvers may use the batched grid evaluation core.

    True in both ``"on"`` and ``"auto"`` modes; ``"auto"`` additionally
    lets the call site fall back to the scalar path when the
    discipline's cost hint says the grid loses at the problem size.
    """
    return mode() != "off"


def set_vectorized(value) -> None:
    """Force the vectorization switch; ``None`` defers to the env.

    Accepts the historical booleans (``True`` → ``"on"``, ``False`` →
    ``"off"``) as well as the mode strings ``"on"``/``"off"``/
    ``"auto"``.
    """
    # greedwork: ignore[GW601] -- deliberately per-process: each worker
    # re-applies the parent's flag from its payload (registry._run_one).
    global _vector_override
    if value is None:
        _vector_override = None
    elif isinstance(value, bool):
        _vector_override = "on" if value else "off"
    elif value in ("on", "off", "auto"):
        _vector_override = value
    else:
        raise ValueError(
            f"expected True/False/None or 'on'/'off'/'auto', got {value!r}")


@dataclass
class SolverCounters:
    """Evaluation totals accumulated inside one :func:`track_solver`.

    Attributes
    ----------
    objective_evals:
        Scalar utility-objective evaluations (one per candidate rate).
    congestion_evals:
        Allocation congestion evaluations; equals ``objective_evals``
        on the best-response path but also counts certification and
        adversarial-search congestion calls that bypass a utility.
    grid_calls:
        Batched evaluations (one numpy pass over a whole grid).
    wall_time:
        Seconds spent inside instrumented solver sections.  Never
        printed in experiment output (non-deterministic); exposed for
        benchmarks.
    """

    objective_evals: int = 0
    congestion_evals: int = 0
    grid_calls: int = 0
    wall_time: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """The counters as a plain dict (benchmark/report records)."""
        return {
            "objective_evals": self.objective_evals,
            "congestion_evals": self.congestion_evals,
            "grid_calls": self.grid_calls,
            "wall_time": self.wall_time,
        }


_STACK: List[SolverCounters] = []


def record(objective_evals: int = 0, congestion_evals: int = 0,
           grid_calls: int = 0, wall_time: float = 0.0) -> None:
    """Add to every active tracker (no-op when none is active)."""
    for frame in _STACK:
        frame.objective_evals += objective_evals
        frame.congestion_evals += congestion_evals
        frame.grid_calls += grid_calls
        frame.wall_time += wall_time


@contextmanager
def track_solver() -> Iterator[SolverCounters]:
    """Collect solver counters for the duration of the ``with`` block."""
    frame = SolverCounters()
    # greedwork: ignore[GW601] -- per-process instrumentation stack;
    # counters are returned to the caller and merged in the parent.
    _STACK.append(frame)
    try:
        yield frame
    finally:
        _STACK.remove(frame)
