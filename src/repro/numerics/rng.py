"""The library's single source of randomness policy.

Reproducibility of the Table-1/theorem experiments requires that every
stochastic routine either (a) receives a ``numpy.random.Generator``
from its caller, or (b) falls back to a *documented* deterministic
seed through this module.  Direct ``np.random.default_rng(...)`` calls
(and any legacy global-state ``np.random.*`` function) elsewhere in
the library are rejected by the static-analysis rule ``GW003`` (see
:mod:`repro.staticcheck.rules.rng`), so the fallback policy lives in
exactly one place: here.

Usage pattern for a function with an optional RNG parameter::

    from repro.numerics import default_rng

    def sample(..., rng: Optional[np.random.Generator] = None):
        generator = default_rng(rng if rng is not None else SOME_SEED)
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

Seed = Union[None, int, np.random.Generator]

#: Seed used when a caller supplies neither a generator nor a seed.
DEFAULT_SEED: int = 0


def default_rng(seed: Seed = None) -> np.random.Generator:
    """Construct (or pass through) a ``numpy.random.Generator``.

    Parameters
    ----------
    seed:
        ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an
        existing ``Generator`` (returned unchanged, so call sites can
        write ``default_rng(rng if rng is not None else 7)`` without
        re-seeding a caller-provided stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    # The one sanctioned construction site for the whole library.
    return np.random.default_rng(seed)  # greedwork: ignore[GW003]
