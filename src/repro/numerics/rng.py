"""The library's single source of randomness policy.

Reproducibility of the Table-1/theorem experiments requires that every
stochastic routine either (a) receives a ``numpy.random.Generator``
from its caller, or (b) falls back to a *documented* deterministic
seed through this module.  Direct ``np.random.default_rng(...)`` calls
(and any legacy global-state ``np.random.*`` function) elsewhere in
the library are rejected by the static-analysis rule ``GW003`` (see
:mod:`repro.staticcheck.rules.rng`), so the fallback policy lives in
exactly one place: here.

Usage pattern for a function with an optional RNG parameter::

    from repro.numerics import default_rng

    def sample(..., rng: Optional[np.random.Generator] = None):
        generator = default_rng(rng if rng is not None else SOME_SEED)
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

Seed = Union[None, int, np.random.Generator]

#: Seed used when a caller supplies neither a generator nor a seed.
DEFAULT_SEED: int = 0


def default_rng(seed: Seed = None) -> np.random.Generator:
    """Construct (or pass through) a ``numpy.random.Generator``.

    Parameters
    ----------
    seed:
        ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an
        existing ``Generator`` (returned unchanged, so call sites can
        write ``default_rng(rng if rng is not None else 7)`` without
        re-seeding a caller-provided stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    # The one sanctioned construction site for the whole library.
    return np.random.default_rng(seed)  # greedwork: ignore[GW003]


def spawn_generators(seed: int, n: int) -> List[np.random.Generator]:
    """``n`` independent generators derived from one integer seed.

    The children are ``numpy.random.SeedSequence(seed).spawn(n)`` in
    order, so the k-th stream is a pure function of ``(seed, n, k)``:
    code that fixes a stream *layout* (e.g. the simulation engine's
    per-user arrival streams) gets reproducible, statistically
    independent substreams that do not interact however unevenly they
    are consumed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    children = np.random.SeedSequence(seed).spawn(n)
    # Same sanctioned construction site as default_rng above.
    return [np.random.default_rng(child)  # greedwork: ignore[GW003]
            for child in children]


def spawn_seeds(seed: int, n: int) -> List[int]:
    """``n`` independent integer seeds derived from one integer seed.

    Each child seed is the first 64-bit word of the k-th spawned
    ``SeedSequence`` — use these where an ``int`` seed must travel
    (process boundaries, config hashing) rather than a ``Generator``.
    ``replicate`` derives its per-replication seeds this way, which is
    what makes parallel and serial replication byte-identical.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seeds")
    children = np.random.SeedSequence(seed).spawn(n)
    return [int(child.generate_state(1, np.uint64)[0])
            for child in children]
