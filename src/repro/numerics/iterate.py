"""Damped fixed-point iteration.

Best-response dynamics are a fixed-point iteration ``r <- B(r)``; plain
iteration can overshoot under disciplines with strong coupling (FIFO),
so the solver supports damping and adaptive damping reduction when the
residual stalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.exceptions import ConvergenceError


@dataclass
class FixedPointResult:
    """Outcome of a damped fixed-point iteration.

    Attributes
    ----------
    x:
        Final iterate.
    converged:
        Whether the residual dropped below tolerance.
    iterations:
        Number of iterations performed.
    residual:
        Final sup-norm residual ``||B(x) - x||``.
    history:
        Iterate trajectory (including the start point) when recording
        was requested, else ``None``.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual: float
    history: Optional[np.ndarray] = None


def damped_fixed_point(mapping: Callable[[np.ndarray], np.ndarray],
                       x0: np.ndarray,
                       damping: float = 0.5,
                       tol: float = 1e-10,
                       max_iter: int = 500,
                       adapt: bool = True,
                       record: bool = False,
                       raise_on_failure: bool = False) -> FixedPointResult:
    """Iterate ``x <- (1-d) x + d B(x)`` until ``||B(x) - x||_inf < tol``.

    Parameters
    ----------
    mapping:
        The map ``B`` whose fixed point is sought.
    x0:
        Starting point.
    damping:
        Initial step fraction ``d`` in (0, 1].
    adapt:
        Halve the damping whenever the residual fails to shrink for
        several consecutive iterations (helps FIFO's near-oscillatory
        best-response dynamics).
    record:
        Keep the full trajectory in :attr:`FixedPointResult.history`.
    raise_on_failure:
        Raise :class:`~repro.exceptions.ConvergenceError` instead of
        returning a non-converged result.
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError("damping must lie in (0, 1]")
    x = np.asarray(x0, dtype=float).copy()
    trail = [x.copy()] if record else None
    d = damping
    last_residual = np.inf
    stall = 0
    residual = np.inf
    for iteration in range(1, max_iter + 1):
        target = np.asarray(mapping(x), dtype=float)
        residual = float(np.max(np.abs(target - x)))
        if record:
            trail.append(target.copy())
        if residual < tol:
            history = np.array(trail) if record else None
            return FixedPointResult(x=x, converged=True,
                                    iterations=iteration,
                                    residual=residual, history=history)
        if adapt:
            if residual >= last_residual * 0.999:
                stall += 1
                if stall >= 3 and d > 1.0 / 64.0:
                    d *= 0.5
                    stall = 0
            else:
                stall = 0
        last_residual = residual
        x = (1.0 - d) * x + d * target
    if raise_on_failure:
        raise ConvergenceError(
            "fixed-point iteration did not converge "
            f"(residual {residual:.3e} after {max_iter} iterations)",
            iterations=max_iter, residual=residual)
    history = np.array(trail) if record else None
    return FixedPointResult(x=x, converged=False, iterations=max_iter,
                            residual=residual, history=history)
