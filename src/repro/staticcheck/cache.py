"""Content-hash-keyed incremental result cache.

Results are keyed by (engine signature, file content hash), so a warm
run re-analyzes only files whose *content* changed — touching mtimes,
moving the checkout, or re-ordering arguments costs nothing.  The
engine signature hashes the ``staticcheck`` package sources plus the
active rule ids: editing any rule, or changing ``--select``/
``--ignore``, invalidates everything at once rather than serving
findings a different engine produced.

Whole-program results are cached separately under a *project digest* —
the hash of every (path, content-hash) pair the
:class:`~repro.staticcheck.project.ProjectContext` would see — since
one changed file can change any project-rule finding anywhere.

The cache lives in ``.greedwork_cache/`` under the project root
(override with ``cache_dir``; disable with ``--no-cache``).  A corrupt
or version-skewed cache file is discarded silently: the cache is an
accelerator, never a source of truth.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.staticcheck.core import Finding

#: Default cache directory name, created under the project root.
CACHE_DIR_NAME = ".greedwork_cache"

#: Bump to invalidate every cache regardless of content hashes.
CACHE_SCHEMA_VERSION = 1

_FindingPair = Tuple[List[Finding], List[Finding]]

_engine_source_digest: Optional[str] = None


def file_digest(source: str) -> str:
    """Content hash of one source file."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _staticcheck_sources_digest() -> str:
    """Hash of the analysis engine's own sources (memoized)."""
    global _engine_source_digest
    if _engine_source_digest is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).resolve().parent
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
        _engine_source_digest = digest.hexdigest()
    return _engine_source_digest


def engine_signature(rule_ids: Sequence[str]) -> str:
    """Cache key component tying results to engine + rule selection."""
    digest = hashlib.sha256()
    digest.update(str(CACHE_SCHEMA_VERSION).encode())
    digest.update(_staticcheck_sources_digest().encode())
    digest.update(",".join(sorted(rule_ids)).encode())
    return digest.hexdigest()


def project_digest(file_hashes: Dict[str, str],
                   rule_ids: Sequence[str]) -> str:
    """Digest of the whole program a project rule would observe."""
    digest = hashlib.sha256()
    digest.update(",".join(sorted(rule_ids)).encode())
    for display_path in sorted(file_hashes):
        digest.update(display_path.encode())
        digest.update(file_hashes[display_path].encode())
    return digest.hexdigest()


def _encode_pair(findings: Sequence[Finding],
                 suppressed: Sequence[Finding]) -> Dict[str, object]:
    return {"findings": [f.to_dict() for f in findings],
            "suppressed": [f.to_dict() for f in suppressed]}


def _decode_pair(payload: Dict[str, object]) -> _FindingPair:
    return ([Finding.from_dict(f) for f in payload["findings"]],
            [Finding.from_dict(f) for f in payload["suppressed"]])


class CheckCache:
    """One cache directory, bound to one engine signature."""

    def __init__(self, directory: Path, signature: str) -> None:
        self.directory = Path(directory)
        self.signature = signature
        self.path = self.directory / "cache.json"
        self._files: Dict[str, Dict[str, object]] = {}
        self._project: Dict[str, object] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("signature") != self.signature:
            return                      # engine or rule set changed
        files = payload.get("files")
        project = payload.get("project")
        if isinstance(files, dict):
            self._files = files
        if isinstance(project, dict):
            self._project = project

    # -- per-file results ---------------------------------------------------

    def get_file(self, display_path: str,
                 digest: str) -> Optional[_FindingPair]:
        """Cached (findings, suppressed) if the content hash matches."""
        entry = self._files.get(display_path)
        if not entry or entry.get("hash") != digest:
            return None
        try:
            return _decode_pair(entry)
        except (KeyError, TypeError, ValueError):
            return None

    def put_file(self, display_path: str, digest: str,
                 findings: Sequence[Finding],
                 suppressed: Sequence[Finding]) -> None:
        """Record one file's results under its content hash."""
        entry = _encode_pair(findings, suppressed)
        entry["hash"] = digest
        self._files[display_path] = entry
        self._dirty = True

    # -- whole-program results ----------------------------------------------

    def get_project(self, digest: str) -> Optional[_FindingPair]:
        """Cached project-rule results if the project digest matches."""
        if self._project.get("digest") != digest:
            return None
        try:
            return _decode_pair(self._project)
        except (KeyError, TypeError, ValueError):
            return None

    def put_project(self, digest: str,
                    findings: Sequence[Finding],
                    suppressed: Sequence[Finding]) -> None:
        """Record whole-program results under the project digest."""
        self._project = _encode_pair(findings, suppressed)
        self._project["digest"] = digest
        self._dirty = True

    # -- invalidation (the fix engine rewrites files in place) --------------

    def invalidate_file(self, display_path: str) -> None:
        """Drop one file's entry (its content is about to change)."""
        if self._files.pop(display_path, None) is not None:
            self._dirty = True

    def invalidate_project(self) -> None:
        """Drop the whole-program entry (any rewrite changes the
        project digest, and stale project findings must never be
        served against the patched tree)."""
        if self._project:
            self._project = {}
            self._dirty = True

    # -- persistence --------------------------------------------------------

    def save(self) -> None:
        """Atomically persist to disk (no-op when nothing changed)."""
        if not self._dirty:
            return
        payload = {"signature": self.signature,
                   "files": self._files,
                   "project": self._project}
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            pass                        # cache is best-effort only
        self._dirty = False
