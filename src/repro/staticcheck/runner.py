"""Collect files, run rules, apply suppressions."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.staticcheck.core import (
    CheckResult,
    FileContext,
    Finding,
    Rule,
    all_rules,
    display_path_for,
)

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".pytest_cache",
                        "build", "dist", ".venv", "venv"})


def collect_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def run_checks(paths: Sequence[Union[str, Path]],
               rules: Optional[Sequence[Rule]] = None,
               project_root: Optional[Union[str, Path]] = None,
               ) -> CheckResult:
    """Run the suite over ``paths`` and return a :class:`CheckResult`.

    Parameters
    ----------
    paths:
        Files and/or directories (recursed) to analyse.
    rules:
        Rule instances to apply; defaults to every registered rule.
    project_root:
        Base for report-relative paths; defaults to the current
        working directory.
    """
    active = list(rules) if rules is not None else all_rules()
    root = Path(project_root) if project_root is not None else Path.cwd()
    result = CheckResult()
    for path in collect_files(paths):
        result.files_checked += 1
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.findings.append(Finding(
                rule_id="GW000", path=display_path_for(path, root),
                line=1, col=1, message=f"cannot read file: {exc}"))
            continue
        try:
            ctx = FileContext(path, source, project_root=root)
        except SyntaxError as exc:
            result.findings.append(Finding(
                rule_id="GW000", path=display_path_for(path, root),
                line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                message=f"syntax error: {exc.msg}"))
            continue
        for rule in active:
            for finding in rule.check(ctx):
                if ctx.is_suppressed(finding):
                    result.suppressed.append(finding)
                else:
                    result.findings.append(finding)
    result.findings.sort(key=lambda f: f.sort_key())
    result.suppressed.sort(key=lambda f: f.sort_key())
    return result
