"""Orchestrate a check run: collect, cache, fan out, aggregate.

The pipeline per invocation:

1. expand the argument paths into ``.py`` files (loudly rejecting
   missing paths and non-Python files — see :class:`CheckUsageError`);
2. read and content-hash every file; serve per-file results from the
   incremental cache where the hash matches;
3. run per-file rules over the remainder — serially, or across worker
   processes when ``jobs > 1`` (file rules are embarrassingly
   parallel: one file in, findings out);
4. run project rules over a :class:`ProjectContext` built from the
   analyzed files plus the reference roots, unless the whole-program
   digest is unchanged in the cache;
5. subtract the accepted baseline, sort, and return a
   :class:`CheckResult`.
"""

from __future__ import annotations

import multiprocessing
import time
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.staticcheck.baseline import apply_baseline, load_baseline
from repro.staticcheck.cache import (
    CACHE_DIR_NAME,
    CheckCache,
    engine_signature,
    file_digest,
    project_digest,
)
from repro.staticcheck.core import (
    CheckResult,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    all_rules,
    display_path_for,
    get_rule,
)
from repro.staticcheck.project import REFERENCE_ROOTS, ProjectContext

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".pytest_cache",
                        "build", "dist", ".venv", "venv",
                        CACHE_DIR_NAME})


class CheckUsageError(ValueError):
    """The *invocation* is wrong (bad path, bad suffix), not the code."""


def collect_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Directory arguments are recursed (skipping build/VCS internals).
    A file argument must exist and end in ``.py``; anything else
    raises :class:`CheckUsageError`, matching the CLI's
    error-on-missing-path behavior so programmatic and command-line
    runs cannot silently diverge.
    """
    out: List[Path] = []
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            if path.suffix != ".py":
                raise CheckUsageError(
                    f"unsupported file type (expected .py): {path}")
            candidates = [path]
        else:
            raise CheckUsageError(
                f"no such file or directory: {path}")
        for candidate in candidates:
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def _read_error_finding(path: Path, root: Path, exc: Exception) -> Finding:
    return Finding(rule_id="GW000", path=display_path_for(path, root),
                   line=1, col=1, message=f"cannot read file: {exc}")


def reference_sources(root: Path, reference_roots: Sequence[str],
                      analyzed_resolved: Iterable[Path]
                      ) -> Dict[Path, str]:
    """Sources of reference-only files for whole-program rules.

    Scans each ``reference_roots`` subdirectory of ``root`` for
    ``.py`` files not already in ``analyzed_resolved`` (resolved
    paths), skipping build/VCS internals; unreadable files are
    silently dropped (reference context is best-effort).  Shared by
    :func:`run_checks` and the fix engine so both see the same
    whole-program scope.
    """
    analyzed = set(analyzed_resolved)
    out: Dict[Path, str] = {}
    for root_name in reference_roots:
        ref_root = root / root_name
        if not ref_root.is_dir():
            continue
        for path in sorted(ref_root.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in path.parts):
                continue
            if path.resolve() in analyzed:
                continue
            try:
                out[path] = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                continue
    return out


def _parse_error_finding(ctx: FileContext) -> Finding:
    exc = ctx.parse_error
    assert exc is not None
    return Finding(rule_id="GW000", path=ctx.display_path,
                   line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                   message=f"syntax error: {exc.msg}")


def _run_file_rules(ctx: FileContext, rules: Sequence[Rule]
                    ) -> Tuple[List[Finding], List[Finding]]:
    """(findings, suppressed) of the per-file rules on one context."""
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    if ctx.parse_error is not None:
        findings.append(_parse_error_finding(ctx))
        return findings, suppressed
    for rule in rules:
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding):
                suppressed.append(finding)
            else:
                findings.append(finding)
    return findings, suppressed


def _analyze_worker(payload: Tuple[str, str, Optional[str],
                                   Tuple[str, ...]]
                    ) -> Tuple[str, List[Dict[str, object]],
                               List[Dict[str, object]]]:
    """Worker-process entry: analyze one file with named rules."""
    path_str, source, root_str, rule_ids = payload
    root = Path(root_str) if root_str is not None else None
    ctx = FileContext(Path(path_str), source, project_root=root)
    rules = [get_rule(rule_id) for rule_id in rule_ids]
    findings, suppressed = _run_file_rules(ctx, rules)
    return (ctx.display_path,
            [f.to_dict() for f in findings],
            [f.to_dict() for f in suppressed])


def run_checks(paths: Sequence[Union[str, Path]],
               rules: Optional[Sequence[Rule]] = None,
               project_root: Optional[Union[str, Path]] = None,
               *,
               jobs: int = 1,
               cache: bool = False,
               cache_dir: Optional[Union[str, Path]] = None,
               baseline: Optional[Union[str, Path]] = None,
               reference_roots: Sequence[str] = REFERENCE_ROOTS,
               ) -> CheckResult:
    """Run the suite over ``paths`` and return a :class:`CheckResult`.

    Parameters
    ----------
    paths:
        Files and/or directories (recursed) to analyse.
    rules:
        Rule instances to apply; defaults to every registered rule.
    project_root:
        Base for report-relative paths; defaults to the current
        working directory.
    jobs:
        Worker processes for per-file rules; ``<= 1`` runs serially,
        ``0`` means one per CPU.
    cache:
        Enable the content-hash incremental cache (off by default for
        programmatic use; the CLI turns it on).
    cache_dir:
        Cache location; defaults to ``<project_root>/.greedwork_cache``.
    baseline:
        Path to an accepted-findings baseline; matching findings land
        in ``result.baselined`` instead of failing the run.
    reference_roots:
        Project-root subdirectories scanned as reference-only context
        for whole-program rules.
    """
    started = time.perf_counter()
    active = list(rules) if rules is not None else all_rules()
    file_rules = [r for r in active if not isinstance(r, ProjectRule)]
    project_rules = [r for r in active if isinstance(r, ProjectRule)]
    root = Path(project_root) if project_root is not None else Path.cwd()
    result = CheckResult()

    # -- 1. collect and read ------------------------------------------------
    sources: Dict[Path, str] = {}
    hashes: Dict[str, str] = {}          # display path -> content hash
    display: Dict[Path, str] = {}
    for path in collect_files(paths):
        result.files_checked += 1
        display_path = display_path_for(path, root)
        display[path] = display_path
        try:
            sources[path] = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.findings.append(_read_error_finding(path, root, exc))
            continue
        hashes[display_path] = file_digest(sources[path])

    # -- 2. cache setup -----------------------------------------------------
    check_cache: Optional[CheckCache] = None
    if cache:
        signature = engine_signature([r.rule_id for r in file_rules])
        directory = Path(cache_dir) if cache_dir is not None \
            else root / CACHE_DIR_NAME
        check_cache = CheckCache(directory, signature)

    contexts: Dict[Path, FileContext] = {}

    def context_for(path: Path) -> FileContext:
        if path not in contexts:
            contexts[path] = FileContext(path, sources[path],
                                         project_root=root)
        return contexts[path]

    # -- 3. per-file rules (cache, then serial or parallel) -----------------
    to_analyze: List[Path] = []
    for path in sources:
        display_path = display[path]
        if check_cache is not None:
            hit = check_cache.get_file(display_path,
                                       hashes[display_path])
            if hit is not None:
                result.findings.extend(hit[0])
                result.suppressed.extend(hit[1])
                result.files_from_cache += 1
                continue
        to_analyze.append(path)

    result.files_analyzed = len(to_analyze)
    if jobs == 0:
        jobs = multiprocessing.cpu_count()
    if jobs > 1 and len(to_analyze) > 1 and file_rules:
        rule_ids = tuple(r.rule_id for r in file_rules)
        payloads = [(str(path), sources[path], str(root), rule_ids)
                    for path in to_analyze]
        with multiprocessing.Pool(min(jobs, len(payloads))) as pool:
            outcomes = pool.map(_analyze_worker, payloads)
        for path, (display_path, found, kept) in zip(to_analyze,
                                                     outcomes):
            findings = [Finding.from_dict(f) for f in found]
            suppressed = [Finding.from_dict(f) for f in kept]
            result.findings.extend(findings)
            result.suppressed.extend(suppressed)
            if check_cache is not None:
                check_cache.put_file(display_path,
                                     hashes[display_path],
                                     findings, suppressed)
    else:
        for path in to_analyze:
            ctx = context_for(path)
            findings, suppressed = _run_file_rules(ctx, file_rules)
            result.findings.extend(findings)
            result.suppressed.extend(suppressed)
            if check_cache is not None:
                check_cache.put_file(ctx.display_path,
                                     hashes[ctx.display_path],
                                     findings, suppressed)

    # -- 4. project rules ---------------------------------------------------
    if project_rules:
        reference = reference_sources(root, reference_roots,
                                      (p.resolve() for p in sources))
        scope_hashes = dict(hashes)
        for path, source in reference.items():
            scope_hashes[display_path_for(path, root)] = \
                file_digest(source)
        digest = project_digest(scope_hashes,
                                [r.rule_id for r in project_rules])
        hit = check_cache.get_project(digest) \
            if check_cache is not None else None
        if hit is not None:
            result.findings.extend(hit[0])
            result.suppressed.extend(hit[1])
        else:
            analyzed_ctxs = [context_for(path) for path in sources]
            reference_ctxs = [
                FileContext(path, source, project_root=root)
                for path, source in reference.items()]
            project = ProjectContext(analyzed_ctxs, reference_ctxs,
                                     project_root=root)
            by_path = {ctx.display_path: ctx for ctx in analyzed_ctxs}
            project_findings: List[Finding] = []
            project_suppressed: List[Finding] = []
            for rule in project_rules:
                for finding in rule.check_project(project):
                    ctx = by_path.get(finding.path)
                    if ctx is None:
                        continue        # reference-only file
                    if ctx.is_suppressed(finding):
                        project_suppressed.append(finding)
                    else:
                        project_findings.append(finding)
            result.findings.extend(project_findings)
            result.suppressed.extend(project_suppressed)
            if check_cache is not None:
                check_cache.put_project(digest, project_findings,
                                        project_suppressed)

    # -- 5. baseline, ordering, bookkeeping ---------------------------------
    if baseline is not None:
        accepted = load_baseline(baseline)
        result.findings, result.baselined = apply_baseline(
            result.findings, accepted)
    if check_cache is not None:
        check_cache.save()
    result.findings.sort(key=lambda f: f.sort_key())
    result.suppressed.sort(key=lambda f: f.sort_key())
    result.baselined.sort(key=lambda f: f.sort_key())
    result.duration_s = time.perf_counter() - started
    return result
