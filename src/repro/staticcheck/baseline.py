"""Accepted-findings baseline: land new rules without a flag-day.

A baseline file records the findings a team has *accepted as known
debt* so a new rule family can gate new regressions immediately while
existing violations are burned down over time.  Entries are counted
fingerprints — ``rule::path::message`` without line numbers — so
unrelated edits that merely move a finding do not resurrect it, while
a *new* occurrence of the same pattern in the same file still fails
once the baselined count is exhausted.

Workflow::

    greedwork check src --update-baseline        # accept current debt
    greedwork check src --baseline .greedwork_baseline.json

Fixing a baselined finding never breaks the build (extra baseline
entries are simply unused); reintroducing one does.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.staticcheck.core import Finding

#: Conventional baseline filename at the project root.
DEFAULT_BASELINE_NAME = ".greedwork_baseline.json"

BASELINE_SCHEMA_VERSION = 1


def load_baseline(path: Union[str, Path]) -> Dict[str, int]:
    """Fingerprint -> accepted count.  Raises ``ValueError`` on junk."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"not a greedwork baseline file: {path}")
    entries = payload["entries"]
    if not isinstance(entries, dict):
        raise ValueError(f"malformed baseline entries in {path}")
    return {str(fp): int(count) for fp, count in entries.items()}


def write_baseline(path: Union[str, Path],
                   findings: Sequence[Finding]) -> None:
    """Accept ``findings`` as the new baseline."""
    counts: Dict[str, int] = {}
    for finding in findings:
        fp = finding.fingerprint()
        counts[fp] = counts.get(fp, 0) + 1
    payload = {"version": BASELINE_SCHEMA_VERSION,
               "entries": dict(sorted(counts.items()))}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


def prune_baseline(path: Union[str, Path],
                   findings: Sequence[Finding]) -> int:
    """Drop accepted counts no current finding backs; return #dropped.

    The fix engine calls this after rewriting files so that repaired
    findings *leave* the baseline instead of lingering as phantom
    allowances a future regression could silently consume.  Counts are
    clamped to the current occurrence count per fingerprint (never
    raised), and the file is rewritten only when something changed.
    """
    baseline_path = Path(path)
    accepted = load_baseline(baseline_path)
    current: Dict[str, int] = {}
    for finding in findings:
        fp = finding.fingerprint()
        current[fp] = current.get(fp, 0) + 1
    kept: Dict[str, int] = {}
    dropped = 0
    for fp, count in accepted.items():
        remaining = min(count, current.get(fp, 0))
        if remaining:
            kept[fp] = remaining
        dropped += count - remaining
    if dropped:
        payload = {"version": BASELINE_SCHEMA_VERSION,
                   "entries": dict(sorted(kept.items()))}
        baseline_path.write_text(json.dumps(payload, indent=2) + "\n",
                                 encoding="utf-8")
    return dropped


def apply_baseline(findings: Sequence[Finding],
                   accepted: Dict[str, int]
                   ) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (still failing, baselined).

    Consumes accepted counts per fingerprint in report order, so if a
    file gains an *additional* identical violation beyond the accepted
    count, the surplus one fails the build.
    """
    remaining = dict(accepted)
    failing: List[Finding] = []
    baselined: List[Finding] = []
    for finding in sorted(findings, key=lambda f: f.sort_key()):
        fp = finding.fingerprint()
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            baselined.append(finding)
        else:
            failing.append(finding)
    return failing, baselined
