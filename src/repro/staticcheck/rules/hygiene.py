"""GW005 — mutable-default and shadowed-builtin hygiene.

Two classic Python footguns that have each produced real heisenbugs in
numerical experiment code:

* **Mutable default arguments** — a ``def f(history=[])`` shares one
  list across every call (and across experiment *seeds*, silently
  correlating runs that must be independent).
* **Shadowed builtins** — binding ``sum``, ``max``, ``type``, ... as a
  parameter, variable, or function name changes the meaning of later
  code in the same scope and defeats readers' expectations.

Names consisting of a single underscore or conventional loop throwaways
are never flagged.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterable, Iterator, Tuple

from repro.staticcheck.core import FileContext, Finding, Rule, register_rule

#: Builtins whose shadowing is flagged.  Dunders, exceptions, and a few
#: names that are conventional identifiers in scientific code are left
#: out to keep the signal high.
_EXEMPT = frozenset({
    "_", "__doc__", "__name__", "__file__",
    # conventional/short science identifiers we tolerate:
    "bin", "chr", "ord",
})
SHADOWABLE_BUILTINS = frozenset(
    name for name in dir(builtins)
    if not name.startswith("_")
    and name not in _EXEMPT
    and name[0].islower()          # skip exception/class names
)

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray",
                            "defaultdict", "deque", "Counter",
                            "OrderedDict"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else None
        return name in _MUTABLE_CALLS
    return False


@register_rule
class HygieneRule(Rule):
    """Flag mutable defaults and shadowed builtins (GW005)."""

    rule_id = "GW005"
    name = "hygiene"
    description = ("no mutable default arguments; no parameters, "
                   "assignments, or definitions shadowing builtins")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                yield from self._check_defaults(ctx, node)
                yield from self._check_params(ctx, node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                if node.name in SHADOWABLE_BUILTINS:
                    yield self.finding(
                        ctx, node,
                        f"definition {node.name!r} shadows a builtin")
            elif isinstance(node, ast.Assign):
                for target_name, anchor in self._names_bound(node):
                    if target_name in SHADOWABLE_BUILTINS:
                        yield self.finding(
                            ctx, anchor,
                            f"assignment to {target_name!r} shadows a "
                            f"builtin")
            elif isinstance(node, ast.For):
                for target_name, anchor in \
                        self._target_names(node.target):
                    if target_name in SHADOWABLE_BUILTINS:
                        yield self.finding(
                            ctx, anchor,
                            f"loop variable {target_name!r} shadows a "
                            f"builtin")

    def _check_defaults(self, ctx: FileContext,
                        node) -> Iterable[Finding]:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        label = getattr(node, "name", "<lambda>")
        for default in defaults:
            if _is_mutable_default(default):
                yield self.finding(
                    ctx, default,
                    f"mutable default argument in {label!r}; use "
                    f"None and construct inside the function (or a "
                    f"dataclass field(default_factory=...))")

    def _check_params(self, ctx: FileContext, node) -> Iterable[Finding]:
        label = getattr(node, "name", "<lambda>")
        args = node.args
        every = (args.posonlyargs + args.args + args.kwonlyargs
                 + ([args.vararg] if args.vararg else [])
                 + ([args.kwarg] if args.kwarg else []))
        for arg in every:
            if arg.arg in SHADOWABLE_BUILTINS:
                yield self.finding(
                    ctx, arg,
                    f"parameter {arg.arg!r} of {label!r} shadows a "
                    f"builtin")

    @staticmethod
    def _names_bound(node: ast.Assign
                     ) -> Iterator[Tuple[str, ast.AST]]:
        for target in node.targets:
            yield from HygieneRule._target_names(target)

    @staticmethod
    def _target_names(target: ast.expr
                      ) -> Iterator[Tuple[str, ast.AST]]:
        if isinstance(target, ast.Name):
            yield target.id, target
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from HygieneRule._target_names(element)
        elif isinstance(target, ast.Starred):
            yield from HygieneRule._target_names(target.value)
