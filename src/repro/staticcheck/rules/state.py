"""GW4xx — state-contract rules for the resumable sim stack.

The resumable-horizon machinery (PR 5) rests on three conventions the
compiler cannot check: policy/engine snapshots must cover every piece
of mutable state, the pickled :class:`EngineState` carrier must have a
field for each stateful engine attribute, and the sim-cache content
key must see every ``SimulationConfig`` field.  A single forgotten
attribute silently corrupts resumed runs and CRN pairing — the exact
bug class the paper's bit-identical goldens exist to prevent.  These
rules machine-check all three contracts on the attribute-level state
model (:class:`~repro.staticcheck.project.ClassStateModel`).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.staticcheck.core import Finding, ProjectRule, register_rule
from repro.staticcheck.project import (
    ClassStateModel,
    ModuleInfo,
    ProjectContext,
    Symbol,
    _dotted,
)

#: The module whose policy hierarchy carries the snapshot contract.
_POLICY_MODULE = "repro.sim.queues"
_POLICY_BASE = "QueuePolicy"

#: The module owning the sim-result content key.
_CACHE_MODULE = "repro.sim.cache"
_CONFIG_CLASS = "SimulationConfig"


def _own_method(symbol: Symbol, name: str) -> Optional[ast.AST]:
    """The method ``name`` defined in this class body (not inherited)."""
    if not isinstance(symbol.node, ast.ClassDef):
        return None
    for node in symbol.node.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == name:
            return node
    return None


def _attr_stores(node: ast.AST) -> Set[str]:
    """Attribute names stored on *any* receiver inside ``node``."""
    out: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) \
                and isinstance(sub.ctx, ast.Store):
            out.add(sub.attr)
    return out


def _self_attr_reads(node: ast.AST, self_name: str) -> Set[str]:
    out: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) \
                and isinstance(sub.value, ast.Name) \
                and sub.value.id == self_name \
                and isinstance(sub.ctx, ast.Load):
            out.add(sub.attr)
    return out


def _receiver_name(method: ast.AST) -> Optional[str]:
    args = method.args
    positional = list(args.posonlyargs) + list(args.args)
    return positional[0].arg if positional else None


def _dataclass_fields(cls_node: ast.ClassDef) -> Set[str]:
    out: Set[str] = set()
    for node in cls_node.body:
        if isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            out.add(node.target.id)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
    return out


def _is_dataclass_symbol(symbol: Symbol) -> bool:
    return any("dataclass" in dec for dec in symbol.decorators)


@register_rule
class SnapshotCoverageRule(ProjectRule):
    """Snapshot/resume must cover every stateful attribute (GW401).

    Rationale:
        A resumed run is only bit-identical to an uninterrupted one if
        ``snapshot()`` captures, and ``resume()`` restores, *every*
        attribute the class mutates.  A forgotten attribute does not
        crash — it silently resets to its construction-time value,
        corrupting sequential stopping and CRN pairing.

    Example::

        class BrokenQueue(QueuePolicy):
            def __init__(self):
                self._queue = deque()
                self._served = 0        # mutated in complete()

            def state_snapshot(self):
                clone = BrokenQueue()
                clone._queue = copy.deepcopy(self._queue)
                return clone            # _served is never copied

    Fix:
        Prefer the inherited deepcopy ``state_snapshot`` (it covers
        everything by construction).  If an override is unavoidable,
        reference every attribute assigned in ``__init__`` or mutated
        by any method.  For engine-state classes, ``snapshot()`` must
        read every mutated attribute and ``resume()`` must assign
        every ``__init__``-assigned one.  Suppress only with a reason
        explaining why the attribute is genuinely derivable:
        ``# greedwork: ignore[GW401] -- <why>``.
    """

    rule_id = "GW401"
    name = "snapshot-coverage"
    description = ("QueuePolicy.state_snapshot overrides and "
                   "engine snapshot()/resume() pairs must cover every "
                   "stateful attribute of the class")

    def check_project(self, project: ProjectContext
                      ) -> Iterable[Finding]:
        yield from self._check_policies(project)
        yield from self._check_engines(project)

    def _check_policies(self, project: ProjectContext
                        ) -> Iterable[Finding]:
        for symbol in project.subclasses_of(_POLICY_MODULE,
                                            _POLICY_BASE):
            info = project.modules.get(symbol.module)
            if info is None:
                continue
            method = _own_method(symbol, "state_snapshot")
            if method is None:
                continue                # inherited deepcopy: covered
            model = project.class_state(symbol.module, symbol.name)
            if model is None \
                    or "state_snapshot" in model.whole_self_methods:
                continue
            missing = sorted(model.stateful
                             - model.reads_in("state_snapshot"))
            if missing:
                yield self.finding(
                    info.ctx, method,
                    f"{symbol.name}.state_snapshot does not cover "
                    f"stateful attribute(s) {', '.join(missing)}; a "
                    f"resumed run would silently reset them")

    def _check_engines(self, project: ProjectContext
                       ) -> Iterable[Finding]:
        for info in project.infos:
            if info.module is None \
                    or not info.module.startswith("repro"):
                continue
            for symbol in info.symbols.values():
                if symbol.kind != "class":
                    continue
                snapshot = _own_method(symbol, "snapshot")
                resume = _own_method(symbol, "resume")
                if snapshot is None or resume is None:
                    continue
                model = project.class_state(info.module, symbol.name)
                if model is None:
                    continue
                yield from self._check_engine_snapshot(
                    info, symbol, model, snapshot)
                yield from self._check_engine_resume(
                    info, symbol, model, resume)

    def _check_engine_snapshot(self, info: ModuleInfo, symbol: Symbol,
                               model: ClassStateModel,
                               snapshot: ast.AST) -> Iterable[Finding]:
        if "snapshot" in model.whole_self_methods:
            return
        missing = sorted(model.mutated_after_init
                         - model.reads_in("snapshot"))
        if missing:
            yield self.finding(
                info.ctx, snapshot,
                f"{symbol.name}.snapshot does not read mutated "
                f"attribute(s) {', '.join(missing)}; they cannot be "
                f"restored on resume")

    def _check_engine_resume(self, info: ModuleInfo, symbol: Symbol,
                             model: ClassStateModel,
                             resume: ast.AST) -> Iterable[Finding]:
        assigned = _attr_stores(resume)
        missing = sorted(model.mutated_after_init - assigned)
        if missing:
            yield self.finding(
                info.ctx, resume,
                f"{symbol.name}.resume does not restore mutated "
                f"attribute(s) {', '.join(missing)}; a resumed engine "
                f"would run with construction-time values")


@register_rule
class EngineStatePicklingRule(ProjectRule):
    """Stateful attributes must enter the pickled carrier (GW402).

    Rationale:
        ``snapshot()`` typically returns a dataclass (the
        ``EngineState`` pattern) that is pickled into the sim cache.
        Reading a mutated attribute inside ``snapshot`` is not enough:
        its value must flow into the carrier's constructor, otherwise
        the pickle simply does not contain it and a cross-process
        resume reconstructs stale state.

    Example::

        def snapshot(self):
            log.debug(self.n_departures)    # read, but not captured
            return EngineState(now=self.now)  # n_departures missing

    Fix:
        Pass every mutated attribute as a constructor argument of the
        carrier dataclass (and give the dataclass a field for it).
        Suppress only when the attribute is provably recomputed by
        ``resume()``: ``# greedwork: ignore[GW402] -- <why>``.
    """

    rule_id = "GW402"
    name = "engine-state-pickling"
    description = ("every attribute mutated after __init__ must flow "
                   "into the snapshot carrier dataclass constructor, "
                   "and only real carrier fields may be passed")

    def check_project(self, project: ProjectContext
                      ) -> Iterable[Finding]:
        for info in project.infos:
            if info.module is None \
                    or not info.module.startswith("repro"):
                continue
            for symbol in info.symbols.values():
                if symbol.kind != "class":
                    continue
                for method_name in ("snapshot", "state_snapshot"):
                    method = _own_method(symbol, method_name)
                    if method is not None:
                        yield from self._check_snapshot(
                            project, info, symbol, method)

    def _check_snapshot(self, project: ProjectContext,
                        info: ModuleInfo, symbol: Symbol,
                        method: ast.AST) -> Iterable[Finding]:
        self_name = _receiver_name(method)
        if self_name is None:
            return
        model = project.class_state(info.module or "", symbol.name)
        if model is None:
            return
        for node in ast.walk(method):
            if not isinstance(node, ast.Return) \
                    or not isinstance(node.value, ast.Call):
                continue
            call = node.value
            carrier = self._resolve_carrier(project, info, call)
            if carrier is None:
                continue
            carrier_symbol, carrier_fields = carrier
            captured = _self_attr_reads(call, self_name)
            missing = sorted(model.mutated_after_init - captured)
            if missing:
                yield self.finding(
                    info.ctx, call,
                    f"{symbol.name}.snapshot does not capture mutated "
                    f"attribute(s) {', '.join(missing)} in "
                    f"{carrier_symbol.name}; the pickled state would "
                    f"omit them")
            for keyword in call.keywords:
                if keyword.arg is not None \
                        and keyword.arg not in carrier_fields:
                    yield self.finding(
                        info.ctx, keyword.value,
                        f"{symbol.name}.snapshot passes "
                        f"{keyword.arg!r} but {carrier_symbol.name} "
                        f"has no such field")

    @staticmethod
    def _resolve_carrier(project: ProjectContext, info: ModuleInfo,
                         call: ast.Call):
        dotted = _dotted(call.func)
        if not dotted:
            return None
        target = info.resolve_dotted(dotted)
        if target is None and dotted in info.symbols:
            target = f"{info.module}:{dotted}"
        if target is None or ":" not in target:
            return None
        mod, _, name = target.partition(":")
        carrier_info = project.modules.get(mod)
        carrier_symbol = carrier_info.symbols.get(name) \
            if carrier_info is not None else None
        if carrier_symbol is None \
                or not isinstance(carrier_symbol.node, ast.ClassDef) \
                or not _is_dataclass_symbol(carrier_symbol):
            return None
        return carrier_symbol, _dataclass_fields(carrier_symbol.node)


@register_rule
class CacheKeyCompletenessRule(ProjectRule):
    """Sim-cache keys must see every config field (GW403).

    Rationale:
        The sim cache returns a stored result whenever the content key
        matches; a ``SimulationConfig`` field the key function does
        not hash makes two *different* simulations collide — the cache
        then serves results for parameters that were never run.

    Example::

        def config_key(config, engine_version):
            payload = {"rates": config.rates,
                       "policy": config.policy}
            # every other field (seed, horizon, ...) collides
            return sha256(payload)

    Fix:
        Iterate ``dataclasses.fields(config)`` so new fields enter the
        key automatically; exclude a field only with an explicit
        ``spec.name == "..."`` comparison (the horizon exclusion in
        ``state_key`` is the sanctioned example).  Suppress only with
        a proof the field cannot affect results:
        ``# greedwork: ignore[GW403] -- <why>``.
    """

    rule_id = "GW403"
    name = "cache-key-completeness"
    description = ("key functions in repro.sim.cache must cover every "
                   "SimulationConfig field, via fields() iteration or "
                   "exhaustive explicit reads; skips must name real "
                   "fields")

    def check_project(self, project: ProjectContext
                      ) -> Iterable[Finding]:
        cache_info = project.modules.get(_CACHE_MODULE)
        if cache_info is None or cache_info.ctx.tree is None:
            return
        config_fields = self._config_fields(project)
        if config_fields is None:
            return
        for node in cache_info.ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if "key" not in node.name:
                continue
            params = {a.arg for a in (list(node.args.posonlyargs)
                                      + list(node.args.args))}
            if "config" not in params:
                continue
            yield from self._check_key_function(cache_info, node,
                                                config_fields)

    @staticmethod
    def _config_fields(project: ProjectContext) -> Optional[Set[str]]:
        for info in project.modules.values():
            symbol = info.symbols.get(_CONFIG_CLASS)
            if symbol is not None \
                    and isinstance(symbol.node, ast.ClassDef) \
                    and _is_dataclass_symbol(symbol):
                return _dataclass_fields(symbol.node)
        return None

    def _check_key_function(self, info: ModuleInfo, func: ast.AST,
                            config_fields: Set[str]
                            ) -> Iterable[Finding]:
        loop = self._fields_loop(func)
        if loop is not None:
            for name, node in self._skipped_names(loop):
                if name not in config_fields:
                    yield self.finding(
                        info.ctx, node,
                        f"{func.name} skips {name!r}, which is not a "
                        f"{_CONFIG_CLASS} field (typo?)")
            return
        covered: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "config":
                covered.add(node.attr)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "getattr" \
                    and len(node.args) >= 2 \
                    and isinstance(node.args[0], ast.Name) \
                    and node.args[0].id == "config" \
                    and isinstance(node.args[1], ast.Constant) \
                    and isinstance(node.args[1].value, str):
                covered.add(node.args[1].value)
        missing = sorted(config_fields - covered)
        if missing:
            yield self.finding(
                info.ctx, func,
                f"{func.name} never reads config field(s) "
                f"{', '.join(missing)}; different simulations would "
                f"share one cache entry — iterate "
                f"dataclasses.fields(config) instead")

    @staticmethod
    def _fields_loop(func: ast.AST) -> Optional[ast.For]:
        for node in ast.walk(func):
            if isinstance(node, ast.For) \
                    and isinstance(node.iter, ast.Call):
                dotted = _dotted(node.iter.func)
                if dotted.split(".")[-1] == "fields" and any(
                        isinstance(arg, ast.Name)
                        and arg.id == "config"
                        for arg in node.iter.args):
                    return node
        return None

    @staticmethod
    def _skipped_names(loop: ast.For):
        for node in ast.walk(loop):
            if not isinstance(node, ast.Compare) or len(node.ops) != 1:
                continue
            left = node.left
            if not (isinstance(left, ast.Attribute)
                    and left.attr == "name"):
                continue
            comparator = node.comparators[0]
            if isinstance(node.ops[0], ast.Eq) \
                    and isinstance(comparator, ast.Constant) \
                    and isinstance(comparator.value, str):
                yield comparator.value, node
            elif isinstance(node.ops[0], ast.In) \
                    and isinstance(comparator, (ast.Tuple, ast.List,
                                                ast.Set)):
                for element in comparator.elts:
                    if isinstance(element, ast.Constant) \
                            and isinstance(element.value, str):
                        yield element.value, node
