"""GW5xx — determinism rules for the event-engine and solver layers.

The reproduction's verdicts (Shenker's envy/Nash tables, the DES
goldens) are only evidence if re-running the pipeline is bit-identical.
Two bug classes silently break that: RNG draws that slip past the
``VariateStream`` draw-order contract (breaking CRN pairing across
policies), and iteration-order or wall-clock nondeterminism feeding
numeric results.  Both are invisible to tests that only run once.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.staticcheck.core import FileContext, Finding, Rule, \
    register_rule

#: Inter-event-time draws: these define the simulation's event order
#: and must flow through ``VariateStream`` (repro.sim.arrivals).
_TRAFFIC_DRAWS = frozenset({"exponential", "poisson"})

#: Any numpy ``Generator`` draw method: consuming one of these from a
#: shared generator inside a per-user loop couples users' streams.
_GENERATOR_DRAWS = _TRAFFIC_DRAWS | frozenset({
    "random", "uniform", "normal", "standard_normal",
    "standard_exponential", "integers", "choice", "shuffle",
    "permutation", "dirichlet",
})

#: Modules where the draw-order contract is in force.  The arrivals
#: module is the contract's home (VariateStream itself draws there).
_ENGINE_PREFIXES = ("repro.sim.", "repro.network.")
_CONTRACT_HOME = "repro.sim.arrivals"

#: Layers whose outputs feed goldens/tables and must be order- and
#: clock-independent.  Presentation layers (experiments, cli) may
#: read the clock for progress reporting.
_NUMERIC_PREFIXES = ("repro.sim.", "repro.game.", "repro.numerics.",
                     "repro.network.", "repro.queueing.")

_WALL_CLOCK = frozenset({
    "time.time", "time.perf_counter", "time.monotonic",
    "time.process_time", "time.time_ns", "time.perf_counter_ns",
    "datetime.now", "datetime.datetime.now", "datetime.utcnow",
    "datetime.datetime.utcnow",
})

_UNSORTED_LISTINGS = frozenset({
    "listdir", "scandir", "iterdir", "glob", "rglob",
})

_AGGREGATORS = frozenset({"sum", "min", "max", "sorted", "list",
                          "tuple"})
#: Aggregators whose output is order-sensitive even over exact values
#: (float addition is not associative); ``min``/``max``/``sorted``
#: are order-insensitive and excluded.
_ORDER_SENSITIVE = frozenset({"sum", "list", "tuple"})


def _in_scope(module: Optional[str], prefixes: Tuple[str, ...]) -> bool:
    if module is None:
        return False
    return any(module.startswith(p) or module == p.rstrip(".")
               for p in prefixes)


def _call_dotted(node: ast.Call) -> str:
    parts: List[str] = []
    cursor = node.func
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
        return ".".join(reversed(parts))
    return ""


def _is_set_expression(node: ast.AST) -> bool:
    """Whether iterating ``node`` walks a hash-ordered ``set``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = _call_dotted(node)
        if dotted in ("set", "frozenset"):
            return True
        last = dotted.split(".")[-1]
        if last in ("union", "intersection", "difference",
                    "symmetric_difference"):
            return True
    return False


@register_rule
class VariateContractRule(Rule):
    """Engine-layer RNG draws must honor VariateStream (GW501).

    Rationale:
        CRN pairing holds only because *every* inter-event time in the
        engine layer flows through ``VariateStream`` in a draw order
        fixed by the arrival sequence.  A direct
        ``Generator.exponential`` call, or any draw from a shared
        generator inside a per-user loop, consumes variates in an
        order that depends on incidental control flow — paired runs
        silently decorrelate and variance-reduction claims go wrong.

    Example::

        # inside repro/sim/myengine.py
        def service_times(rng, users):
            return [rng.exponential(1.0 / mu) for mu in users]

    Fix:
        Draw through a per-purpose ``VariateStream`` (one stream per
        user, spawned from the config seed) so draw order is pinned.
        Decision draws (``random``/``integers`` outside loops, e.g.
        tie-breaking on a dedicated ``policy_rng``) are allowed.  A
        legacy engine with its own pinned draw order may suppress with
        a reason: ``# greedwork: ignore[GW501] -- <why>``.
    """

    rule_id = "GW501"
    name = "variate-stream-contract"
    description = ("inter-event-time draws in sim/network engine "
                   "modules must flow through VariateStream; shared-"
                   "generator draws inside per-user loops break CRN "
                   "pairing")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None \
                or not _in_scope(ctx.module, _ENGINE_PREFIXES) \
                or ctx.module == _CONTRACT_HOME:
            return
        loop_draws = self._loop_draws(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if method in _TRAFFIC_DRAWS:
                yield self.finding(
                    ctx, node,
                    f"direct Generator.{method} draw bypasses the "
                    f"VariateStream draw-order contract; CRN pairing "
                    f"cannot see it")
            elif method in _GENERATOR_DRAWS and id(node) in loop_draws:
                yield self.finding(
                    ctx, node,
                    f"Generator.{method} draw from a shared generator "
                    f"inside a loop: draw order depends on iteration "
                    f"count, breaking CRN pairing")

    @staticmethod
    def _loop_draws(tree: ast.Module) -> Set[int]:
        """ids of Call nodes that sit inside a loop body."""
        out: Set[int] = set()
        loops: List[ast.AST] = [
            node for node in ast.walk(tree)
            if isinstance(node, (ast.For, ast.While, ast.ListComp,
                                 ast.SetComp, ast.DictComp,
                                 ast.GeneratorExp))]
        for loop in loops:
            bodies: List[ast.AST]
            if isinstance(loop, (ast.For, ast.While)):
                bodies = list(loop.body)
            else:
                bodies = [loop.elt] if hasattr(loop, "elt") else []
                if isinstance(loop, ast.DictComp):
                    bodies = [loop.key, loop.value]
            for body in bodies:
                for sub in ast.walk(body):
                    if isinstance(sub, ast.Call):
                        out.add(id(sub))
        return out


#: Heap operations that advance a discrete-event loop one event at a
#: time (either the bare name or the last attribute segment).
_HEAP_OPS = frozenset({"heappop", "heappush"})

#: Per-event measurement / policy calls: one of these paired with a
#: heap operation in the same loop body is the signature of a scalar
#: DES event loop.
_EVENT_CALLS = frozenset({"advance", "on_arrival", "on_departure",
                          "complete"})


@register_rule
class PerEventLoopRule(Rule):
    """Per-event Python loops in engine hot paths (GW503).

    Rationale:
        The chunked backend (:mod:`repro.sim.chunked`) exists because a
        Python loop that pops one heap event at a time tops out around
        a hundred thousand events per second per policy call overheads,
        an order of magnitude under the compiled chunk kernels.  A new
        per-event loop in the ``sim``/``network`` layers silently
        reintroduces that ceiling — and, worse, defines *another* event
        order that the bit-identity contract then has to track.  New
        engine code should either reuse
        :class:`~repro.sim.chunked.ChunkedSimulationEngine` or consume
        variates in blocks (``buffered``/``peek_block``/``consume``).

    Example::

        while True:
            event_time, user = heapq.heappop(heap)
            tracker.advance(event_time)
            ...

        for k in range(n):          # one stream draw per iteration
            out[k] = stream.draw()

    Fix:
        Route the workload through the chunked engine, or batch the
        draws (``VariateStream.peek_block``/``consume``).  The pinned
        reference loops — the scalar backend that *defines* the
        bit-identity contract, and legacy golden-tested engines — may
        suppress with a reason: ``# greedwork: ignore[GW503] -- <why>``.
    """

    rule_id = "GW503"
    name = "chunked-hot-path"
    description = ("per-event Python loops (heap pop + per-event "
                   "measurement, or one stream draw per iteration) in "
                   "sim/network modules forgo the chunked kernels")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None \
                or not _in_scope(ctx.module, _ENGINE_PREFIXES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.While)):
                continue
            heap_ops = False
            event_calls = False
            draw_calls = False
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                dotted = _call_dotted(sub)
                last = dotted.split(".")[-1] if dotted else ""
                if last in _HEAP_OPS:
                    heap_ops = True
                elif last in _EVENT_CALLS:
                    event_calls = True
                elif last == "draw":
                    draw_calls = True
            if heap_ops and event_calls:
                yield self.finding(
                    ctx, node,
                    "per-event loop (heap operation plus per-event "
                    "measurement call) bypasses the chunked kernels; "
                    "use ChunkedSimulationEngine or batch the events")
            elif draw_calls:
                yield self.finding(
                    ctx, node,
                    "one VariateStream.draw per loop iteration; "
                    "consume variates in blocks "
                    "(peek_block/consume) instead")


@register_rule
class OrderedAggregationRule(Rule):
    """No hash-order or wall-clock inputs to numerics (GW502).

    Rationale:
        ``set`` iteration order depends on ``PYTHONHASHSEED`` for
        strings, float addition is not associative, and the wall clock
        differs every run — any of these feeding a numeric result
        makes two "identical" runs disagree in the last bits, which is
        exactly what the bit-identical goldens exist to catch.
        Directory listings (``os.listdir``, ``Path.glob``) come back
        in filesystem order, which differs across machines.

    Example::

        total = sum(weights[u] for u in {"a", "b", "c"})
        for path in root.glob("*.json"):   # filesystem order
            merge(path)

    Fix:
        Iterate ``sorted(the_set)``; wrap listings in ``sorted(...)``;
        keep wall-clock reads out of ``sim``/``game``/``numerics``/
        ``network``/``queueing`` (report timing in the presentation
        layer, or suppress with a reason when the timing value never
        reaches a numeric result):
        ``# greedwork: ignore[GW502] -- <why>``.
    """

    rule_id = "GW502"
    name = "order-determinism"
    description = ("set-iteration aggregation into numbers, unsorted "
                   "directory listings, and wall-clock reads in the "
                   "numeric layers are run-to-run nondeterministic")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None \
                or not _in_scope(ctx.module, _NUMERIC_PREFIXES):
            return
        parents = self._parent_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_aggregation(ctx, node)
                yield from self._check_listing(ctx, node, parents)
                yield from self._check_clock(ctx, node)
            elif isinstance(node, ast.For) \
                    and _is_set_expression(node.iter) \
                    and self._accumulates(node):
                yield self.finding(
                    ctx, node.iter,
                    "loop accumulates over set-iteration order; "
                    "float accumulation order follows the hash seed")

    def _check_aggregation(self, ctx: FileContext,
                           node: ast.Call) -> Iterable[Finding]:
        dotted = _call_dotted(node)
        if dotted not in _ORDER_SENSITIVE:
            return
        for arg in node.args:
            iterable: Optional[ast.AST] = None
            if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                iterable = arg.generators[0].iter
            elif _is_set_expression(arg):
                iterable = arg
            if iterable is not None and _is_set_expression(iterable):
                yield self.finding(
                    ctx, node,
                    f"{dotted}() over set-iteration order is "
                    f"nondeterministic across runs; iterate "
                    f"sorted(...) instead")

    def _check_listing(self, ctx: FileContext, node: ast.Call,
                       parents: Dict[int, ast.AST]
                       ) -> Iterable[Finding]:
        dotted = _call_dotted(node)
        if not dotted or dotted.split(".")[-1] not in _UNSORTED_LISTINGS:
            return
        parent = parents.get(id(node))
        if isinstance(parent, ast.Call) \
                and isinstance(parent.func, ast.Name) \
                and parent.func.id == "sorted":
            return
        yield self.finding(
            ctx, node,
            f"{dotted.split('.')[-1]}() returns entries in "
            f"filesystem order; wrap in sorted(...) before use")

    def _check_clock(self, ctx: FileContext,
                     node: ast.Call) -> Iterable[Finding]:
        dotted = _call_dotted(node)
        if dotted in _WALL_CLOCK:
            yield self.finding(
                ctx, node,
                f"wall-clock read ({dotted}) in a numeric layer; "
                f"timing belongs in the presentation layer")

    @staticmethod
    def _accumulates(loop: ast.For) -> bool:
        for sub in ast.walk(loop):
            if isinstance(sub, ast.AugAssign) \
                    and isinstance(sub.op, (ast.Add, ast.Sub,
                                            ast.Mult)):
                return True
        return False

    @staticmethod
    def _parent_map(tree: ast.Module) -> Dict[int, ast.AST]:
        parents: Dict[int, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
        return parents
