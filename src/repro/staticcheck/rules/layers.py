"""GW001 — layer-DAG enforcement.

The architecture is a DAG of layers::

    0  exceptions
    1  numerics, parallel, queueing
    2  costsharing, disciplines, users
    3  game, sim, network
    4  analysis, experiments, sweep
    5  staticcheck
    6  cli, __main__, and the root ``repro`` facade

Imports must point strictly downward.  Within a layer, only the
explicitly declared edges in :data:`INTRA_LAYER_EDGES` are legal
(sub-orderings that exist inside a band, e.g. ``users`` may build on
``disciplines`` but not vice versa).  Everything else — an upward
import, an undeclared cross-import inside a band — is a back-edge that
would eventually make the package graph cyclic and is rejected.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.staticcheck.core import FileContext, Finding, Rule, register_rule
from repro.staticcheck.project import resolve_import_base

#: Name of the root facade pseudo-package (``repro/__init__.py``).
ROOT_FACADE = "<root>"

LAYERS: Dict[str, int] = {
    "exceptions": 0,
    "numerics": 1,
    "parallel": 1,
    "queueing": 1,
    "costsharing": 2,
    "disciplines": 2,
    "users": 2,
    "game": 3,
    "sim": 3,
    "network": 3,
    "analysis": 4,
    "experiments": 4,
    "sweep": 4,
    "staticcheck": 5,
    "cli": 6,
    "__main__": 6,
    ROOT_FACADE: 6,
}

#: Declared same-layer dependencies (importer, imported).
INTRA_LAYER_EDGES: FrozenSet[Tuple[str, str]] = frozenset({
    ("queueing", "numerics"),
    ("costsharing", "disciplines"),
    ("users", "disciplines"),
    ("network", "sim"),
    ("experiments", "analysis"),
    ("sweep", "experiments"),   # catalog cells reuse Table/AsciiChart
    ("sweep", "analysis"),
    ("__main__", "cli"),        # entry point delegates to the CLI
})


def package_of(module: str) -> Optional[str]:
    """The layer-relevant package of a dotted ``repro`` module name.

    ``repro.queueing.mm1`` → ``queueing``; top-level modules map to
    themselves (``repro.cli`` → ``cli``); the bare package ``repro``
    maps to :data:`ROOT_FACADE`.
    """
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return ROOT_FACADE
    return parts[1]


@register_rule
class LayerDAGRule(Rule):
    """Flag imports that point upward or across layers (GW001)."""

    rule_id = "GW001"
    name = "layer-dag"
    description = ("imports must respect the layer DAG "
                   "(numerics/queueing -> costsharing/disciplines/users "
                   "-> game/sim/network -> analysis/experiments -> cli)")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module is None or not ctx.module.startswith("repro"):
            return
        src_pkg = package_of(ctx.module)
        if src_pkg is None:
            return
        for node, target in self._repro_imports(ctx):
            dst_pkg = package_of(target)
            if dst_pkg is None or dst_pkg == src_pkg:
                continue
            if self._edge_ok(src_pkg, dst_pkg):
                continue
            yield self.finding(
                ctx, node,
                f"layer back-edge: '{src_pkg}' (layer "
                f"{LAYERS.get(src_pkg, '?')}) must not import "
                f"'{dst_pkg}' (layer {LAYERS.get(dst_pkg, '?')}) "
                f"via {target}")

    @staticmethod
    def _edge_ok(src_pkg: str, dst_pkg: str) -> bool:
        src_layer = LAYERS.get(src_pkg)
        dst_layer = LAYERS.get(dst_pkg)
        if src_layer is None or dst_layer is None:
            # Unknown package: refuse rather than silently allow, so a
            # new subpackage must be placed in the DAG deliberately.
            return False
        if dst_layer < src_layer:
            return True
        if dst_layer == src_layer:
            return (src_pkg, dst_pkg) in INTRA_LAYER_EDGES
        return False

    def _repro_imports(
            self, ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "repro":
                        yield node, alias.name
            elif isinstance(node, ast.ImportFrom):
                target = resolve_import_base(ctx, node)
                if target is not None and target.split(".")[0] == "repro":
                    yield node, target
