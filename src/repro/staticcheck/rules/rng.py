"""GW003 — RNG discipline.

Reproducibility of the experiment tables requires a single randomness
policy (see :mod:`repro.numerics.rng`).  This rule rejects, anywhere in
the library:

* the stdlib ``random`` module (unseedable-by-convention global state);
* legacy NumPy global-state calls (``np.random.seed``,
  ``np.random.uniform``, ...);
* raw ``np.random.default_rng(...)`` construction — generators must
  either flow in as ``numpy.random.Generator`` parameters or be built
  by :func:`repro.numerics.default_rng`, the one documented fallback.

``np.random.Generator`` used as a *type annotation* is fine; only calls
are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from repro.staticcheck.core import FileContext, Finding, Rule, register_rule

#: Legacy numpy.random module-level functions that mutate global state.
LEGACY_NP_RANDOM = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "ranf", "sample", "choice", "bytes", "shuffle", "permutation",
    "uniform", "normal", "standard_normal", "exponential", "poisson",
    "binomial", "beta", "gamma", "dirichlet", "multinomial",
    "multivariate_normal", "lognormal", "laplace", "logistic",
    "pareto", "weibull", "triangular", "vonmises", "rayleigh",
    "geometric", "hypergeometric", "negative_binomial", "chisquare",
    "standard_cauchy", "standard_exponential", "standard_gamma",
    "standard_t", "zipf", "get_state", "set_state", "RandomState",
})


def _dotted(node: ast.expr) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything fancier."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register_rule
class RNGDisciplineRule(Rule):
    """Flag unseeded/global/raw randomness constructions (GW003)."""

    rule_id = "GW003"
    name = "rng-discipline"
    description = ("no stdlib random, no legacy np.random global state, "
                   "no raw np.random.default_rng: randomness enters as "
                   "Generator parameters or via repro.numerics.default_rng")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        numpy_aliases = self._numpy_aliases(ctx)
        np_random_aliases, bare_default_rng, bare_legacy = \
            self._numpy_random_imports(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield self.finding(
                            ctx, node,
                            "stdlib 'random' is banned; take a "
                            "numpy.random.Generator parameter instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "random" \
                        and node.level == 0:
                    yield self.finding(
                        ctx, node,
                        "stdlib 'random' is banned; take a "
                        "numpy.random.Generator parameter instead")
            elif isinstance(node, ast.Call):
                yield from self._check_call(
                    ctx, node, numpy_aliases, np_random_aliases,
                    bare_default_rng, bare_legacy)

    def _check_call(self, ctx: FileContext, node: ast.Call,
                    numpy_aliases: Set[str],
                    np_random_aliases: Set[str],
                    bare_default_rng: Set[str],
                    bare_legacy: Set[str]) -> Iterable[Finding]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if dotted in bare_default_rng or (
                len(parts) >= 2 and parts[-1] == "default_rng"
                and (".".join(parts[:-1]) in np_random_aliases
                     or (len(parts) >= 3
                         and parts[-2] == "random"
                         and ".".join(parts[:-2]) in numpy_aliases))):
            yield self.finding(
                ctx, node,
                "raw np.random.default_rng: use "
                "repro.numerics.default_rng so the seeding policy "
                "stays in one place")
            return
        if dotted in bare_legacy:
            yield self.finding(
                ctx, node,
                f"legacy global-state call numpy.random.{dotted}; "
                f"use an explicit numpy.random.Generator")
        elif len(parts) >= 3 and parts[-2] == "random" \
                and ".".join(parts[:-2]) in numpy_aliases \
                and parts[-1] in LEGACY_NP_RANDOM:
            yield self.finding(
                ctx, node,
                f"legacy global-state call np.random.{parts[-1]}; "
                f"use an explicit numpy.random.Generator")
        elif len(parts) >= 2 \
                and ".".join(parts[:-1]) in np_random_aliases \
                and parts[-1] in LEGACY_NP_RANDOM:
            yield self.finding(
                ctx, node,
                f"legacy global-state call numpy.random.{parts[-1]}; "
                f"use an explicit numpy.random.Generator")

    @staticmethod
    def _numpy_aliases(ctx: FileContext) -> Set[str]:
        aliases = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        aliases.add(alias.asname or "numpy")
        return aliases

    @staticmethod
    def _numpy_random_imports(ctx: FileContext):
        """Aliases of numpy.random, bare default_rng, bare legacy fns."""
        module_aliases: Set[str] = set()
        bare_default: Set[str] = set()
        bare_legacy: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy.random":
                        module_aliases.add(alias.asname or "numpy.random")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            module_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name == "default_rng":
                            bare_default.add(alias.asname or alias.name)
                        elif alias.name in LEGACY_NP_RANDOM:
                            bare_legacy.add(alias.asname or alias.name)
        return module_aliases, bare_default, bare_legacy
