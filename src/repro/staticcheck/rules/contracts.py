"""GW002 — discipline-contract conformance.

Every entry of ``_FACTORIES`` in ``repro.disciplines.registry`` must be
a zero-argument factory producing an
:class:`~repro.disciplines.base.AllocationFunction`.  This rule checks
the contract *statically* — no imports are executed — by resolving each
registered name through the registry module's import statements to its
defining module inside ``disciplines/`` and inspecting the class there:

* the class must (transitively) subclass ``AllocationFunction``;
* it must define a concrete ``congestion(self, rates)`` somewhere in
  its chain below the abstract base, with no extra required
  parameters;
* it must carry a string ``name`` class attribute (its table label);
* the registered factory must be callable with zero arguments — for a
  bare class that means every ``__init__`` parameter has a default;
  for a ``lambda: Cls(...)`` entry the supplied keywords must be real
  parameters of ``Cls.__init__`` and every remaining required
  parameter must be covered.

The rule fires on whichever file defines ``_FACTORIES`` under a
``disciplines`` package, so test fixtures can exercise it in synthetic
trees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.staticcheck.core import FileContext, Finding, Rule, register_rule

BASE_CLASS = "AllocationFunction"
BASE_MODULE_SUFFIX = ".base"


@dataclass
class _ClassInfo:
    """A class definition plus where it was found."""

    node: ast.ClassDef
    module_path: Path
    imports: Dict[str, str]      # local name -> dotted source module


def _module_imports(tree: ast.AST) -> Dict[str, str]:
    """Map of names bound by top-level ``from X import Y [as Z]``."""
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                out[alias.asname or alias.name] = node.module
    return out


def _find_class(tree: ast.AST, name: str) -> Optional[ast.ClassDef]:
    for node in tree.body if isinstance(tree, ast.Module) else []:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _find_method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _required_params(fn: ast.FunctionDef) -> List[str]:
    """Names of parameters (after self) without default values."""
    args = fn.args
    positional = args.posonlyargs + args.args
    n_defaults = len(args.defaults)
    required = [a.arg for a in positional[:len(positional) - n_defaults]]
    required += [a.arg for a, d in zip(args.kwonlyargs, args.kw_defaults)
                 if d is None]
    return [p for p in required if p != "self"]


def _param_names(fn: ast.FunctionDef) -> List[str]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return [p for p in names if p != "self"]


@register_rule
class DisciplineContractRule(Rule):
    """Statically verify registered discipline factories (GW002)."""

    rule_id = "GW002"
    name = "discipline-contract"
    description = ("entries registered in disciplines/registry.py must "
                   "statically implement the AllocationFunction surface "
                   "and be zero-argument constructible")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module is None or ".disciplines." not in f"{ctx.module}.":
            return
        factories = self._find_factories(ctx.tree)
        if factories is None:
            return
        imports = _module_imports(ctx.tree)
        package_dir = ctx.path.resolve().parent
        for key_node, value_node in zip(factories.keys, factories.values):
            key = (key_node.value
                   if isinstance(key_node, ast.Constant) else None)
            if not isinstance(key, str):
                yield self.finding(ctx, key_node or factories,
                                   "registry keys must be string literals")
                continue
            yield from self._check_entry(ctx, key, value_node, imports,
                                         package_dir)

    # -- registry parsing --------------------------------------------------

    @staticmethod
    def _find_factories(tree: ast.AST) -> Optional[ast.Dict]:
        for node in ast.walk(tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id == "_FACTORIES"
                        and isinstance(value, ast.Dict)):
                    return value
        return None

    def _check_entry(self, ctx: FileContext, key: str,
                     value: ast.expr, imports: Dict[str, str],
                     package_dir: Path) -> Iterable[Finding]:
        if isinstance(value, ast.Name):
            yield from self._check_class_entry(
                ctx, key, value, value.id, call=None,
                imports=imports, package_dir=package_dir)
        elif isinstance(value, ast.Lambda):
            if value.args.args or value.args.posonlyargs \
                    or value.args.kwonlyargs:
                yield self.finding(
                    ctx, value,
                    f"factory for {key!r} must take no arguments")
                return
            body = value.body
            if not (isinstance(body, ast.Call)
                    and isinstance(body.func, ast.Name)):
                yield self.finding(
                    ctx, value,
                    f"factory lambda for {key!r} must directly "
                    f"construct a discipline class")
                return
            yield from self._check_class_entry(
                ctx, key, value, body.func.id, call=body,
                imports=imports, package_dir=package_dir)
        else:
            yield self.finding(
                ctx, value,
                f"factory for {key!r} must be a class name or a "
                f"zero-argument lambda constructing one")

    # -- class resolution --------------------------------------------------

    def _resolve_class(self, class_name: str, imports: Dict[str, str],
                       package_dir: Path,
                       local_tree: Optional[ast.AST] = None,
                       local_path: Optional[Path] = None,
                       ) -> Tuple[Optional[_ClassInfo], Optional[str]]:
        """Find the AST of ``class_name``, following one import hop.

        Returns ``(info, error)``; exactly one is non-None.
        """
        if local_tree is not None:
            node = _find_class(local_tree, class_name)
            if node is not None:
                assert local_path is not None
                return _ClassInfo(node, local_path,
                                  _module_imports(local_tree)), None
        source_module = imports.get(class_name)
        if source_module is None:
            return None, (f"cannot resolve {class_name!r}: not defined "
                          f"locally and not imported")
        module_file = self._module_file(source_module, package_dir)
        if module_file is None:
            return None, (f"cannot locate module {source_module!r} "
                          f"for {class_name!r}")
        try:
            tree = ast.parse(module_file.read_text(),
                             filename=str(module_file))
        except SyntaxError as exc:
            return None, f"cannot parse {module_file.name}: {exc.msg}"
        node = _find_class(tree, class_name)
        if node is None:
            return None, (f"{class_name!r} not found in "
                          f"{source_module!r}")
        return _ClassInfo(node, module_file, _module_imports(tree)), None

    @staticmethod
    def _module_file(dotted: str, package_dir: Path) -> Optional[Path]:
        """Map ``repro.disciplines.x`` to a file near the registry.

        Only modules inside the same ``disciplines`` package (or its
        parent package, for ``exceptions`` etc.) are resolvable; the
        contract only concerns discipline classes, which must live
        there.
        """
        parts = dotted.split(".")
        if "disciplines" in parts:
            rel = parts[parts.index("disciplines") + 1:]
            candidate = package_dir.joinpath(*rel).with_suffix(".py")
            if candidate.is_file():
                return candidate
            init = package_dir.joinpath(*rel, "__init__.py")
            if init.is_file():
                return init
        return None

    # -- the contract ------------------------------------------------------

    def _check_class_entry(self, ctx: FileContext, key: str,
                           anchor: ast.expr, class_name: str,
                           call: Optional[ast.Call],
                           imports: Dict[str, str],
                           package_dir: Path) -> Iterable[Finding]:
        info, error = self._resolve_class(class_name, imports, package_dir)
        if info is None:
            yield self.finding(ctx, anchor, f"entry {key!r}: {error}")
            return
        chain, chain_error = self._base_chain(info, package_dir)
        if chain_error is not None:
            yield self.finding(ctx, anchor,
                               f"entry {key!r}: {chain_error}")
            return
        yield from self._check_congestion(ctx, key, anchor, chain)
        yield from self._check_name_attr(ctx, key, anchor, chain)
        yield from self._check_constructible(ctx, key, anchor, chain, call)

    def _base_chain(self, info: _ClassInfo, package_dir: Path,
                    ) -> Tuple[List[_ClassInfo], Optional[str]]:
        """The single-inheritance chain down to ``AllocationFunction``.

        Discipline classes use single inheritance within the package;
        the chain stops (successfully) when a base named
        ``AllocationFunction`` imported from a ``.base`` module is
        reached.
        """
        chain = [info]
        current = info
        for _ in range(16):
            bases = [b for b in current.node.bases
                     if isinstance(b, ast.Name)]
            if not bases:
                return chain, (f"{current.node.name!r} does not "
                               f"subclass {BASE_CLASS}")
            base_name = bases[0].id
            if base_name == BASE_CLASS:
                source = current.imports.get(BASE_CLASS, "")
                if not source.endswith(BASE_MODULE_SUFFIX) \
                        and not source.endswith("disciplines"):
                    return chain, (
                        f"{current.node.name!r} inherits "
                        f"{BASE_CLASS!r} from unexpected module "
                        f"{source!r}")
                return chain, None
            base_info, error = self._resolve_class(
                base_name, current.imports, package_dir,
                local_tree=None, local_path=None)
            if base_info is None:
                # Try the defining module itself for a local base.
                try:
                    tree = ast.parse(current.module_path.read_text())
                except OSError:
                    return chain, error
                node = _find_class(tree, base_name)
                if node is None:
                    return chain, error
                base_info = _ClassInfo(node, current.module_path,
                                       _module_imports(tree))
            chain.append(base_info)
            current = base_info
        return chain, "inheritance chain too deep (cycle?)"

    def _check_congestion(self, ctx: FileContext, key: str,
                          anchor: ast.expr,
                          chain: List[_ClassInfo]) -> Iterable[Finding]:
        for info in chain:
            method = _find_method(info.node, "congestion")
            if method is None:
                continue
            if self._is_abstract(method):
                continue
            required = _required_params(method)
            if len(required) != 1:
                yield self.finding(
                    ctx, anchor,
                    f"entry {key!r}: {info.node.name}.congestion must "
                    f"take exactly one required parameter (rates), "
                    f"has {required}")
            return
        yield self.finding(
            ctx, anchor,
            f"entry {key!r}: no concrete congestion() implementation "
            f"found on {chain[0].node.name} or its bases")

    @staticmethod
    def _is_abstract(fn: ast.FunctionDef) -> bool:
        for deco in fn.decorator_list:
            name = deco.attr if isinstance(deco, ast.Attribute) \
                else getattr(deco, "id", "")
            if name in ("abstractmethod", "abstractproperty"):
                return True
        return False

    def _check_name_attr(self, ctx: FileContext, key: str,
                         anchor: ast.expr,
                         chain: List[_ClassInfo]) -> Iterable[Finding]:
        for info in chain:
            # An instance attribute ``self.name = ...`` set in any
            # method satisfies the surface too (e.g. a label that
            # depends on constructor flags).
            for method in info.node.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                for sub in ast.walk(method):
                    if isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            if (isinstance(target, ast.Attribute)
                                    and target.attr == "name"
                                    and isinstance(target.value,
                                                   ast.Name)
                                    and target.value.id == "self"):
                                return
            for node in info.node.body:
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                    value = node.value
                elif isinstance(node, ast.AnnAssign) \
                        and node.value is not None:
                    targets = [node.target]
                    value = node.value
                else:
                    continue
                for target in targets:
                    if isinstance(target, ast.Name) \
                            and target.id == "name":
                        if not (isinstance(value, ast.Constant)
                                and isinstance(value.value, str)):
                            yield self.finding(
                                ctx, anchor,
                                f"entry {key!r}: class attribute "
                                f"'name' on {info.node.name} must be "
                                f"a string literal")
                        return
        yield self.finding(
            ctx, anchor,
            f"entry {key!r}: {chain[0].node.name} has no 'name' class "
            f"attribute (table label) anywhere in its chain")

    def _check_constructible(self, ctx: FileContext, key: str,
                             anchor: ast.expr, chain: List[_ClassInfo],
                             call: Optional[ast.Call]
                             ) -> Iterable[Finding]:
        init = None
        owner = chain[0]
        for info in chain:
            init = _find_method(info.node, "__init__")
            if init is not None:
                owner = info
                break
        if init is None:
            # Only object.__init__ — trivially zero-argument.
            if call is not None and (call.args or call.keywords):
                yield self.finding(
                    ctx, anchor,
                    f"entry {key!r}: {chain[0].node.name} has no "
                    f"__init__ but the factory passes arguments")
            return
        required = _required_params(init)
        accepted = _param_names(init)
        has_kwargs = init.args.kwarg is not None
        has_varargs = init.args.vararg is not None
        if call is None:
            if required:
                yield self.finding(
                    ctx, anchor,
                    f"entry {key!r}: {owner.node.name}.__init__ has "
                    f"required parameters {required}; registered "
                    f"factories must be zero-argument constructible")
            return
        supplied = set()
        positional = init.args.posonlyargs + init.args.args
        pos_names = [a.arg for a in positional if a.arg != "self"]
        for idx, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            if idx < len(pos_names):
                supplied.add(pos_names[idx])
            elif not has_varargs:
                yield self.finding(
                    ctx, anchor,
                    f"entry {key!r}: factory passes more positional "
                    f"arguments than {owner.node.name}.__init__ "
                    f"accepts")
        for kw in call.keywords:
            if kw.arg is None:
                continue
            if kw.arg not in accepted and not has_kwargs:
                yield self.finding(
                    ctx, anchor,
                    f"entry {key!r}: {owner.node.name}.__init__ has "
                    f"no parameter {kw.arg!r}")
            supplied.add(kw.arg)
        missing = [p for p in required if p not in supplied]
        if missing:
            yield self.finding(
                ctx, anchor,
                f"entry {key!r}: factory leaves required parameters "
                f"{missing} of {owner.node.name}.__init__ unfilled")
