"""GW1xx — performance lints for hot numerical paths.

The ROADMAP's north star is a system that runs as fast as the hardware
allows; near saturation (the heavy-traffic regime), per-packet Python
overhead dominates everything else.  These rules flag the classic ways
numpy code quietly degrades to interpreter speed:

``GW101``  a Python-level ``for`` loop over a numpy array (directly,
           via ``enumerate``/``zip``, or as ``range(len(arr))`` /
           ``range(arr.size)``) — vectorize, or suppress with the
           reason the loop must stay scalar;
``GW102``  a loop-invariant call — e.g. ``g(total)`` or
           ``curve.value(load)`` with arguments never written inside
           the loop — recomputed on every iteration; hoist it;
``GW103``  an ``x in somelist`` membership test inside a loop where
           the container is list-valued — quadratic; use a set;
``GW104``  ``np.append`` anywhere (it copies the whole array per
           call), and loop-carried ``np.concatenate``-style growth.
``GW105``  a candidate-rate scan in the game layer — ``congestion_i``
           called in a loop that pokes candidates into a fixed rate
           vector (``base[i] = x``) with the user index held constant —
           where one batched ``congestion_grid`` call would do.
``GW106``  a direct fixed-horizon ``simulate()`` call in an experiment
           module — where a precision target exists,
           ``simulate_to_precision`` reaches the same CI with a
           fraction of the events; fixed horizons are only right when
           no CI target exists (divergent queues, loss fractions), and
           such sites must say so in a suppression.
``GW107``  a per-user API call (``congestion_i``, ``best_response``,
           ``utility_improvement``, ...) inside a loop in the
           class-space modules (``repro.game.classes`` /
           ``repro.game.meanfield``) — those modules exist to keep
           every path O(K); an O(N) per-user loop silently destroys
           the reduction.  Deliberately bounded spot checks carry a
           suppression saying so.

All apply only to ``repro`` modules (GW105 to ``repro.game``, GW106 to
``repro.experiments``, GW107 to the class-space modules): tests and
examples may trade speed for clarity.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.staticcheck.core import FileContext, Finding, Rule, register_rule

#: numpy namespace functions returning arrays.
NUMPY_ARRAY_FNS = frozenset({
    "array", "asarray", "ascontiguousarray", "arange", "linspace",
    "logspace", "geomspace", "zeros", "ones", "empty", "full",
    "zeros_like", "ones_like", "empty_like", "full_like", "cumsum",
    "cumprod", "sort", "argsort", "where", "diff", "concatenate",
    "stack", "vstack", "hstack", "column_stack", "abs", "exp", "log",
    "log1p", "expm1", "sqrt", "clip", "minimum", "maximum", "power",
    "outer", "repeat", "tile",
})

#: Pure scalar functions whose loop-invariant recomputation is waste.
PURE_NAMESPACES = frozenset({"math", "np", "numpy"})

#: Domain methods that are pure functions of their arguments (service
#: curves and allocation functions are contractually side-effect-free).
PURE_DOMAIN_METHODS = frozenset({
    "value", "derivative", "second_derivative", "congestion",
    "total_queue", "marginal_cost",
})

#: Calls that grow one of their own arguments when assigned back to it.
GROWTH_FNS = frozenset({"concatenate", "vstack", "hstack", "stack",
                        "column_stack", "row_stack"})

#: Names that signal a stateful random generator: a call touching one
#: is NOT pure (same arguments, different results), so hoisting it
#: would change semantics.
RNG_NAME_RE = re.compile(r"rng|random|generator|sample|draw", re.IGNORECASE)

#: Names that signal a batched variate stream (the event engine's
#: ``VariateStream`` refill idiom): like generators, streams advance an
#: internal cursor on every call, so calls on or through them are
#: stateful even when their arguments never change inside the loop.
STREAM_NAME_RE = re.compile(r"stream|variate", re.IGNORECASE)


def _stateful_name(name: str) -> bool:
    """Whether a name denotes RNG- or stream-like per-call state."""
    return bool(RNG_NAME_RE.search(name) or STREAM_NAME_RE.search(name))


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    out = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in ("numpy", "numpy.ma"):
                    out.add(alias.asname or "numpy")
    return out


def _call_root(node: ast.Call) -> Tuple[Optional[str], Optional[str]]:
    """(namespace, function) for ``ns.fn(...)``; (None, fn) for bare."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id, func.attr
    if isinstance(func, ast.Name):
        return None, func.id
    return None, None


class _ScopeArrays:
    """Names bound to numpy-array expressions within one scope."""

    def __init__(self, scope: ast.AST, numpy_names: Set[str]) -> None:
        self.numpy_names = numpy_names
        self.array_names: Set[str] = set()
        body = scope.body if hasattr(scope, "body") else []
        for stmt in body:
            self._scan(stmt)

    def _scan(self, stmt: ast.stmt) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                if self.is_array_expr(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.array_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if self.is_array_expr(node.value) and \
                        isinstance(node.target, ast.Name):
                    self.array_names.add(node.target.id)

    def is_array_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Call):
            ns, fn = _call_root(node)
            if ns in self.numpy_names and fn in NUMPY_ARRAY_FNS:
                return True
            return False
        if isinstance(node, ast.Name):
            return node.id in self.array_names
        if isinstance(node, ast.BinOp):
            return self.is_array_expr(node.left) or \
                self.is_array_expr(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.is_array_expr(node.operand)
        return False


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "add",
    "discard", "update", "setdefault", "sort", "reverse", "fill",
    "put", "resize", "setfield", "setflags",
})


def _attribute_root(node: ast.expr) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _stored_names(node: ast.AST) -> Set[str]:
    """Every name (possibly) written anywhere inside ``node``.

    Besides plain stores this includes the root of attribute or
    subscript stores (``x.field = ...``, ``x[i] = ...``) and the
    receiver of in-place mutator methods (``x.append(...)``), so
    expressions touching such names are not treated as invariant.
    """
    out: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)):
            out.add(sub.id)
        elif isinstance(sub, (ast.Attribute, ast.Subscript)) and \
                isinstance(sub.ctx, (ast.Store, ast.Del)):
            root = _attribute_root(sub)
            if root is not None:
                out.add(root)
        elif isinstance(sub, ast.Call) and \
                isinstance(sub.func, ast.Attribute) and \
                sub.func.attr in MUTATOR_METHODS:
            root = _attribute_root(sub.func.value)
            if root is not None:
                out.add(root)
        elif isinstance(sub, (ast.Global, ast.Nonlocal)):
            out.update(sub.names)
    return out


def _loops(scope: ast.AST) -> Iterator[ast.AST]:
    """Loops belonging to ``scope`` itself (not to nested functions)."""
    stack: List[ast.AST] = list(
        scope.body if hasattr(scope, "body") else [])
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, (ast.For, ast.While)):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register_rule
class DevectorizedLoopRule(Rule):
    """Flag Python-level iteration over numpy arrays (GW101)."""

    rule_id = "GW101"
    name = "devectorized-loop"
    description = ("no Python-level for loops over numpy arrays in "
                   "repro modules; vectorize or justify with a pragma")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or ctx.module is None \
                or not ctx.module.startswith("repro"):
            return
        numpy_names = _numpy_aliases(ctx.tree)
        for scope in _scopes(ctx.tree):
            arrays = _ScopeArrays(scope, numpy_names)
            for loop in _loops(scope):
                if not isinstance(loop, ast.For):
                    continue
                reason = self._loop_reason(loop.iter, arrays)
                if reason:
                    yield self.finding(
                        ctx, loop,
                        f"python-level loop over a numpy array "
                        f"({reason}); vectorize the body or suppress "
                        f"with the reason it must stay scalar")

    def _loop_reason(self, iter_expr: ast.expr,
                     arrays: _ScopeArrays) -> Optional[str]:
        if arrays.is_array_expr(iter_expr):
            return "iterating the array directly"
        if isinstance(iter_expr, ast.Call):
            ns, fn = _call_root(iter_expr)
            if ns is None and fn in ("enumerate", "zip", "reversed"):
                if any(arrays.is_array_expr(arg)
                       for arg in iter_expr.args):
                    return f"via {fn}()"
            if ns is None and fn == "range":
                for arg in iter_expr.args:
                    if self._is_array_length(arg, arrays):
                        return "indexing via range(len/size)"
        return None

    @staticmethod
    def _is_array_length(node: ast.expr, arrays: _ScopeArrays) -> bool:
        # len(arr) / arr.size / arr.shape[k], possibly inside arithmetic
        # like range(n - 1).
        if isinstance(node, ast.BinOp):
            return DevectorizedLoopRule._is_array_length(
                node.left, arrays) or \
                DevectorizedLoopRule._is_array_length(node.right, arrays)
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id == "len" and node.args:
            return arrays.is_array_expr(node.args[0]) or (
                isinstance(node.args[0], ast.Name)
                and node.args[0].id in arrays.array_names)
        if isinstance(node, ast.Attribute) and node.attr == "size":
            return isinstance(node.value, ast.Name) and \
                node.value.id in arrays.array_names
        if isinstance(node, ast.Subscript) and \
                isinstance(node.value, ast.Attribute) and \
                node.value.attr == "shape":
            return isinstance(node.value.value, ast.Name) and \
                node.value.value.id in arrays.array_names
        return False


@register_rule
class LoopInvariantCallRule(Rule):
    """Flag pure calls recomputed with loop-invariant args (GW102)."""

    rule_id = "GW102"
    name = "loop-invariant-call"
    description = ("pure calls (math.*, np.*, service-curve methods, "
                   "module-level helpers) whose arguments never change "
                   "inside the loop must be hoisted out of it")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or ctx.module is None \
                or not ctx.module.startswith("repro"):
            return
        module_functions = {
            node.name for node in ctx.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}
        for scope in _scopes(ctx.tree):
            # Shared across the scope's loops: a call invariant to an
            # outer loop must not be re-reported from an inner one
            # (_loops yields outer loops before their nested loops).
            reported: Set[int] = set()
            for loop in _loops(scope):
                written = _stored_names(loop)
                for node in ast.walk(loop):
                    if not isinstance(node, ast.Call):
                        continue
                    if id(node) in reported:
                        continue
                    if self._in_iter(loop, node):
                        continue
                    label = self._invariant_pure_call(
                        node, written, module_functions)
                    if label is None:
                        continue
                    reported.add(id(node))
                    yield self.finding(
                        ctx, node,
                        f"loop-invariant call {label} recomputed every "
                        f"iteration; hoist it above the loop")

    @staticmethod
    def _in_iter(loop: ast.AST, node: ast.Call) -> bool:
        if isinstance(loop, ast.For):
            return any(sub is node for sub in ast.walk(loop.iter))
        return False

    def _invariant_pure_call(self, node: ast.Call, written: Set[str],
                             module_functions: Set[str]
                             ) -> Optional[str]:
        ns, fn = _call_root(node)
        if fn is not None and _stateful_name(fn):
            return None  # stateful by name: random_*, sample_*, ...
        if ns is not None and ns not in PURE_NAMESPACES \
                and _stateful_name(ns):
            return None  # stateful receiver: rng.*, stream.*, ...
        if ns in PURE_NAMESPACES and fn is not None:
            label = f"{ns}.{fn}(...)"
        elif ns is not None and fn in PURE_DOMAIN_METHODS \
                and ns not in written:
            label = f"{ns}.{fn}(...)"
        elif ns is None and fn in module_functions:
            label = f"{fn}(...)"
        else:
            return None
        if not node.args and not node.keywords:
            # Zero-argument calls (np.seterr(), math.inf access) are
            # not worth the noise.
            return None
        args = list(node.args) + [kw.value for kw in node.keywords]
        for arg in args:
            if not self._invariant_expr(arg, written):
                return None
        return label

    def _invariant_expr(self, node: ast.expr, written: Set[str]) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and (
                    sub.id in written or _stateful_name(sub.id)):
                return False
            if isinstance(sub, ast.Call):
                # A nested call may be impure; treat as varying.
                return False
            if isinstance(sub, (ast.Subscript, ast.Starred)):
                return False
        return True


@register_rule
class QuadraticMembershipRule(Rule):
    """Flag list-membership tests inside loops (GW103)."""

    rule_id = "GW103"
    name = "quadratic-membership"
    description = ("`x in somelist` inside a loop is O(n) per test — "
                   "build a set before the loop")

    _LIST_CALLS = frozenset({"list", "sorted"})

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or ctx.module is None \
                or not ctx.module.startswith("repro"):
            return
        for scope in _scopes(ctx.tree):
            list_names = self._list_names(scope)
            for loop in _loops(scope):
                for node in ast.walk(loop):
                    if not isinstance(node, ast.Compare):
                        continue
                    operands = [node.left] + list(node.comparators)
                    for op, container in zip(node.ops, operands[1:]):
                        if not isinstance(op, (ast.In, ast.NotIn)):
                            continue
                        if self._is_listy(container, list_names):
                            yield self.finding(
                                ctx, node,
                                "membership test against a list inside "
                                "a loop is quadratic; use a set")

    def _list_names(self, scope: ast.AST) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and \
                    self._is_list_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
        return out

    def _is_list_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.ListComp)):
            return True
        if isinstance(node, ast.Call):
            ns, fn = _call_root(node)
            return ns is None and fn in self._LIST_CALLS
        return False

    def _is_listy(self, node: ast.expr, list_names: Set[str]) -> bool:
        if isinstance(node, (ast.List, ast.ListComp)):
            return True
        return isinstance(node, ast.Name) and node.id in list_names


@register_rule
class ArrayGrowthRule(Rule):
    """Flag O(n) array-growth idioms (GW104)."""

    rule_id = "GW104"
    name = "array-growth"
    description = ("np.append copies the whole array per call, and "
                   "loop-carried np.concatenate grows quadratically; "
                   "collect into a list and convert once")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or ctx.module is None \
                or not ctx.module.startswith("repro"):
            return
        numpy_names = _numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                ns, fn = _call_root(node)
                if ns in numpy_names and fn == "append":
                    yield self.finding(
                        ctx, node,
                        "np.append copies the whole array on every "
                        "call; append to a list and np.asarray once, "
                        "or preallocate")
        for scope in _scopes(ctx.tree):
            for loop in _loops(scope):
                yield from self._loop_growth(ctx, loop, numpy_names)

    def _loop_growth(self, ctx: FileContext, loop: ast.AST,
                     numpy_names: Set[str]) -> Iterable[Finding]:
        for node in ast.walk(loop):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            ns, fn = _call_root(node.value)
            if ns not in numpy_names or fn not in GROWTH_FNS:
                continue
            target_names = {t.id for t in node.targets
                            if isinstance(t, ast.Name)}
            if not target_names:
                continue
            arg_names = self._argument_names(node.value)
            if target_names & arg_names:
                grown = sorted(target_names & arg_names)[0]
                yield self.finding(
                    ctx, node,
                    f"array {grown!r} grown via np.{fn} inside a loop "
                    f"(quadratic); collect parts in a list and "
                    f"concatenate once after the loop")

    @staticmethod
    def _argument_names(call: ast.Call) -> Set[str]:
        out: Set[str] = set()
        for arg in call.args:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Name):
                    out.add(sub.id)
        return out


@register_rule
class ScalarCandidateScanRule(Rule):
    """Flag scalar congestion scans over candidate rates (GW105)."""

    rule_id = "GW105"
    name = "scalar-candidate-scan"
    description = ("game-layer loops that evaluate `congestion_i` once "
                   "per candidate own-rate (poking each candidate into "
                   "a fixed rate vector) must use one batched "
                   "`congestion_grid` call instead")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or ctx.module is None \
                or not ctx.module.startswith("repro.game"):
            return
        for scope in _scopes(ctx.tree):
            for loop in _loops(scope):
                written = _stored_names(loop)
                rebound = self._plain_rebinds(loop)
                for node in ast.walk(loop):
                    if not self._is_congestion_i_call(node):
                        continue
                    rates_arg, idx_arg = node.args[0], node.args[1]
                    # The user index must be loop-invariant: a loop
                    # *over users* (Gauss-Seidel sweeps, per-user
                    # certification) is not a candidate scan.
                    if any(isinstance(sub, ast.Name) and sub.id in written
                           for sub in ast.walk(idx_arg)):
                        continue
                    if not isinstance(rates_arg, ast.Name):
                        continue
                    # The scan signature: the same rate vector mutated
                    # in place each iteration (``base[i] = x``) — not
                    # rebound wholesale to a fresh vector.
                    if rates_arg.id in rebound:
                        continue
                    if rates_arg.id not in written:
                        continue
                    yield self.finding(
                        ctx, node,
                        "scalar congestion_i scan over candidate rates; "
                        "evaluate all candidates in one "
                        "congestion_grid call")

    @staticmethod
    def _is_congestion_i_call(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "congestion_i"
                and len(node.args) >= 2)

    @staticmethod
    def _plain_rebinds(loop: ast.AST) -> Set[str]:
        """Names wholly rebound (plain ``name = ...``) inside the loop."""
        out: Set[str] = set()
        for sub in ast.walk(loop):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)) and \
                    isinstance(sub.target, ast.Name):
                out.add(sub.target.id)
            elif isinstance(sub, ast.For) and \
                    isinstance(sub.target, ast.Name):
                out.add(sub.target.id)
        return out


#: Per-user evaluation entry points.  Each call costs O(N) (it walks a
#: full rate vector, or drives an O(N) congestion evaluation), so any
#: loop around one re-introduces exactly the per-user cost the
#: class-space reduction exists to remove.
PER_USER_API = frozenset({
    "congestion_i", "congestion", "congestion_grid", "grid_evaluator",
    "best_response", "best_response_map", "utility_improvement",
    "own_derivative", "gradient_i", "jacobian",
})

#: Modules contractually O(K): class-space solving and its mean-field
#: limit.
CLASS_SPACE_MODULES = frozenset({
    "repro.game.classes", "repro.game.meanfield",
})


@register_rule
class PerUserLoopInClassSpaceRule(Rule):
    """Flag O(N) per-user loops in class-space modules (GW107)."""

    rule_id = "GW107"
    name = "per-user-loop-in-class-space"
    description = ("the class-space modules promise O(K) solves; a "
                   "per-user API call (congestion_i, best_response, "
                   "utility_improvement, ...) inside a loop there is "
                   "an O(N) regression — use the class_* counterpart, "
                   "or suppress with the reason the loop is bounded")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or ctx.module not in CLASS_SPACE_MODULES:
            return
        for scope in _scopes(ctx.tree):
            # One report per call, anchored to the outermost loop that
            # contains it (_loops yields outer loops first), so a
            # suppression above the loop covers the whole nest.
            reported: Set[int] = set()
            for loop in _loops(scope):
                for node in ast.walk(loop):
                    if not isinstance(node, ast.Call) \
                            or id(node) in reported:
                        continue
                    func = node.func
                    if isinstance(func, ast.Attribute):
                        name = func.attr
                    elif isinstance(func, ast.Name):
                        name = func.id
                    else:
                        continue
                    if name not in PER_USER_API:
                        continue
                    reported.add(id(node))
                    yield self.finding(
                        ctx, loop,
                        f"per-user call {name}(...) inside a loop in a "
                        f"class-space module re-introduces O(N) work; "
                        f"use the O(K) class_* path, or suppress with "
                        f"the reason the loop is bounded")


@register_rule
class FixedHorizonSimulateRule(Rule):
    """Flag fixed-horizon simulate() calls in experiments (GW106)."""

    rule_id = "GW106"
    name = "fixed-horizon-simulate"
    description = ("experiment modules calling `simulate()` directly "
                   "run a pessimistic fixed horizon every time; where "
                   "a precision target exists, "
                   "`simulate_to_precision` reaches the same CI "
                   "half-width with a fraction of the events")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or ctx.module is None \
                or not ctx.module.startswith("repro.experiments"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name != "simulate":
                continue
            yield self.finding(
                ctx, node,
                "direct fixed-horizon simulate() in an experiment; "
                "use simulate_to_precision with a target half-width "
                "(or suppress with the reason no CI target exists)")
