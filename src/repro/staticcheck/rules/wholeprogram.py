"""GW3xx — whole-program hygiene (needs :class:`ProjectContext`).

``GW301``  dead public API — a public top-level function or class in
           a ``repro`` module that no *other* module, test, example,
           or benchmark references by name.  Public surface that
           nothing exercises is untested surface; make it private or
           remove it.
``GW302``  stateful discipline — a subclass of
           :class:`~repro.disciplines.base.AllocationFunction` whose
           allocation methods (``congestion``/``__call__``/
           ``allocate``) write module-level state.  The paper's
           allocation function is a *pure map* from rate vectors to
           congestion vectors; hidden state breaks the Nash/Pareto
           machinery (and any parallel evaluation) silently.

Both rules anchor findings to real source lines, so the ordinary
``# greedwork: ignore[...]`` pragmas apply.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.staticcheck.core import Finding, ProjectRule, register_rule
from repro.staticcheck.project import (
    MUTATOR_METHODS,
    ModuleInfo,
    ProjectContext,
    Symbol,
)

#: Methods forming the allocation surface of a discipline.
ALLOCATION_METHODS = frozenset({"congestion", "__call__", "allocate"})

#: Names that are consumed dynamically or by convention, never flagged.
_CONVENTIONAL = frozenset({"main", "run", "setup", "teardown"})


@register_rule
class DeadPublicAPIRule(ProjectRule):
    """Flag public symbols referenced from nowhere else (GW301)."""

    rule_id = "GW301"
    name = "dead-public-api"
    description = ("public functions/classes in repro modules must be "
                   "referenced by some other module, test, or "
                   "experiment — otherwise privatize or remove them")

    def check_project(self, project: ProjectContext
                      ) -> Iterable[Finding]:
        for info in project.infos:
            if info.module is None \
                    or not info.module.startswith("repro"):
                continue
            if not project.is_analyzed(info.ctx.display_path):
                continue
            for symbol in info.symbols.values():
                if symbol.kind not in ("function", "class"):
                    continue
                if not symbol.is_public or symbol.name.startswith("__"):
                    continue
                if symbol.name in _CONVENTIONAL:
                    continue
                if any("register" in dec for dec in symbol.decorators):
                    continue
                if project.name_used_outside(info.module, symbol.name):
                    continue
                yield self.finding(
                    info.ctx, symbol.node,
                    f"public {symbol.kind} {symbol.name!r} is "
                    f"referenced by no other module, test, or "
                    f"experiment; prefix it with '_' or remove it")


@register_rule
class StatefulDisciplineRule(ProjectRule):
    """Flag allocation methods that write module state (GW302)."""

    rule_id = "GW302"
    name = "stateful-discipline"
    description = ("AllocationFunction subclasses must keep "
                   "congestion/__call__/allocate pure: no writes to "
                   "module-level state (the paper's allocation "
                   "function is a pure map r -> c)")

    def check_project(self, project: ProjectContext
                      ) -> Iterable[Finding]:
        for symbol in project.subclasses_of("repro.disciplines.base",
                                            "AllocationFunction"):
            info = project.modules.get(symbol.module)
            if info is None:
                continue
            if not project.is_analyzed(info.ctx.display_path):
                continue
            if not isinstance(symbol.node, ast.ClassDef):
                continue
            for method in symbol.node.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                if method.name not in ALLOCATION_METHODS:
                    continue
                yield from self._check_method(info, symbol, method)

    def _check_method(self, info: ModuleInfo, symbol: Symbol,
                      method: ast.AST) -> Iterable[Finding]:
        local_names = self._local_names(method)
        label = f"{symbol.name}.{getattr(method, 'name', '?')}"
        for node in ast.walk(method):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                yield self.finding(
                    info.ctx, node,
                    f"{label} declares "
                    f"{type(node).__name__.lower()} state; allocation "
                    f"methods must be pure")
                continue
            root = None
            verb = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = self._root_name(target)
                        verb = "assigns into"
                        break
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in MUTATOR_METHODS:
                root = self._root_name(node.func)
                verb = f"calls .{node.func.attr}() on"
            if root is None or verb is None:
                continue
            if root in local_names:
                continue
            if root in info.module_level_names or root in info.aliases:
                yield self.finding(
                    info.ctx, node,
                    f"{label} {verb} module-level {root!r}; the "
                    f"allocation function must be a pure map from "
                    f"rates to congestions")

    @staticmethod
    def _root_name(node: ast.AST) -> str:
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
        return ""

    @staticmethod
    def _local_names(method: ast.AST) -> Set[str]:
        out: Set[str] = set()
        args = method.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])):
            out.add(arg.arg)
        for node in ast.walk(method):
            if isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Store):
                out.add(node.id)
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        out.add(sub.id)
            elif isinstance(node, ast.withitem) and \
                    node.optional_vars is not None:
                for sub in ast.walk(node.optional_vars):
                    if isinstance(sub, ast.Name):
                        out.add(sub.id)
        return out
