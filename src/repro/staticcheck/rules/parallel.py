"""GW6xx — parallel-safety rules for process-pool fan-out.

``run_experiments``/``replicate``-style fan-out forks worker
processes; anything a worker-reachable function does to module-level
mutable state happens in a *copy* the parent never sees (and differs
between fork and spawn start methods).  Likewise, a lambda or nested
function handed to ``Pool.map`` pickles on spawn-based platforms with
an error the fork-based CI never surfaces.  Both classes are found by
walking the call graph from the pool dispatch sites.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.staticcheck.core import FileContext, Finding, ProjectRule, \
    Rule, register_rule
from repro.staticcheck.project import (
    _POOL_CONSTRUCTORS,
    _POOL_DISPATCH_METHODS,
    ProjectContext,
    _dotted,
)
from repro.staticcheck.rules.determinism import _call_dotted, _in_scope


@register_rule
class WorkerSharedStateRule(ProjectRule):
    """Worker-reachable code must not touch module state (GW601).

    Rationale:
        A function reachable from a process-pool entry point runs in a
        forked/spawned child.  Module-level mutable state it writes is
        lost when the worker exits; state it reads may differ from the
        parent's (spawn re-imports modules fresh).  Either way the
        parallel run silently diverges from the serial one — the exact
        property ``run_experiments(jobs=n)`` promises not to break.

    Example::

        _CALLS = 0                    # module-level counter

        def simulate_once(config):    # shipped via pool.map
            global _CALLS
            _CALLS += 1               # lost in the child

    Fix:
        Return the value and merge in the parent (the sim cache's
        ``merge_stats`` delta protocol is the sanctioned pattern), or
        pass state explicitly through the worker payload.  Counters
        that are deliberately per-process (and re-merged or re-derived)
        may suppress with a reason:
        ``# greedwork: ignore[GW601] -- <why>``.
    """

    rule_id = "GW601"
    name = "worker-shared-state"
    description = ("module-level mutable state read or written by "
                   "functions reachable from process-pool worker "
                   "entry points diverges between parent and workers")

    def check_project(self, project: ProjectContext
                      ) -> Iterable[Finding]:
        reachable = project.reachable_from_workers()
        summaries = project.function_summaries
        for key in sorted(reachable):
            summary = summaries.get(key)
            if summary is None:
                continue
            info = project.modules.get(summary.module)
            if info is None or not project.is_analyzed(
                    info.ctx.display_path):
                continue
            mutable = project.module_mutable_globals(summary.module)
            entry = reachable[key]
            qual = key.partition(":")[2]
            for name in sorted(set(summary.global_writes)
                               | (set(summary.global_reads)
                                  & mutable)):
                node = summary.global_writes.get(
                    name, summary.global_reads.get(name))
                verb = ("writes" if name in summary.global_writes
                        else "reads")
                yield self.finding(
                    info.ctx, node,
                    f"{qual} is reachable from worker entry "
                    f"{entry.partition(':')[2]} and {verb} "
                    f"module-level mutable state {name!r}; workers "
                    f"get a private copy that diverges from the "
                    f"parent")


@register_rule
class UnpicklableWorkerRule(Rule):
    """Pool callables must be picklable top-level functions (GW602).

    Rationale:
        ``multiprocessing`` pickles the callable it ships to workers.
        Lambdas and functions defined inside another function cannot
        be pickled — the code works under the fork start method (the
        child inherits memory) and then crashes on spawn-based
        platforms (macOS, Windows) or under any future switch to
        ``forkserver``.  Closure capture is also a correctness trap:
        captured state is frozen at fork time.

    Example::

        def run_all(configs):
            scale = 2.0
            with Pool() as pool:
                return pool.map(lambda c: simulate(c, scale), configs)

    Fix:
        Dispatch a module-level function and pass extra state through
        the payload (tuples, or ``functools.partial`` over a top-level
        function).  There is no sanctioned suppression: this is a
        latent crash, not a judgment call.
    """

    rule_id = "GW602"
    name = "unpicklable-worker"
    description = ("lambdas and nested functions passed to process-"
                   "pool dispatch methods cannot be pickled under "
                   "the spawn start method")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        for func in ast.walk(ctx.tree):
            if isinstance(func, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, func)

    def _check_function(self, ctx: FileContext,
                        func: ast.AST) -> Iterable[Finding]:
        pool_names = self._pool_receivers(func)
        if not pool_names:
            return
        nested = {
            node.name for body_item in ast.walk(func)
            for node in ast.iter_child_nodes(body_item)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not func}
        lambda_names = self._lambda_bindings(func)
        for node in ast.walk(func):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute) \
                    or node.func.attr not in _POOL_DISPATCH_METHODS:
                continue
            receiver = node.func.value
            if not (isinstance(receiver, ast.Name)
                    and receiver.id in pool_names):
                continue
            if not node.args:
                continue
            target = node.args[0]
            if isinstance(target, ast.Lambda):
                yield self.finding(
                    ctx, target,
                    f"lambda passed to pool.{node.func.attr}: "
                    f"lambdas cannot be pickled under the spawn "
                    f"start method")
            elif isinstance(target, ast.Name):
                if target.id in nested:
                    yield self.finding(
                        ctx, target,
                        f"nested function {target.id!r} passed to "
                        f"pool.{node.func.attr}: inner functions "
                        f"cannot be pickled and capture enclosing "
                        f"state at fork time")
                elif target.id in lambda_names:
                    yield self.finding(
                        ctx, target,
                        f"{target.id!r} is bound to a lambda and "
                        f"passed to pool.{node.func.attr}: lambdas "
                        f"cannot be pickled under the spawn start "
                        f"method")

    @staticmethod
    def _pool_receivers(func: ast.AST) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(func):
            value: Optional[ast.AST] = None
            names: List[str] = []
            if isinstance(node, ast.Assign):
                value = node.value
                names = [t.id for t in node.targets
                         if isinstance(t, ast.Name)]
            elif isinstance(node, ast.withitem):
                value = node.context_expr
                if isinstance(node.optional_vars, ast.Name):
                    names = [node.optional_vars.id]
            if value is None or not names \
                    or not isinstance(value, ast.Call):
                continue
            dotted = _dotted(value.func)
            if dotted and dotted.split(".")[-1] in _POOL_CONSTRUCTORS:
                out.update(names)
        return out

    @staticmethod
    def _lambda_bindings(func: ast.AST) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Lambda):
                out.update(t.id for t in node.targets
                           if isinstance(t, ast.Name))
        return out


#: Scheduler/orchestrator modules whose async code GW604 audits.
_EVENT_LOOP_PREFIXES = ("repro.sweep.",)

#: Synchronous simulation entry points that must never run on the
#: event loop thread — each one simulates for seconds to minutes.
_BLOCKING_SIM_CALLS = frozenset({
    "simulate", "simulate_to_precision", "replicate",
    "replicate_to_precision", "run_experiments",
})


def _own_nodes(func: ast.AST) -> Iterable[ast.AST]:
    """Walk ``func``'s body without descending into nested defs.

    Nested ``async def``s are visited by the caller's outer walk and
    audited on their own; nested *sync* defs get audited too (they are
    closures the async function calls inline), but as part of their
    enclosing async scope exactly once.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@register_rule
class BlockingEventLoopRule(Rule):
    """Async scheduler code must never block the event loop (GW604).

    Rationale:
        The sweep scheduler's dispatch loop is a single-threaded
        asyncio loop multiplexing worker completions, journal writes,
        and progress ticks.  One synchronous call stalls all of it:
        ``Future.result()`` parks the loop thread until a worker
        finishes (starving every other completion), an un-timeout'd
        ``concurrent.futures.as_completed`` iterator blocks in C code
        the loop cannot interrupt, and calling ``simulate(...)`` /
        ``simulate_to_precision(...)`` inline runs a whole simulation
        on the loop thread — the scheduler degrades to serial while
        claiming ``jobs=N``.  None of these deadlock loudly; they
        silently destroy the worker utilization the bench gates on.

    Example::

        async def _dispatch(self, batches):
            for batch in batches:
                future = loop.run_in_executor(pool, run, batch)
                outcome = future.result()      # blocks the loop

    Fix:
        ``await`` the future (``outcome = await future``), wait on
        completion sets with ``asyncio.wait(...)``, and route every
        simulation through ``loop.run_in_executor``.  Code that is
        deliberately synchronous (e.g. a sequential fallback path)
        belongs in a plain ``def``; if a blocking call inside an
        ``async def`` is truly intended, suppress with a reason:
        ``# greedwork: ignore[GW604] -- <why>``.
    """

    rule_id = "GW604"
    name = "blocking-event-loop"
    description = ("blocking calls (Future.result(), un-timeout'd "
                   "as_completed, synchronous simulate/replicate) "
                   "inside async scheduler code stall the event loop")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None \
                or not _in_scope(ctx.module, _EVENT_LOOP_PREFIXES):
            return
        for func in ast.walk(ctx.tree):
            if isinstance(func, ast.AsyncFunctionDef):
                yield from self._check_async(ctx, func)

    def _check_async(self, ctx: FileContext,
                     func: ast.AsyncFunctionDef) -> Iterable[Finding]:
        for node in _own_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = _call_dotted(node)
            tail = dotted.rsplit(".", 1)[-1] if dotted else ""
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "result":
                yield self.finding(
                    ctx, node,
                    f"{dotted or 'future'}() blocks the event loop "
                    f"in async {func.name!r}; await the future "
                    f"instead")
            elif tail == "as_completed" \
                    and not any(kw.arg == "timeout"
                                for kw in node.keywords):
                yield self.finding(
                    ctx, node,
                    f"{dotted}(...) without a timeout blocks the "
                    f"event loop in async {func.name!r}; use "
                    f"asyncio.wait(...) or pass timeout=")
            elif tail in _BLOCKING_SIM_CALLS:
                yield self.finding(
                    ctx, node,
                    f"synchronous {dotted}(...) runs a whole "
                    f"simulation on the event loop thread in async "
                    f"{func.name!r}; dispatch it through "
                    f"loop.run_in_executor")
