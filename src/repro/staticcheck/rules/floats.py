"""GW004 — float-equality lint.

Exact ``==``/``!=`` between floating-point expressions is almost
always a latent bug in numerical code: it encodes an implicit
zero-tolerance that nobody reviewed.  This rule flags comparisons
where either side is *statically float-valued*:

* a float literal (``x == 0.0``);
* arithmetic over a float literal (``y != 1.0 - rho``);
* a ``float(...)`` / ``math.sqrt(...)``-style call;

and directs them through :mod:`repro.numerics.tolerances`
(``isclose``/``is_zero`` or a named ATOL/RTOL constant).

Comparisons against ``math.inf``/``np.inf``/``nan`` checks are *not*
flagged — equality with infinities is exact, and NaN handling has its
own idioms (``math.isnan``).  Chained comparisons are examined
pairwise.
"""

from __future__ import annotations

import ast
import math
from typing import Iterable

from repro.staticcheck.core import FileContext, Finding, Rule, register_rule

_FLOAT_CALLS = frozenset({"float"})
_MATH_FLOAT_FNS = frozenset({
    "sqrt", "exp", "log", "log2", "log10", "sin", "cos", "tan",
    "atan", "asin", "acos", "hypot", "pow", "fabs", "floor", "ceil",
    "fsum", "copysign", "expm1", "log1p",
})
_INF_NAMES = frozenset({"inf", "nan", "infty"})


def _is_infinite_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return math.isinf(node.value) or math.isnan(node.value)
    if isinstance(node, ast.Attribute) and node.attr in _INF_NAMES:
        return True
    if isinstance(node, ast.Name) and node.id in _INF_NAMES:
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_infinite_literal(node.operand)
    if isinstance(node, ast.Call):
        # float("inf") / float("-inf") / float("nan")
        if isinstance(node.func, ast.Name) and node.func.id == "float" \
                and len(node.args) == 1 \
                and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            return True
    return False


def _is_floatish(node: ast.expr) -> bool:
    """Statically float-valued, excluding infinities and NaN."""
    if _is_infinite_literal(node):
        return False
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            return node.func.id in _FLOAT_CALLS
        if isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id in ("math", "np", "numpy"):
            return node.func.attr in _MATH_FLOAT_FNS
    return False


@register_rule
class FloatEqualityRule(Rule):
    """Flag exact ==/!= against float-valued expressions (GW004)."""

    rule_id = "GW004"
    name = "float-equality"
    description = ("== / != against float expressions must go through "
                   "repro.numerics.tolerances (isclose/is_zero or a "
                   "named tolerance constant)")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands,
                                       operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floatish(left) or _is_floatish(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        ctx, node,
                        f"exact float {symbol} comparison; use "
                        f"repro.numerics.tolerances (isclose/is_zero "
                        f"or a named tolerance)")
