"""GW2xx — numerical-safety dataflow near the g(x) = x/(1-x) pole.

Every allocation in the paper is pinned to the M/M/1 feasibility
constraint ``sum c_i = g(sum r_i)`` with ``g(x) = x/(1-x)``: the curve
has a pole at ``x -> 1``, and the heavy-traffic regime the ROADMAP
targets lives exactly there.  An unguarded ``1/(1 - rho)`` is
therefore not a style nit — it is an ``inf``/``nan`` factory that
corrupts whole experiment sweeps.

``GW201``  division whose denominator contains ``1 - x`` (directly,
           through a local alias like ``u = 1.0 - load``, or raised
           to a power) with no *dominating guard* on ``x`` along the
           path from function entry to the division;
``GW202``  ``log``/``sqrt`` of an expression containing a subtraction
           (possibly negative near saturation) with no dominating
           guard and no ``abs``/``clip``/``maximum`` wrapper.

A *dominating guard* is, approximately (source order stands in for
true dominance):

* an earlier ``if`` mentioning a dependency of the denominator whose
  body terminates (``if rho >= 1.0: return math.inf``);
* an enclosing ``if``/ternary/``while``/comprehension-``if`` whose
  condition mentions a dependency (``x/(1-x) if x < 1.0 else inf``);
* an ``assert`` mentioning a dependency; or
* an earlier call whose name matches the guard idiom
  (``require_domain``, ``admits``, ``assert_feasible``,
  ``validate...``, ``check...``) taking a dependency as argument.

Dependencies follow local assignments one level deep, so a guard on
``total`` covers a division by ``1 - rho`` after
``rho = total / service_rate``.  Both rules apply only to ``repro``
modules.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.staticcheck.core import FileContext, Finding, Rule, register_rule

#: Callee-name pattern recognized as a feasibility/domain guard.
GUARD_CALL_RE = re.compile(
    r"(require|validate|assert|admits|feasib|stable|check|clip)",
    re.IGNORECASE)

#: Wrappers that make a possibly-negative argument safe for log/sqrt.
SAFE_WRAPPERS = frozenset({"abs", "fabs", "maximum", "clip", "hypot"})

_LOG_SQRT = frozenset({"log", "log2", "log10", "sqrt"})


def _names_in(node: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
    return out


def _scope_statements(scope: ast.AST) -> Iterator[ast.stmt]:
    """Statements of ``scope`` in source order, skipping nested defs."""
    stack: List[ast.stmt] = list(reversed(
        scope.body if hasattr(scope, "body") else []))
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield stmt
        children = [child for child in ast.iter_child_nodes(stmt)
                    if isinstance(child, ast.stmt)]
        stack.extend(reversed(children))


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _parent_map(scope: ast.AST) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(scope):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _terminates(body: List[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


class _GuardIndex:
    """Guards of one scope, queryable by (line, dependency names)."""

    def __init__(self, scope: ast.AST) -> None:
        #: (effective line, names the guard constrains)
        self.guards: List[Tuple[int, Set[str]]] = []
        #: name -> names appearing in its most recent assignment
        self.deps: Dict[str, Set[str]] = {}
        #: name -> subtrahend names when bound to a ``1 - x`` expr
        self.pole_aliases: Dict[str, Set[str]] = {}
        self._parents = _parent_map(scope)
        for stmt in _scope_statements(scope):
            self._index_statement(stmt)

    def _index_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            names = _names_in(stmt.value)
            subtrahend = _pole_subtrahend(stmt.value)
            if isinstance(stmt.value, ast.Compare):
                # ``stable = loads < 1.0``: binding a comparison is the
                # vectorized guard idiom (the mask selects the safe
                # elements downstream), so it dominates later uses.
                self.guards.append((stmt.lineno, names))
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.deps[target.id] = names
                    if subtrahend is not None:
                        self.pole_aliases[target.id] = subtrahend
        elif isinstance(stmt, ast.If):
            if _terminates(stmt.body):
                self.guards.append((stmt.body[-1].lineno,
                                    _names_in(stmt.test)))
        elif isinstance(stmt, ast.Assert):
            self.guards.append((stmt.lineno, _names_in(stmt.test)))
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                callee = _callee_name(node)
                if callee and GUARD_CALL_RE.search(callee):
                    arg_names: Set[str] = set()
                    for arg in list(node.args) + \
                            [kw.value for kw in node.keywords]:
                        arg_names |= _names_in(arg)
                    if arg_names:
                        self.guards.append((node.lineno, arg_names))

    def expand_deps(self, names: Set[str]) -> Set[str]:
        """Names plus what they were assigned from (two levels)."""
        out = set(names)
        for _ in range(2):
            extra: Set[str] = set()
            for name in out:
                extra |= self.deps.get(name, set())
            if extra <= out:
                break
            out |= extra
        return out

    def is_guarded(self, node: ast.AST, dep_names: Set[str]) -> bool:
        deps = self.expand_deps(dep_names)
        # 1. an earlier terminating guard / assert / guard call
        for line, guard_names in self.guards:
            if node.lineno > line and guard_names & deps:
                return True
        # 2. an enclosing conditional mentioning a dependency
        current: Optional[ast.AST] = node
        while current is not None:
            parent = self._parents.get(id(current))
            if isinstance(parent, (ast.If, ast.While)) \
                    and _names_in(parent.test) & deps:
                return True
            if isinstance(parent, ast.IfExp) \
                    and _names_in(parent.test) & deps:
                return True
            if isinstance(parent, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for generator in parent.generators:
                    for cond in generator.ifs:
                        if _names_in(cond) & deps:
                            return True
            current = parent
        return False


def _callee_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _pole_subtrahend(node: ast.expr) -> Optional[Set[str]]:
    """Names of ``x`` when ``node`` contains ``1 - x``; else ``None``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Sub) \
                and isinstance(sub.left, ast.Constant) \
                and sub.left.value in (1, 1.0):
            names = _names_in(sub.right)
            if names:
                return names
    return None


@register_rule
class UnguardedPoleDivisionRule(Rule):
    """Flag division by ``1 - x`` with no dominating guard (GW201)."""

    rule_id = "GW201"
    name = "unguarded-pole-division"
    description = ("division by a `1 - x` denominator needs a "
                   "dominating feasibility guard (x < 1 check, "
                   "assert, or require_domain/admits call) on every "
                   "path to it")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or ctx.module is None \
                or not ctx.module.startswith("repro"):
            return
        for scope in _scopes(ctx.tree):
            index = _GuardIndex(scope)
            for node in self._scope_walk(scope):
                if not (isinstance(node, ast.BinOp)
                        and isinstance(node.op, (ast.Div, ast.FloorDiv,
                                                 ast.Mod))):
                    continue
                dep_names = self._pole_denominator(node.right, index)
                if dep_names is None:
                    continue
                if index.is_guarded(node, dep_names):
                    continue
                pretty = ", ".join(sorted(dep_names)) or "?"
                yield self.finding(
                    ctx, node,
                    f"division by `1 - x` (x depends on: {pretty}) "
                    f"with no dominating feasibility guard; check "
                    f"the load against capacity first (cf. "
                    f"g(x)=x/(1-x) diverging at x->1)")

    @staticmethod
    def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
        """Every node of ``scope`` exactly once, skipping nested defs."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _pole_denominator(denominator: ast.expr,
                          index: _GuardIndex) -> Optional[Set[str]]:
        subtrahend = _pole_subtrahend(denominator)
        if subtrahend is not None:
            return subtrahend
        for sub in ast.walk(denominator):
            if isinstance(sub, ast.Name) and \
                    sub.id in index.pole_aliases:
                return index.pole_aliases[sub.id] | {sub.id}
        return None


@register_rule
class UnguardedDomainCallRule(Rule):
    """Flag log/sqrt of possibly-negative expressions (GW202)."""

    rule_id = "GW202"
    name = "unguarded-domain-call"
    description = ("log/sqrt of an expression containing a "
                   "subtraction needs a dominating nonnegativity "
                   "guard or an abs/clip/maximum wrapper")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or ctx.module is None \
                or not ctx.module.startswith("repro"):
            return
        for scope in _scopes(ctx.tree):
            index = _GuardIndex(scope)
            for node in UnguardedPoleDivisionRule._scope_walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                fn = self._log_sqrt_callee(node)
                if fn is None or not node.args:
                    continue
                argument = node.args[0]
                risky = self._risky_names(argument, index)
                if risky is None:
                    continue
                if index.is_guarded(node, risky):
                    continue
                pretty = ", ".join(sorted(risky)) or "?"
                yield self.finding(
                    ctx, node,
                    f"{fn}() of a subtraction (depends on: {pretty}) "
                    f"may go negative near saturation; guard the "
                    f"sign, or wrap in abs/clip if that is the "
                    f"intended semantics")

    @staticmethod
    def _log_sqrt_callee(call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _LOG_SQRT \
                and isinstance(func.value, ast.Name) \
                and func.value.id in ("math", "np", "numpy"):
            return f"{func.value.id}.{func.attr}"
        return None

    def _risky_names(self, argument: ast.expr,
                     index: _GuardIndex) -> Optional[Set[str]]:
        for sub in ast.walk(argument):
            if isinstance(sub, ast.Call):
                callee = _callee_name(sub)
                if callee in SAFE_WRAPPERS:
                    return None
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Sub):
                names = _names_in(sub)
                if names:
                    return names
        for name in _names_in(argument):
            if name in index.pole_aliases:
                return index.pole_aliases[name] | {name}
        return None
