"""Built-in rules; importing this module registers all of them."""

from repro.staticcheck.rules.layers import LayerDAGRule
from repro.staticcheck.rules.contracts import DisciplineContractRule
from repro.staticcheck.rules.rng import RNGDisciplineRule
from repro.staticcheck.rules.floats import FloatEqualityRule
from repro.staticcheck.rules.hygiene import HygieneRule
from repro.staticcheck.rules.perf import (
    ArrayGrowthRule,
    DevectorizedLoopRule,
    FixedHorizonSimulateRule,
    LoopInvariantCallRule,
    QuadraticMembershipRule,
    ScalarCandidateScanRule,
)
from repro.staticcheck.rules.numerical import (
    UnguardedDomainCallRule,
    UnguardedPoleDivisionRule,
)
from repro.staticcheck.rules.wholeprogram import (
    DeadPublicAPIRule,
    StatefulDisciplineRule,
)
from repro.staticcheck.rules.state import (
    CacheKeyCompletenessRule,
    EngineStatePicklingRule,
    SnapshotCoverageRule,
)
from repro.staticcheck.rules.determinism import (
    OrderedAggregationRule,
    VariateContractRule,
)
from repro.staticcheck.rules.parallel import (
    BlockingEventLoopRule,
    UnpicklableWorkerRule,
    WorkerSharedStateRule,
)

__all__ = [
    "LayerDAGRule",
    "DisciplineContractRule",
    "RNGDisciplineRule",
    "FloatEqualityRule",
    "HygieneRule",
    "DevectorizedLoopRule",
    "LoopInvariantCallRule",
    "QuadraticMembershipRule",
    "ArrayGrowthRule",
    "ScalarCandidateScanRule",
    "FixedHorizonSimulateRule",
    "UnguardedPoleDivisionRule",
    "UnguardedDomainCallRule",
    "DeadPublicAPIRule",
    "StatefulDisciplineRule",
    "SnapshotCoverageRule",
    "EngineStatePicklingRule",
    "CacheKeyCompletenessRule",
    "VariateContractRule",
    "OrderedAggregationRule",
    "WorkerSharedStateRule",
    "UnpicklableWorkerRule",
    "BlockingEventLoopRule",
]
