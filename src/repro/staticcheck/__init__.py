"""`greedwork check`: the repo-native static-analysis suite.

The paper's guarantees (efficiency, uniqueness, protection) hold only
when the allocation function obeys structural contracts; analogously,
the reproduction's guarantees (reproducible experiments, a layered
architecture, a uniform discipline interface, numerical safety near
the ``g(x) = x/(1-x)`` pole) hold only when the *code* obeys contracts
that ordinary linters do not know about.  This package enforces them
mechanically, with per-file rules plus whole-program rules that see
the full :class:`~repro.staticcheck.project.ProjectContext` (symbol
table, import graph, approximate call graph):

``GW001``  layer-DAG enforcement — imports must flow down the
           architecture (`numerics/queueing` → `costsharing/
           disciplines/users` → `game/sim/network` →
           `analysis/experiments` → `cli`).
``GW002``  discipline-contract conformance — everything registered in
           ``repro.disciplines.registry`` must statically implement
           the :class:`~repro.disciplines.base.AllocationFunction`
           surface and be constructible by its registered factory.
``GW003``  RNG discipline — no stdlib ``random``, no legacy
           ``np.random.*`` global state, no raw
           ``np.random.default_rng``; randomness enters through
           ``Generator`` parameters or :func:`repro.numerics.default_rng`.
``GW004``  float equality — ``==``/``!=`` against float expressions
           must go through :mod:`repro.numerics.tolerances`.
``GW005``  hygiene — mutable default arguments and shadowed builtins.
``GW101``  no Python-level loops over numpy arrays in repro modules.
``GW102``  no loop-invariant pure calls recomputed per iteration.
``GW103``  no list-membership tests inside loops (quadratic).
``GW104``  no ``np.append`` / loop-carried array concatenation.
``GW201``  division by ``1 - x`` requires a dominating feasibility
           guard on every path (the M/M/1 pole at ``x -> 1``).
``GW202``  ``log``/``sqrt`` of possibly-negative subtractions require
           a guard or an explicit ``abs``/``clip`` wrapper.
``GW301``  public functions/classes must be referenced by some other
           module, test, or experiment (whole-program).
``GW302``  registered disciplines must keep their allocation methods
           pure — no writes to module-level state (whole-program).

Findings are suppressible per line with ``# greedwork: ignore[GW00x]``
(comma-separate several ids; a bare ``ignore`` or ``ignore[*]``
silences every rule for that line; a comment-only pragma covers the
next statement line).  Runs are incremental (content-hash cache under
``.greedwork_cache/``), parallelizable (``--jobs``), baseline-aware
(``--baseline``/``--update-baseline``), and exportable as SARIF 2.1.0
for GitHub code scanning (``--format sarif``).  Run it as
``greedwork check`` or programmatically via :func:`run_checks`.

The suite is not detect-only: ``greedwork fix`` (programmatically
:func:`run_fix`) applies registered autofixers for the mechanical
families — GW003 raw-RNG construction, GW004 float equality, GW005
mutable defaults, GW106 fixed-horizon ``simulate()``, GW301 dead
public API — through a transactional engine that re-runs the full
rule suite on every patched file and rolls back any fix that fails
to eliminate its finding or introduces a new one (see
:mod:`repro.staticcheck.fixers`).  Suppressed findings are never
auto-fixed; baselined ones are, and their entries are pruned from
the baseline on success.
"""

from repro.staticcheck.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.staticcheck.cache import (
    CACHE_DIR_NAME,
    CheckCache,
    engine_signature,
    file_digest,
)
from repro.staticcheck.core import (
    CheckResult,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    register_rule,
    select_rules,
)
from repro.staticcheck.project import ModuleInfo, ProjectContext, Symbol
from repro.staticcheck.reporters import (
    render_fix_text,
    render_json,
    render_sarif,
    render_stats,
    render_text,
)
from repro.staticcheck.runner import (
    CheckUsageError,
    collect_files,
    run_checks,
)
from repro.staticcheck.baseline import prune_baseline
from repro.staticcheck.fixers import (
    AppliedFix,
    Edit,
    Fix,
    Fixer,
    FixResult,
    all_fixers,
    fixable_rule_ids,
    fixer_for,
    register_fixer,
    run_fix,
)

__all__ = [
    "AppliedFix",
    "CACHE_DIR_NAME",
    "CheckCache",
    "CheckResult",
    "CheckUsageError",
    "DEFAULT_BASELINE_NAME",
    "Edit",
    "Fix",
    "FixResult",
    "Fixer",
    "FileContext",
    "Finding",
    "ModuleInfo",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "Symbol",
    "all_fixers",
    "all_rules",
    "apply_baseline",
    "collect_files",
    "engine_signature",
    "file_digest",
    "fixable_rule_ids",
    "fixer_for",
    "get_rule",
    "load_baseline",
    "prune_baseline",
    "register_fixer",
    "register_rule",
    "render_fix_text",
    "render_json",
    "render_sarif",
    "render_stats",
    "render_text",
    "run_checks",
    "run_fix",
    "select_rules",
    "write_baseline",
]
