"""`greedwork check`: the repo-native static-analysis suite.

The paper's guarantees (efficiency, uniqueness, protection) hold only
when the allocation function obeys structural contracts; analogously,
the reproduction's guarantees (reproducible experiments, a layered
architecture, a uniform discipline interface) hold only when the *code*
obeys contracts that ordinary linters do not know about.  This package
enforces them mechanically:

``GW001``  layer-DAG enforcement — imports must flow down the
           architecture (`numerics/queueing` → `costsharing/
           disciplines/users` → `game/sim/network` →
           `analysis/experiments` → `cli`).
``GW002``  discipline-contract conformance — everything registered in
           ``repro.disciplines.registry`` must statically implement
           the :class:`~repro.disciplines.base.AllocationFunction`
           surface and be constructible by its registered factory.
``GW003``  RNG discipline — no stdlib ``random``, no legacy
           ``np.random.*`` global state, no raw
           ``np.random.default_rng``; randomness enters through
           ``Generator`` parameters or :func:`repro.numerics.default_rng`.
``GW004``  float equality — ``==``/``!=`` against float expressions
           must go through :mod:`repro.numerics.tolerances`.
``GW005``  hygiene — mutable default arguments and shadowed builtins.

Findings are suppressible per line with ``# greedwork: ignore[GW00x]``
(comma-separate several ids; a bare ``ignore`` or ``ignore[*]``
silences every rule for that line).  Run it as ``greedwork check`` or
programmatically via :func:`run_checks`.
"""

from repro.staticcheck.core import (
    CheckResult,
    FileContext,
    Finding,
    Rule,
    all_rules,
    get_rule,
    register_rule,
)
from repro.staticcheck.reporters import render_json, render_text
from repro.staticcheck.runner import collect_files, run_checks

__all__ = [
    "CheckResult",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "get_rule",
    "register_rule",
    "render_json",
    "render_text",
    "collect_files",
    "run_checks",
]
