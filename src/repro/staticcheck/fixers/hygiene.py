"""GW005 autofix — mutable default arguments.

The canonical repair: the default becomes ``None`` and the function
constructs a fresh container per call::

    def f(history=[]):        →    def f(history=None):
        ...                             if history is None:
                                            history = []
                                        ...

Only the unambiguous shape is rewritten: a plain (unannotated)
parameter of a ``def`` whose default is a mutable literal or a
zero-argument constructor call.  Annotated parameters are declined
(the annotation would need an ``Optional[...]`` rewrite), as are
lambdas (no body to hold the guard) and comprehension defaults (their
free variables may mean something different inside the function).

Shadowed-builtin findings are declined entirely: renaming a binding is
a scope-analysis problem, not a span rewrite, and a wrong rename is a
silent behavior change — exactly what the verification loop exists to
prevent, so we do not gamble against it.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.staticcheck.core import FileContext, Finding
from repro.staticcheck.fixers.model import (
    Edit,
    Fix,
    Fixer,
    line_starts,
    node_span,
    offset_of,
    register_fixer,
)

_SAFE_CONSTRUCTORS = frozenset({"list", "dict", "set"})


@register_fixer
class MutableDefaultFixer(Fixer):
    """Rewrite mutable defaults to the None-plus-guard idiom."""

    rule_id = "GW005"
    name = "mutable-default"
    description = ("replace a mutable default argument with None and "
                   "a construct-per-call guard in the body")
    example = """\
        def record(value, history=[]):
            history.append(value)
            return history
    """

    def fix(self, ctx: FileContext, finding: Finding,
            project: Optional[object] = None) -> Optional[Fix]:
        if "mutable default argument" not in finding.message:
            return None                 # shadowed builtins: human work
        located = _owner_of_default(ctx.tree, finding.line,
                                    finding.col - 1)
        if located is None:
            return None
        func, param, default = located
        if param.annotation is not None:
            return None                 # would need Optional[...] too
        if not _safe_default(default):
            return None
        starts = line_starts(ctx.source)
        body = func.body
        insert_at = 1 if _is_docstring(body[0]) else 0
        if len(body) <= insert_at:
            return None
        anchor = body[insert_at]
        if anchor.lineno <= func.lineno:
            return None                 # one-line def: no body lines
        default_src = ctx.source[slice(*node_span(ctx.source, starts,
                                                  default))]
        indent = " " * anchor.col_offset
        guard = (f"if {param.arg} is None:\n"
                 f"{indent}    {param.arg} = {default_src}\n{indent}")
        insert = offset_of(ctx.source, starts, anchor.lineno,
                           anchor.col_offset)
        start, end = node_span(ctx.source, starts, default)
        return Fix(rule_id=self.rule_id, finding=finding,
                   description=f"default {param.arg}=None with a "
                               f"construct-per-call guard",
                   edits=[Edit(start, end, "None"),
                          Edit(insert, insert, guard)])


def _safe_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _SAFE_CONSTRUCTORS
            and not node.args and not node.keywords)


def _is_docstring(stmt: ast.stmt) -> bool:
    return isinstance(stmt, ast.Expr) \
        and isinstance(stmt.value, ast.Constant) \
        and isinstance(stmt.value.value, str)


def _owner_of_default(tree: ast.Module, line: int, col: int):
    """(function, parameter, default-node) owning the flagged default."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
            continue
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        owners = positional[len(positional) - len(args.defaults):]
        pairs = list(zip(owners, args.defaults)) + [
            (arg, default) for arg, default
            in zip(args.kwonlyargs, args.kw_defaults)
            if default is not None]
        for param, default in pairs:
            if default.lineno == line and default.col_offset == col:
                return node, param, default
    return None
