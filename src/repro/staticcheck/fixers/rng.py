"""GW003 autofix — raw ``np.random.default_rng`` construction.

The only GW003 shape with a mechanically safe rewrite is the raw
``default_rng`` construction: the call's *arguments* are already a
valid seed for :func:`repro.numerics.rng.default_rng`, so routing the
construction through the sanctioned helper preserves behavior exactly
(the helper is a pass-through around ``np.random.default_rng`` plus
the documented ``None``-seed policy).  Two spellings are handled:

* dotted calls (``np.random.default_rng(s)``, ``numpy.random.
  default_rng(s)``, aliased modules) — the callee expression is
  replaced by ``default_rng`` and the sanctioned import added;
* bare calls under ``from numpy.random import default_rng`` — the
  *import* is retargeted at ``repro.numerics.rng``, repairing every
  call site in the file at once.

Legacy global-state calls (``np.random.seed``/``uniform``/...) and
stdlib ``random`` imports have no safe rewrite — they need a
``Generator`` threaded through the caller — so the fixer declines
those findings and they stay human work.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.staticcheck.core import FileContext, Finding
from repro.staticcheck.fixers.model import (
    Edit,
    Fix,
    Fixer,
    line_starts,
    module_binds_name,
    node_span,
    register_fixer,
)

#: The sanctioned construction helper the rewrite routes through.
SANCTIONED_MODULE = "repro.numerics.rng"
SANCTIONED_NAME = "default_rng"


@register_fixer
class RawDefaultRNGFixer(Fixer):
    """Route raw default_rng construction through repro.numerics.rng."""

    rule_id = "GW003"
    name = "raw-default-rng"
    description = ("rewrite np.random.default_rng(...) to the "
                   "sanctioned repro.numerics.rng.default_rng(...)")
    example = """\
        import numpy as np


        def sample(seed):
            rng = np.random.default_rng(seed)
            return rng.uniform()
    """

    def fix(self, ctx: FileContext, finding: Finding,
            project: Optional[object] = None) -> Optional[Fix]:
        if "raw np.random.default_rng" not in finding.message:
            return None                 # legacy/stdlib shapes: no rewrite
        call = _call_at(ctx.tree, finding.line, finding.col - 1)
        if call is None:
            return None
        starts = line_starts(ctx.source)
        bound = module_binds_name(ctx.tree, SANCTIONED_NAME)
        if isinstance(call.func, ast.Name):
            # Bare call: retarget the `from numpy.random import
            # default_rng` binding at the sanctioned module.
            import_edit = _retarget_import(ctx, starts, call.func.id)
            if import_edit is None:
                return None
            edits = [import_edit]
            imports = []
        else:
            if bound not in (None, f"{SANCTIONED_MODULE}:"
                                   f"{SANCTIONED_NAME}"):
                return None             # name taken by something else
            start, end = node_span(ctx.source, starts, call.func)
            edits = [Edit(start, end, SANCTIONED_NAME)]
            imports = [(SANCTIONED_MODULE, SANCTIONED_NAME)]
        return Fix(rule_id=self.rule_id, finding=finding,
                   description=("route default_rng construction "
                                "through repro.numerics.rng"),
                   edits=edits, imports=imports)


def _call_at(tree: ast.Module, line: int,
             col: int) -> Optional[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and node.lineno == line \
                and node.col_offset == col:
            return node
    return None


def _retarget_import(ctx: FileContext, starts, bound_name: str
                     ) -> Optional[Edit]:
    """Edit turning ``from numpy.random import X`` into the sanctioned
    import, or ``None`` when the import is shared or aliased oddly."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ImportFrom) \
                or node.module != "numpy.random":
            continue
        for alias in node.names:
            if (alias.asname or alias.name) != bound_name:
                continue
            if alias.name != "default_rng" or len(node.names) != 1:
                return None             # shared import line: too risky
            start, end = node_span(ctx.source, starts, node)
            asname = f" as {alias.asname}" if alias.asname else ""
            return Edit(start, end,
                        f"from {SANCTIONED_MODULE} import "
                        f"default_rng{asname}")
    return None
