"""Transactional, self-verifying application of registered fixers.

The engine never trusts a fixer.  Each round it re-checks the (in
memory) tree, asks the registered fixer of each finding for a
:class:`~repro.staticcheck.fixers.model.Fix`, and applies **at most
one fix per file per round**, so every span is computed against the
exact text it is applied to — no cross-fix offset bookkeeping, no
stale coordinates.  Every accepted fix then survives two verification
gates or is undone:

1. **Per-fix (file rules)** — the patched file must re-parse, the
   fix's own finding count must strictly drop, and no fingerprint of
   *any* file rule may increase (a suppression pragma detached from
   its statement shows up here too, as a newly active finding).
2. **Round-end (whole program)** — the next round's full check,
   project rules included, is compared fingerprint-by-fingerprint
   against the round that decided the fixes.  Any fingerprint that
   rose rolls back the implicated file (or, for cross-file effects,
   every file patched that round); a project-scoped fix whose finding
   failed to disappear is likewise rolled back.

Fixes whose edits overlap another candidate's in the same file are
*skipped* and reported — conflicting rewrites are never merged, and a
skip is terminal for the run (review the survivors, then run ``repro
fix`` again).  Rolled-back and skipped findings are remembered by
fingerprint so a bad fixer cannot loop.

The run converges when a round produces no applicable fix, which is
exactly the idempotence guarantee: running ``repro fix`` again on the
result starts at that same fixed point and rewrites nothing.  Only
then does anything touch disk — changed files are written atomically
(temp file + rename), their incremental-cache entries and the
project digest are invalidated, and baseline entries whose findings
no longer exist are pruned.  ``dry_run`` stops short of all three and
just reports the diffs.
"""

from __future__ import annotations

import difflib
import os
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.staticcheck.baseline import (
    apply_baseline,
    load_baseline,
    prune_baseline,
)
from repro.staticcheck.cache import (
    CACHE_DIR_NAME,
    CheckCache,
    engine_signature,
    file_digest,
)
from repro.staticcheck.core import (
    CheckResult,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    all_rules,
)
from repro.staticcheck.fixers.model import (
    Fix,
    Fixer,
    all_fixers,
    apply_edits,
    insert_imports,
)
from repro.staticcheck.project import REFERENCE_ROOTS, ProjectContext
from repro.staticcheck.runner import (
    _read_error_finding,
    _run_file_rules,
    collect_files,
    reference_sources,
)

#: Terminal statuses of one attempted fix.
FIXED = "fixed"
SKIPPED_CONFLICT = "skipped-conflict"
ROLLED_BACK = "rolled-back"

#: Hard ceiling on fix rounds; each round applies at most one fix per
#: file, so this bounds per-file fixes, not total files fixed.
DEFAULT_MAX_ROUNDS = 50


@dataclass
class AppliedFix:
    """The terminal outcome of one finding's fix attempt."""

    path: str
    rule_id: str
    line: int
    col: int
    description: str
    fingerprint: str
    status: str
    detail: str = ""

    def render(self) -> str:
        """GCC-style ``path:line:col: RULE [status] description``."""
        note = f": {self.detail}" if self.detail else ""
        return (f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
                f"[{self.status}] {self.description}{note}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (the ``--format json`` fix records)."""
        return {"rule": self.rule_id, "path": self.path,
                "line": self.line, "col": self.col,
                "description": self.description, "status": self.status,
                "detail": self.detail}


@dataclass
class FixResult:
    """Outcome of one :func:`run_fix` invocation."""

    fixed: List[AppliedFix] = field(default_factory=list)
    skipped: List[AppliedFix] = field(default_factory=list)
    rolled_back: List[AppliedFix] = field(default_factory=list)
    #: display path -> unified diff, original content vs final.
    diffs: Dict[str, str] = field(default_factory=dict)
    #: Full post-fix check of the tree (baseline applied when given).
    check: CheckResult = field(default_factory=CheckResult)
    files_changed: List[str] = field(default_factory=list)
    rounds: int = 0
    dry_run: bool = False
    duration_s: float = 0.0

    @property
    def changed(self) -> bool:
        return bool(self.files_changed)


def run_fix(paths: Sequence[Union[str, Path]],
            rules: Optional[Sequence[Rule]] = None,
            project_root: Optional[Union[str, Path]] = None,
            *,
            fixers: Optional[Sequence[Fixer]] = None,
            dry_run: bool = False,
            cache: bool = False,
            cache_dir: Optional[Union[str, Path]] = None,
            baseline: Optional[Union[str, Path]] = None,
            reference_roots: Sequence[str] = REFERENCE_ROOTS,
            max_rounds: int = DEFAULT_MAX_ROUNDS,
            ) -> FixResult:
    """Fix every finding with a registered fixer under ``paths``.

    ``rules`` narrows which findings are *eligible* (``--select`` /
    ``--ignore`` flow through here); ``fixers`` overrides the fixer
    registry (tests inject stubs).  The engine always checks without
    the baseline — baselined findings are exactly the debt worth
    draining — but applies ``baseline`` to the final
    :attr:`FixResult.check` and prunes entries whose findings were
    eliminated.  With ``cache`` set, patched files' incremental-cache
    entries and the project digest are invalidated on write.
    """
    started = time.perf_counter()
    run = _FixRun(paths, rules=rules, project_root=project_root,
                  fixers=fixers, reference_roots=reference_roots,
                  max_rounds=max_rounds)
    result = run.execute()
    result.dry_run = dry_run
    if baseline is not None:
        baseline_path = Path(baseline)
        if baseline_path.is_file():
            accepted = load_baseline(baseline_path)
            result.check.findings, result.check.baselined = \
                apply_baseline(result.check.findings, accepted)
            result.check.baselined.sort(key=lambda f: f.sort_key())
            if not dry_run and result.changed:
                prune_baseline(baseline_path, run.final_findings)
    if not dry_run and result.changed:
        run.write_changes()
        if cache:
            _invalidate_cache(run, cache_dir, result.files_changed)
    result.duration_s = time.perf_counter() - started
    return result


def _invalidate_cache(run: "_FixRun",
                      cache_dir: Optional[Union[str, Path]],
                      changed: Sequence[str]) -> None:
    signature = engine_signature(
        [r.rule_id for r in run.file_rules])
    directory = Path(cache_dir) if cache_dir is not None \
        else run.root / CACHE_DIR_NAME
    check_cache = CheckCache(directory, signature)
    for display_path in changed:
        check_cache.invalidate_file(display_path)
    check_cache.invalidate_project()
    check_cache.save()


class _FixRun:
    """Mutable state of one fix run over an in-memory tree."""

    def __init__(self, paths: Sequence[Union[str, Path]],
                 rules: Optional[Sequence[Rule]],
                 project_root: Optional[Union[str, Path]],
                 fixers: Optional[Sequence[Fixer]],
                 reference_roots: Sequence[str],
                 max_rounds: int) -> None:
        active = list(rules) if rules is not None else all_rules()
        self.file_rules = [r for r in active
                           if not isinstance(r, ProjectRule)]
        self.project_rules = [r for r in active
                              if isinstance(r, ProjectRule)]
        chosen = list(fixers) if fixers is not None else all_fixers()
        self.fixers: Dict[str, Fixer] = {f.rule_id: f for f in chosen}
        self.root = Path(project_root) if project_root is not None \
            else Path.cwd()
        self.max_rounds = max_rounds

        self.files: List[Path] = []
        self.contents: Dict[Path, str] = {}
        self.originals: Dict[Path, str] = {}
        self.by_display: Dict[str, Path] = {}
        self.read_errors: List[Finding] = []
        for path in collect_files(paths):
            self.files.append(path)
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                self.read_errors.append(
                    _read_error_finding(path, self.root, exc))
                continue
            self.contents[path] = source
            self.originals[path] = source

        self.reference_ctxs: List[FileContext] = []
        if self.project_rules:
            analyzed = {p.resolve() for p in self.contents}
            for path, source in reference_sources(
                    self.root, reference_roots, analyzed).items():
                self.reference_ctxs.append(
                    FileContext(path, source, project_root=self.root))

        #: fingerprint -> conflict skip (terminal for the whole run).
        self._conflicts: Dict[str, AppliedFix] = {}
        #: (fingerprint, content digest) -> rollback.  Keyed by the
        #: content the fix was computed against, so a rollback is
        #: retried once some *other* fix changes the file (the failure
        #: may have been an interaction, not the fix itself) but never
        #: re-attempted against identical text.
        self._blocked: Dict[Tuple[str, str], AppliedFix] = {}
        self.fixed: List[AppliedFix] = []
        self.skipped: List[AppliedFix] = []
        self.rolled_back: List[AppliedFix] = []
        #: Fixes applied in the current round, awaiting the round-end
        #: whole-program verification: (record, content-before).
        self._pending: List[Tuple[AppliedFix, str]] = []
        self._last_counter: Counter = Counter()
        self.rounds = 0
        self.final_findings: List[Finding] = []
        self._final_suppressed: List[Finding] = []
        self._ctx_memo: Dict[Tuple[str, str], FileContext] = {}
        self._finding_memo: Dict[
            Tuple[str, str], Tuple[List[Finding], List[Finding]]] = {}

    # -- the fixed-point loop -----------------------------------------------

    def execute(self) -> FixResult:
        while True:
            findings, suppressed, ctxs, project = self._check()
            counter = Counter(f.fingerprint() for f in findings)
            if self._pending:
                bad = self._regressed_paths(counter)
                if bad:
                    self._roll_back(bad)
                    continue            # re-check the reverted tree
                for record, _ in self._pending:
                    self.fixed.append(record)
                self._pending = []
            self.final_findings = findings
            self._final_suppressed = suppressed
            if self.rounds >= self.max_rounds:
                break
            if not self._apply_round(findings, ctxs, project, counter):
                break                   # fixed point: nothing applicable
            self.rounds += 1
        return self._result()

    def _result(self) -> FixResult:
        # A rollback later repaired on retry (after another fix changed
        # the file) is resolution noise, not an outcome: report one
        # record per fingerprint, and only for findings never fixed.
        fixed_fingerprints = {r.fingerprint for r in self.fixed}
        unresolved: Dict[str, AppliedFix] = {}
        for record in self.rolled_back:
            if record.fingerprint not in fixed_fingerprints:
                unresolved[record.fingerprint] = record
        result = FixResult(fixed=self.fixed, skipped=self.skipped,
                           rolled_back=list(unresolved.values()),
                           rounds=self.rounds)
        for record_list in (result.fixed, result.skipped,
                            result.rolled_back):
            record_list.sort(key=lambda a: (a.path, a.line, a.col,
                                            a.rule_id))
        for path in self.files:
            before = self.originals.get(path)
            after = self.contents.get(path)
            if before is None or after is None or before == after:
                continue
            display = self._display(path)
            result.files_changed.append(display)
            result.diffs[display] = "".join(difflib.unified_diff(
                before.splitlines(keepends=True),
                after.splitlines(keepends=True),
                fromfile=f"a/{display}", tofile=f"b/{display}"))
        check = CheckResult(
            findings=sorted(self.final_findings,
                            key=lambda f: f.sort_key()),
            suppressed=sorted(self._final_suppressed,
                              key=lambda f: f.sort_key()),
            files_checked=len(self.files),
            files_analyzed=len(self.contents))
        result.check = check
        return result

    def write_changes(self) -> None:
        """Atomically persist every changed file (temp + rename)."""
        for path in self.files:
            before = self.originals.get(path)
            after = self.contents.get(path)
            if before is None or after is None or before == after:
                continue
            tmp = path.with_name(path.name + ".gwfix.tmp")
            tmp.write_text(after, encoding="utf-8")
            try:
                os.chmod(tmp, path.stat().st_mode)
            except OSError:
                pass
            os.replace(tmp, path)

    # -- checking the in-memory tree ----------------------------------------

    def _display(self, path: Path) -> str:
        ctx = self._context(path)
        return ctx.display_path if ctx is not None else str(path)

    def _context(self, path: Path) -> Optional[FileContext]:
        source = self.contents.get(path)
        if source is None:
            return None
        key = (str(path), file_digest(source))
        ctx = self._ctx_memo.get(key)
        if ctx is None:
            ctx = FileContext(path, source, project_root=self.root)
            self._ctx_memo[key] = ctx
        return ctx

    def _file_findings(self, ctx: FileContext
                       ) -> Tuple[List[Finding], List[Finding]]:
        key = (str(ctx.path), file_digest(ctx.source))
        hit = self._finding_memo.get(key)
        if hit is None:
            hit = _run_file_rules(ctx, self.file_rules)
            self._finding_memo[key] = hit
        return hit

    def _check(self) -> Tuple[List[Finding], List[Finding],
                              Dict[Path, FileContext],
                              Optional[ProjectContext]]:
        """Full check of the current contents (no baseline, no disk)."""
        findings: List[Finding] = list(self.read_errors)
        suppressed: List[Finding] = []
        ctxs: Dict[Path, FileContext] = {}
        for path in self.files:
            ctx = self._context(path)
            if ctx is None:
                continue
            ctxs[path] = ctx
            self.by_display[ctx.display_path] = path
            found, kept = self._file_findings(ctx)
            findings.extend(found)
            suppressed.extend(kept)
        project: Optional[ProjectContext] = None
        if self.project_rules:
            project = ProjectContext(list(ctxs.values()),
                                     self.reference_ctxs,
                                     project_root=self.root)
            by_path = {ctx.display_path: ctx for ctx in ctxs.values()}
            for rule in self.project_rules:
                for finding in rule.check_project(project):
                    ctx = by_path.get(finding.path)
                    if ctx is None:
                        continue        # anchored in a reference file
                    if ctx.is_suppressed(finding):
                        suppressed.append(finding)
                    else:
                        findings.append(finding)
        return findings, suppressed, ctxs, project

    # -- deciding and applying one round ------------------------------------

    def _apply_round(self, findings: List[Finding],
                     ctxs: Dict[Path, FileContext],
                     project: Optional[ProjectContext],
                     counter: Counter) -> bool:
        per_file = self._candidates(findings, ctxs, project)
        applied = False
        for display_path in sorted(per_file):
            accepted = self._drop_conflicts(per_file[display_path])
            path = self.by_display[display_path]
            for finding, fix in accepted:
                before = self.contents[path]
                patched, detail = self._verify_fix(path, ctxs[path],
                                                   finding, fix)
                if patched is None:
                    self._record_failure(finding, ROLLED_BACK,
                                         fix.description, detail,
                                         file_digest(before))
                    continue
                self.contents[path] = patched
                record = AppliedFix(
                    path=display_path, rule_id=finding.rule_id,
                    line=finding.line, col=finding.col,
                    description=fix.description,
                    fingerprint=finding.fingerprint(), status=FIXED)
                self._pending.append((record, before))
                applied = True
                break                   # one fix per file per round
        if applied:
            self._last_counter = counter
        return applied

    def _candidates(self, findings: List[Finding],
                    ctxs: Dict[Path, FileContext],
                    project: Optional[ProjectContext]
                    ) -> Dict[str, List[Tuple[Finding, Fix]]]:
        per_file: Dict[str, List[Tuple[Finding, Fix]]] = {}
        for finding in sorted(findings, key=lambda f: f.sort_key()):
            fixer = self.fixers.get(finding.rule_id)
            if fixer is None:
                continue
            path = self.by_display.get(finding.path)
            if path is None:
                continue
            ctx = ctxs.get(path)
            if ctx is None or ctx.parse_error is not None:
                continue
            fingerprint = finding.fingerprint()
            digest = file_digest(ctx.source)
            if fingerprint in self._conflicts \
                    or (fingerprint, digest) in self._blocked:
                continue
            try:
                fix = fixer.fix(
                    ctx, finding,
                    project=project if fixer.requires_project else None)
            except Exception as exc:    # a fixer bug must not kill the run
                self._record_failure(
                    finding, ROLLED_BACK, fixer.description,
                    f"fixer raised {type(exc).__name__}: {exc}",
                    digest)
                continue
            if fix is None:
                continue
            if not fix.edits or not fix.self_consistent():
                self._record_failure(finding, ROLLED_BACK,
                                     fix.description,
                                     "fix edits overlap each other",
                                     digest)
                continue
            per_file.setdefault(finding.path, []).append((finding, fix))
        return per_file

    def _drop_conflicts(self, fixes: List[Tuple[Finding, Fix]]
                        ) -> List[Tuple[Finding, Fix]]:
        accepted: List[Tuple[Finding, Fix]] = []
        for finding, fix in sorted(
                fixes, key=lambda p: (p[1].span(), p[0].rule_id)):
            if any(_fixes_conflict(fix, other)
                   for _, other in accepted):
                self._record_failure(
                    finding, SKIPPED_CONFLICT, fix.description,
                    "edits overlap another pending fix in this file",
                    digest=None)
                continue
            accepted.append((finding, fix))
        return accepted

    def _verify_fix(self, path: Path, ctx: FileContext,
                    finding: Finding, fix: Fix
                    ) -> Tuple[Optional[str], str]:
        """(patched source, "") when the fix verifies, else (None, why)."""
        try:
            patched = apply_edits(ctx.source, fix.edits)
            if fix.imports:
                patched = insert_imports(patched, fix.imports)
        except (SyntaxError, ValueError) as exc:
            return None, f"patched file does not parse: {exc}"
        if patched == ctx.source:
            return None, "fix produced no change"
        new_ctx = FileContext(path, patched, project_root=self.root)
        if new_ctx.parse_error is not None:
            return None, ("patched file does not parse: "
                          f"{new_ctx.parse_error.msg}")
        old_counts = Counter(
            f.fingerprint() for f in self._file_findings(ctx)[0])
        new_findings = self._file_findings(new_ctx)[0]
        new_counts = Counter(f.fingerprint() for f in new_findings)
        fingerprint = finding.fingerprint()
        if old_counts.get(fingerprint, 0) \
                and new_counts.get(fingerprint, 0) \
                >= old_counts[fingerprint]:
            return None, "fix did not eliminate its finding"
        for other, count in new_counts.items():
            if count > old_counts.get(other, 0):
                culprit = next(f for f in new_findings
                               if f.fingerprint() == other)
                return None, ("fix introduces a new finding: "
                              f"{culprit.render()}")
        return patched, ""

    # -- round-end whole-program verification -------------------------------

    def _regressed_paths(self, counter: Counter) -> List[str]:
        """Display paths whose pending fix must be rolled back."""
        pending_paths = {record.path for record, _ in self._pending}
        bad = set()
        for fingerprint, count in counter.items():
            if count <= self._last_counter.get(fingerprint, 0):
                continue
            path = fingerprint.split("::", 2)[1]
            if path in pending_paths:
                bad.add(path)
            else:
                # A cross-file regression (project rules can do that);
                # no fix of this round is provably innocent.
                bad |= pending_paths
        for record, _ in self._pending:
            if counter.get(record.fingerprint, 0) \
                    >= self._last_counter.get(record.fingerprint, 0):
                record.detail = "fix did not eliminate its finding"
                bad.add(record.path)
        return sorted(bad)

    def _roll_back(self, bad_paths: Sequence[str]) -> None:
        survivors: List[Tuple[AppliedFix, str]] = []
        for record, before in self._pending:
            if record.path not in bad_paths:
                survivors.append((record, before))
                continue
            self.contents[self.by_display[record.path]] = before
            record.status = ROLLED_BACK
            if not record.detail:
                record.detail = ("whole-program verification found a "
                                 "regression")
            self._blocked[(record.fingerprint,
                           file_digest(before))] = record
            self.rolled_back.append(record)
        self._pending = survivors

    def _record_failure(self, finding: Finding, status: str,
                        description: str, detail: str,
                        digest: Optional[str]) -> None:
        record = AppliedFix(
            path=finding.path, rule_id=finding.rule_id,
            line=finding.line, col=finding.col,
            description=description,
            fingerprint=finding.fingerprint(), status=status,
            detail=detail)
        if status == SKIPPED_CONFLICT:
            self._conflicts[record.fingerprint] = record
            self.skipped.append(record)
        else:
            self._blocked[(record.fingerprint, digest or "")] = record
            self.rolled_back.append(record)


def _fixes_conflict(a: Fix, b: Fix) -> bool:
    return any(ea.overlaps(eb) for ea in a.edits for eb in b.edits)
