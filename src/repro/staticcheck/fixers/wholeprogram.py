"""GW301 autofix — privatize dead public API.

The rule's verdict is whole-program ("no *other* module references
this name"), so the repair is local to the defining module: rename the
symbol ``name`` → ``_name`` at its definition, at every in-module
reference, and drop it from ``__all__`` if listed.  The engine's
verification pass re-runs the *project* rules over the patched tree,
so a rename that somehow left an external reference dangling would
surface as a new finding and be rolled back.

The rename is plain token surgery over ``Name`` nodes, so the fixer
declines whenever identifier identity is not syntactically obvious:

* the name is bound inside any function scope (a shadowing local or
  parameter would be captured by a blind rename);
* the name appears as an attribute (``obj.name``) — almost certainly
  unrelated, but not provably so without type inference;
* the name appears in a string constant outside ``__all__`` (dynamic
  ``getattr``-style dispatch);
* ``_name`` is already bound in the module.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Tuple

from repro.staticcheck.core import FileContext, Finding
from repro.staticcheck.fixers.model import (
    Edit,
    Fix,
    Fixer,
    line_starts,
    node_span,
    offset_of,
    register_fixer,
)

_NAME_RE = re.compile(r"'([^']+)'")
_DEF_RE = re.compile(r"(?:async[ \t]+def|def|class)[ \t]+(\w+)")


@register_fixer
class PrivatizeDeadAPIFixer(Fixer):
    """Rename an unreferenced public symbol to its private form."""

    rule_id = "GW301"
    name = "privatize-dead-api"
    description = ("rename a dead public function/class to '_name' at "
                   "its definition and every in-module reference")
    requires_project = True
    example = """\
        def orphan_helper(x):
            return x + 1
    """

    def fix(self, ctx: FileContext, finding: Finding,
            project: Optional[object] = None) -> Optional[Fix]:
        match = _NAME_RE.search(finding.message)
        if match is None:
            return None
        name = match.group(1)
        new_name = f"_{name}"
        tree = ctx.tree
        definition = _module_level_def(tree, name)
        if definition is None:
            return None
        if _module_binds(tree, new_name):
            return None                 # privatized name already taken
        if _bound_in_function_scope(tree, name):
            return None                 # shadowing local: rename unsafe
        if any(isinstance(node, ast.Attribute) and node.attr == name
               for node in ast.walk(tree)):
            return None                 # obj.name: not provably unrelated
        dunder_all = _dunder_all(tree)
        if _string_use_outside_all(tree, name, dunder_all):
            return None                 # dynamic dispatch by string
        if project is not None and getattr(ctx, "module", None):
            used_outside = getattr(project, "name_used_outside", None)
            if used_outside is not None \
                    and used_outside(ctx.module, name):
                return None             # stale finding: now referenced
        starts = line_starts(ctx.source)
        edits = [_def_token_edit(ctx.source, starts, definition,
                                 name, new_name)]
        if edits[0] is None:
            return None
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and node.id == name:
                edits.append(Edit(*node_span(ctx.source, starts, node),
                                  replacement=new_name))
        if dunder_all is not None:
            all_edit = _drop_from_all(ctx.source, starts, dunder_all,
                                      name)
            if all_edit is False:
                return None             # listed, but layout too fancy
            if all_edit is not None:
                edits.append(all_edit)
        return Fix(rule_id=self.rule_id, finding=finding,
                   description=f"privatize {name!r} as {new_name!r}",
                   edits=edits)


def _module_level_def(tree: ast.Module, name: str) -> Optional[ast.AST]:
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)) and node.name == name:
            return node
    return None


def _module_binds(tree: ast.Module, name: str) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)) and node.name == name:
            return True
        if isinstance(node, ast.Name) and node.id == name:
            return True
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if bound == name:
                    return True
    return False


def _bound_in_function_scope(tree: ast.Module, name: str) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            args = node.args
            params = (args.posonlyargs + args.args + args.kwonlyargs
                      + ([args.vararg] if args.vararg else [])
                      + ([args.kwarg] if args.kwarg else []))
            if any(arg.arg == name for arg in params):
                return True
            body = node.body if isinstance(node.body, list) \
                else [node.body]
            # A global declaration makes stores refer to the module
            # symbol — renamed consistently.
            is_global = _declared_global(node, name)
            for stmt in body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Name) and sub.id == name \
                            and isinstance(sub.ctx,
                                           (ast.Store, ast.Del)):
                        if not is_global:
                            return True
        elif isinstance(node, ast.comprehension):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name) and sub.id == name:
                    return True
    return False


def _declared_global(func: ast.AST, name: str) -> bool:
    return any(isinstance(sub, ast.Global) and name in sub.names
               for sub in ast.walk(func))


def _dunder_all(tree: ast.Module) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == "__all__":
            return node
    return None


def _string_use_outside_all(tree: ast.Module, name: str,
                            dunder_all: Optional[ast.Assign]) -> bool:
    exempt = set()
    if dunder_all is not None:
        exempt = {id(sub) for sub in ast.walk(dunder_all.value)}
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and node.value == name \
                and id(node) not in exempt:
            return True
    return False


def _def_token_edit(source: str, starts, definition: ast.AST,
                    name: str, new_name: str) -> Optional[Edit]:
    start = offset_of(source, starts, definition.lineno,
                      definition.col_offset)
    match = _DEF_RE.match(source, start)
    if match is None or match.group(1) != name:
        return None
    return Edit(match.start(1), match.end(1), new_name)


def _drop_from_all(source: str, starts, dunder_all: ast.Assign,
                   name: str):
    """Edit removing ``name`` from a single-line ``__all__`` literal.

    ``None`` when the name is not listed; ``False`` when it is listed
    but the literal is multi-line (decline rather than mangle layout).
    """
    value = dunder_all.value
    if not isinstance(value, (ast.List, ast.Tuple, ast.Set)):
        return None
    keep: List[Tuple[int, int]] = []
    listed = False
    for element in value.elts:
        if isinstance(element, ast.Constant) and element.value == name:
            listed = True
        else:
            keep.append(node_span(source, starts, element))
    if not listed:
        return None
    if value.lineno != value.end_lineno:
        return False
    open_ch, close_ch = {ast.List: ("[", "]"), ast.Tuple: ("(", ")"),
                         ast.Set: ("{", "}")}[type(value)]
    body = ", ".join(source[s:e] for s, e in keep)
    start, end = node_span(source, starts, value)
    return Edit(start, end, f"{open_ch}{body}{close_ch}")
