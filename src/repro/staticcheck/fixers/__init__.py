"""Autofixers: verified mechanical repairs for rule findings.

Importing this package registers every builtin fixer, mirroring how
:mod:`repro.staticcheck.rules` registers the rules.  The public
surface re-exported here is everything the CLI, reporters, and tests
need:

* the model — :class:`Edit`, :class:`Fix`, :class:`Fixer`, and the
  registry accessors (:func:`all_fixers`, :func:`fixer_for`,
  :func:`fixable_rule_ids`, :func:`register_fixer`);
* the engine — :func:`run_fix`, :class:`FixResult`,
  :class:`AppliedFix`, and the terminal status constants.

See :mod:`repro.staticcheck.fixers.engine` for the transaction and
verification semantics, and ``docs/staticcheck.md`` ("Autofix") for
how to write a fixer.
"""

from repro.staticcheck.fixers.model import (
    Edit,
    Fix,
    Fixer,
    all_fixers,
    apply_edits,
    fixable_rule_ids,
    fixer_for,
    insert_imports,
    register_fixer,
    unregister_fixer,
)

# Importing the fixer modules registers them (they self-register at
# class-definition time, exactly like the rule modules).
from repro.staticcheck.fixers import floats as _floats  # noqa: F401,E402
from repro.staticcheck.fixers import hygiene as _hygiene  # noqa: F401,E402
from repro.staticcheck.fixers import perf as _perf  # noqa: F401,E402
from repro.staticcheck.fixers import rng as _rng  # noqa: F401,E402
from repro.staticcheck.fixers import wholeprogram as _wholeprogram  # noqa: F401,E402

from repro.staticcheck.fixers.engine import (  # noqa: E402
    FIXED,
    ROLLED_BACK,
    SKIPPED_CONFLICT,
    AppliedFix,
    FixResult,
    run_fix,
)

__all__ = [
    "Edit", "Fix", "Fixer", "AppliedFix", "FixResult",
    "FIXED", "SKIPPED_CONFLICT", "ROLLED_BACK",
    "all_fixers", "apply_edits", "fixable_rule_ids", "fixer_for",
    "insert_imports", "register_fixer", "unregister_fixer", "run_fix",
]
