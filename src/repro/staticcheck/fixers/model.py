"""Span-anchored fix model and the fixer registry.

A *fix* is a pure description of a source rewrite: an ordered list of
:class:`Edit` replacements over one file's current text, plus the
``from``-imports the rewritten code needs.  Fixers never touch the
filesystem — the engine (:mod:`repro.staticcheck.fixers.engine`)
applies fixes transactionally, re-verifies the result under the full
rule suite, and rolls back anything that fails, so a fixer only has to
be *usually* right, never trusted.

Spans are character offsets into the file's source string.  AST
``col_offset`` values are UTF-8 *byte* offsets into the line, so the
helpers here (:func:`node_span`, :func:`offset_of`) do the conversion
once and fixers work purely in character coordinates.

A fixer registers against one rule id with :func:`register_fixer`,
mirroring the rule registry in :mod:`repro.staticcheck.core`; the
engine routes each finding to the fixer for its rule (if any) and a
fixer declines any individual finding by returning ``None`` from
:meth:`Fixer.fix`.  Every fixer also carries a minimal ``example``
snippet that must trigger its rule and be cleanly, idempotently fixed
— the property tests in ``tests/test_staticcheck_fix.py`` run every
registered fixer against its own example, so an unfixable example is a
test failure, not latent debt.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.staticcheck.core import FileContext, Finding


@dataclass(frozen=True)
class Edit:
    """Replace ``source[start:end]`` with ``replacement``.

    Offsets are character positions in the file's *current* text (the
    text the fixer's :class:`~repro.staticcheck.core.FileContext` was
    built from).  ``start == end`` is a pure insertion.
    """

    start: int
    end: int
    replacement: str

    def overlaps(self, other: "Edit") -> bool:
        """Whether the two spans intersect (shared insertion points
        count: two insertions at one offset have no defined order)."""
        if self.start == self.end or other.start == other.end:
            return other.start <= self.start <= other.end \
                if self.start == self.end \
                else self.start <= other.start <= self.end
        return self.start < other.end and other.start < self.end


@dataclass
class Fix:
    """One verified-appliable rewrite for one finding in one file."""

    rule_id: str
    finding: Finding
    description: str
    edits: List[Edit]
    #: ``(module, name)`` pairs to ensure are imported at module level.
    imports: List[Tuple[str, str]] = field(default_factory=list)

    def span(self) -> Tuple[int, int]:
        """Covering span of every edit (for conflict ordering)."""
        return (min(e.start for e in self.edits),
                max(e.end for e in self.edits))

    def self_consistent(self) -> bool:
        """Edits in-order appliable: pairwise non-overlapping."""
        edits = sorted(self.edits, key=lambda e: (e.start, e.end))
        return all(not a.overlaps(b) for a, b in zip(edits, edits[1:]))


class Fixer:
    """Base class for autofixers; subclasses set the class attributes."""

    #: The rule whose findings this fixer repairs.
    rule_id: str = "GW000"
    name: str = "unnamed-fixer"
    description: str = ""
    #: Whether :meth:`fix` needs the whole-program
    #: :class:`~repro.staticcheck.project.ProjectContext`.
    requires_project: bool = False
    #: Minimal source that triggers the rule and that this fixer must
    #: fix cleanly and idempotently (exercised by the property tests).
    example: str = ""
    #: Project-relative path the example should be materialized at
    #: (some rules only fire in particular packages).
    example_path: str = "src/repro/sim/fixture_mod.py"

    def fix(self, ctx: FileContext, finding: Finding,
            project: Optional[object] = None) -> Optional[Fix]:
        """A :class:`Fix` for one finding, or ``None`` to decline."""
        raise NotImplementedError


_FIXERS: Dict[str, Type[Fixer]] = {}


def register_fixer(cls: Type[Fixer]) -> Type[Fixer]:
    """Class decorator adding a fixer to the global registry."""
    if cls.rule_id in _FIXERS:
        raise ValueError(f"duplicate fixer for rule {cls.rule_id}")
    _FIXERS[cls.rule_id] = cls
    return cls


def unregister_fixer(rule_id: str) -> None:
    """Remove a fixer registration (tests install temporary fixers)."""
    _FIXERS.pop(rule_id, None)


def all_fixers() -> List[Fixer]:
    """Fresh instances of every registered fixer, ordered by rule id."""
    _load_builtin_fixers()
    return [_FIXERS[rule_id]() for rule_id in sorted(_FIXERS)]


def fixer_for(rule_id: str) -> Optional[Fixer]:
    """Instantiate the fixer registered for ``rule_id``, if any."""
    _load_builtin_fixers()
    cls = _FIXERS.get(rule_id)
    return cls() if cls is not None else None


def fixable_rule_ids() -> List[str]:
    """Rule ids for which an autofixer is registered."""
    _load_builtin_fixers()
    return sorted(_FIXERS)


def _load_builtin_fixers() -> None:
    # Imported lazily to avoid a cycle (fixer modules import this one).
    import repro.staticcheck.fixers  # noqa: F401


# -- span helpers ------------------------------------------------------------

def line_starts(source: str) -> List[int]:
    """Character offset of the start of each (1-based) line."""
    starts = [0]
    for i, ch in enumerate(source):
        if ch == "\n":
            starts.append(i + 1)
    return starts


def offset_of(source: str, starts: Sequence[int],
              lineno: int, byte_col: int) -> int:
    """Character offset of a ``(lineno, col_offset)`` AST location."""
    base = starts[lineno - 1]
    if byte_col <= 0:
        return base
    line_end = starts[lineno] - 1 if lineno < len(starts) else len(source)
    line = source[base:line_end]
    raw = line.encode("utf-8")[:byte_col]
    return base + len(raw.decode("utf-8", errors="ignore"))


def node_span(source: str, starts: Sequence[int],
              node: ast.AST) -> Tuple[int, int]:
    """``(start, end)`` character span of an AST node."""
    start = offset_of(source, starts, node.lineno, node.col_offset)
    end = offset_of(source, starts, node.end_lineno,
                    node.end_col_offset)
    return start, end


def apply_edits(source: str, edits: Sequence[Edit]) -> str:
    """Apply non-overlapping edits (validated by the caller)."""
    out = source
    for edit in sorted(edits, key=lambda e: e.start, reverse=True):
        out = out[:edit.start] + edit.replacement + out[edit.end:]
    return out


# -- import insertion --------------------------------------------------------

def module_binds_name(tree: ast.Module, name: str) -> Optional[str]:
    """Dotted origin of a module-level binding of ``name``, if any.

    Returns ``"pkg.mod:attr"`` for a from-import, ``"pkg.mod"`` for a
    module import bound to ``name``, the sentinel ``"<local>"`` for a
    def/class/assignment, and ``None`` when the name is unbound.
    """
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.module is not None:
            for alias in node.names:
                if (alias.asname or alias.name) == name:
                    return f"{node.module}:{alias.name}"
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if bound == name:
                    return alias.name
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            if node.name == name:
                return "<local>"
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return "<local>"
    return None


def _missing_imports(tree: ast.Module,
                    wanted: Sequence[Tuple[str, str]]
                    ) -> List[Tuple[str, str]]:
    """The subset of ``(module, name)`` pairs not already imported."""
    out = []
    seen = set()
    for module, name in wanted:
        if module_binds_name(tree, name) != f"{module}:{name}" \
                and (module, name) not in seen:
            seen.add((module, name))
            out.append((module, name))
    return out


def _char_col(line: str, byte_col: int) -> int:
    """Character column for a UTF-8 byte column within one line."""
    raw = line.encode("utf-8")[:byte_col]
    return len(raw.decode("utf-8", errors="ignore"))


def insert_imports(source: str,
                   wanted: Sequence[Tuple[str, str]]) -> str:
    """Ensure ``from module import name`` bindings exist in ``source``.

    Pairs already imported are skipped.  A module that already has a
    single-line ``from module import ...`` statement gets the new
    names merged into it (existing names keep their order and any
    trailing comment survives); remaining modules get fresh import
    lines after the leading import block, or after the module
    docstring when there are no imports at all.  Returns ``source``
    unchanged when nothing is missing.
    """
    tree = ast.parse(source)
    needed = _missing_imports(tree, wanted)
    if not needed:
        return source
    by_module: Dict[str, List[str]] = {}
    for module, name in needed:
        by_module.setdefault(module, [])
        if name not in by_module[module]:
            by_module[module].append(name)
    source_lines = source.splitlines(True)
    fresh: List[str] = []
    for module, names in sorted(by_module.items()):
        target = None
        for node in tree.body:
            if isinstance(node, ast.ImportFrom) \
                    and node.module == module and node.level == 0 \
                    and node.lineno == node.end_lineno \
                    and all(alias.name != "*" for alias in node.names):
                target = node
                break
        if target is None:
            fresh.append(f"from {module} import "
                         f"{', '.join(sorted(names))}")
            continue
        line = source_lines[target.lineno - 1]
        start = _char_col(line, target.col_offset)
        end = _char_col(line, target.end_col_offset)
        rendered = [alias.name if alias.asname is None
                    else f"{alias.name} as {alias.asname}"
                    for alias in target.names] + sorted(names)
        source_lines[target.lineno - 1] = (
            line[:start] + f"from {module} import "
            + ", ".join(rendered) + line[end:])
    if not fresh:
        return "".join(source_lines)
    insert_after = 0                    # line number (1-based) to follow
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            insert_after = max(insert_after, node.end_lineno)
        elif isinstance(node, ast.Expr) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str) \
                and insert_after == 0:
            insert_after = node.end_lineno      # module docstring
        else:
            break
    text = "".join(line + "\n" for line in fresh)
    if insert_after == 0:
        if source and not source.startswith("\n"):
            text += "\n"                # keep imports a distinct block
        return text + source
    head = "".join(source_lines[:insert_after])
    tail = "".join(source_lines[insert_after:])
    if not head.endswith("\n"):
        head += "\n"
    return head + text + tail
