"""GW004 autofix — exact float ``==``/``!=`` comparisons.

The sanctioned replacement is :mod:`repro.numerics.tolerances`:

* ``x == 0.0``  →  ``is_zero(x)``   (and ``!=`` → ``not is_zero(x)``)
* ``a == b``    →  ``isclose(a, b)``  (``!=`` → ``not isclose(a, b)``)

The rewrite replaces exactly the ``Compare`` node's span, so any
parentheses around the comparison survive and the expression keeps its
place in the surrounding syntax (``if``/``while`` tests, boolean
operands, ternaries, f-strings).  Chained comparisons are declined —
splitting ``a == b == c`` into conjunctions is a semantic decision a
human should review.  The negated form relies on ``not`` binding
looser than any operand expression; a rewrite that would change
parsing fails the engine's re-parse/re-check verification and is
rolled back rather than applied.
"""

from __future__ import annotations

import ast
from typing import Optional, Tuple

from repro.staticcheck.core import FileContext, Finding
from repro.staticcheck.fixers.model import (
    Edit,
    Fix,
    Fixer,
    line_starts,
    module_binds_name,
    node_span,
    register_fixer,
)

TOLERANCES_MODULE = "repro.numerics.tolerances"


def _is_zero_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) \
            and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_zero_literal(node.operand)
    return isinstance(node, ast.Constant) \
        and isinstance(node.value, float) \
        and node.value == 0.0  # greedwork: ignore[GW004] -- detecting the literal 0.0 token; exact by construction


@register_fixer
class FloatEqualityFixer(Fixer):
    """Rewrite exact float ==/!= through repro.numerics.tolerances."""

    rule_id = "GW004"
    name = "float-equality"
    description = ("rewrite float ==/!= into tolerances.isclose / "
                   "tolerances.is_zero comparisons")
    example = """\
        def settled(delta, target):
            if delta == 0.0:
                return True
            return delta != target * 2.0
    """

    def fix(self, ctx: FileContext, finding: Finding,
            project: Optional[object] = None) -> Optional[Fix]:
        located = _compare_at(ctx.tree, finding.line, finding.col - 1)
        if located is None:
            return None
        compare = located
        if len(compare.ops) != 1:
            return None                 # chained comparison: human work
        op = compare.ops[0]
        left, right = compare.left, compare.comparators[0]
        starts = line_starts(ctx.source)
        left_src = ctx.source[slice(*node_span(ctx.source, starts,
                                               left))]
        right_src = ctx.source[slice(*node_span(ctx.source, starts,
                                                right))]
        helper, call = self._rewrite(left, right, left_src, right_src)
        if helper is None:
            return None
        if module_binds_name(ctx.tree, helper) not in (
                None, f"{TOLERANCES_MODULE}:{helper}"):
            return None                 # helper name taken locally
        if isinstance(op, ast.NotEq):
            call = f"not {call}"
        start, end = node_span(ctx.source, starts, compare)
        return Fix(rule_id=self.rule_id, finding=finding,
                   description=f"rewrite exact float comparison via "
                               f"tolerances.{helper}",
                   edits=[Edit(start, end, call)],
                   imports=[(TOLERANCES_MODULE, helper)])

    @staticmethod
    def _rewrite(left: ast.expr, right: ast.expr, left_src: str,
                 right_src: str) -> Tuple[Optional[str], str]:
        if "\n" in left_src or "\n" in right_src:
            return None, ""             # multi-line operand: keep layout
        if _is_zero_literal(right):
            return "is_zero", f"is_zero({left_src})"
        if _is_zero_literal(left):
            return "is_zero", f"is_zero({right_src})"
        return "isclose", f"isclose({left_src}, {right_src})"


def _compare_at(tree: ast.Module, line: int,
                col: int) -> Optional[ast.Compare]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Compare) and node.lineno == line \
                and node.col_offset == col:
            return node
    return None
