"""GW106 autofix — fixed-horizon ``simulate()`` in experiments.

The rewrite scaffolds the adaptive-precision form::

    simulate(cfg)   →   simulate_to_precision(
                            cfg, target_halfwidth=0.05).result

``simulate_to_precision`` runs the same engine in growing horizon
chunks and stops once every per-user CI half-width meets the target,
and ``PrecisionResult.result`` is the plain ``SimulationResult`` of
the final chunk — so the rewritten call site keeps its type and only
trades a pessimistic fixed horizon for a sequential stopping rule.
The 0.05 delay-unit default is a *scaffold*: experiments with a
principled target should tighten it, and sites with no CI target at
all (divergent queues, loss fractions) should suppress GW106 with
that reason instead of taking this rewrite.

Only the unambiguous call shape is rewritten — exactly one positional
argument (the config) and no keywords.  Keyword-bearing or multi-arg
``simulate`` calls are some other API and are declined.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.staticcheck.core import FileContext, Finding
from repro.staticcheck.fixers.model import (
    Edit,
    Fix,
    Fixer,
    line_starts,
    module_binds_name,
    node_span,
    register_fixer,
)

RUNNER_MODULE = "repro.sim.runner"
PRECISION_NAME = "simulate_to_precision"

#: Scaffold CI half-width (delay units) when the experiment has not
#: chosen one; tighten per-experiment after the rewrite.
DEFAULT_SCAFFOLD_TARGET = 0.05


@register_fixer
class PrecisionScaffoldFixer(Fixer):
    """Scaffold simulate() into simulate_to_precision(...).result."""

    rule_id = "GW106"
    name = "precision-scaffold"
    description = ("rewrite fixed-horizon simulate(cfg) into a "
                   "simulate_to_precision(cfg, target_halfwidth=...) "
                   ".result scaffold")
    example = """\
        from repro.sim.runner import SimulationConfig, simulate


        def run(config: SimulationConfig):
            result = simulate(config)
            return result.mean_delays
    """
    example_path = "src/repro/experiments/fixture_exp.py"

    def fix(self, ctx: FileContext, finding: Finding,
            project: Optional[object] = None) -> Optional[Fix]:
        call = _simulate_call_at(ctx.tree, finding.line,
                                 finding.col - 1)
        if call is None:
            return None
        if len(call.args) != 1 or call.keywords \
                or isinstance(call.args[0], ast.Starred):
            return None                 # not the bare simulate(cfg) shape
        starts = line_starts(ctx.source)
        arg_src = ctx.source[slice(*node_span(ctx.source, starts,
                                              call.args[0]))]
        if "\n" in arg_src:
            return None                 # multi-line config expr: keep layout
        imports = []
        if isinstance(call.func, ast.Attribute):
            prefix_src = ctx.source[slice(*node_span(
                ctx.source, starts, call.func.value))]
            if "\n" in prefix_src:
                return None
            callee = f"{prefix_src}.{PRECISION_NAME}"
        else:
            bound = module_binds_name(ctx.tree, PRECISION_NAME)
            if bound not in (None, f"{RUNNER_MODULE}:{PRECISION_NAME}"):
                return None             # name taken by something else
            callee = PRECISION_NAME
            imports = [(RUNNER_MODULE, PRECISION_NAME)]
        replacement = (f"{callee}({arg_src}, target_halfwidth="
                       f"{DEFAULT_SCAFFOLD_TARGET}).result")
        start, end = node_span(ctx.source, starts, call)
        return Fix(rule_id=self.rule_id, finding=finding,
                   description=("scaffold simulate_to_precision with "
                                f"target_halfwidth="
                                f"{DEFAULT_SCAFFOLD_TARGET}"),
                   edits=[Edit(start, end, replacement)],
                   imports=imports)


def _simulate_call_at(tree: ast.Module, line: int,
                      col: int) -> Optional[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and node.lineno == line \
                and node.col_offset == col:
            return node
    return None
