"""Render check results as text, machine JSON, or SARIF 2.1.0.

Fix runs ride along: :func:`render_fix_text` renders a
:class:`~repro.staticcheck.fixers.engine.FixResult` (per-fix lines,
optional unified diffs, a counts summary), and :func:`render_json` /
:func:`render_sarif` accept the same object via ``fix=`` so machine
consumers see the ``fixed`` / ``skipped-conflict`` / ``rolled-back``
counts next to the findings they refer to.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.staticcheck.core import CheckResult, Finding, Rule, all_rules

if TYPE_CHECKING:                       # imported lazily to avoid pulling
    from repro.staticcheck.fixers.engine import FixResult  # the fixers in

#: Canonical SARIF 2.1.0 schema location (GitHub code scanning input).
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")
SARIF_VERSION = "2.1.0"

TOOL_NAME = "greedwork-check"
TOOL_URI = "https://github.com/greedwork/greedwork"


def render_text(result: CheckResult, verbose: bool = False) -> str:
    """GCC-style ``path:line:col: RULE message`` lines plus a summary."""
    lines: List[str] = [f.render() for f in
                        sorted(result.findings, key=lambda f: f.sort_key())]
    if verbose and result.baselined:
        lines.append("")
        lines.append("baselined (accepted debt):")
        lines.extend("  " + f.render() for f in
                     sorted(result.baselined,
                            key=lambda f: f.sort_key()))
    if verbose and result.suppressed:
        lines.append("")
        lines.append("suppressed:")
        lines.extend("  " + f.render() for f in
                     sorted(result.suppressed,
                            key=lambda f: f.sort_key()))
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = (f"{len(result.findings)} {noun} "
               f"({len(result.suppressed)} suppressed")
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    summary += f") in {result.files_checked} file(s)"
    if result.files_from_cache:
        summary += (f" [{result.files_analyzed} analyzed, "
                    f"{result.files_from_cache} cached]")
    lines.append(summary)
    return "\n".join(lines)


def render_stats(result: CheckResult) -> str:
    """One-line run statistics (for humans and CI timing gates)."""
    return (f"files={result.files_checked} "
            f"analyzed={result.files_analyzed} "
            f"cached={result.files_from_cache} "
            f"findings={len(result.findings)} "
            f"suppressed={len(result.suppressed)} "
            f"baselined={len(result.baselined)} "
            f"duration_s={result.duration_s:.3f}")


def render_fix_text(fix: "FixResult", diff: bool = False) -> str:
    """Per-fix outcome lines, optional diffs, and a counts summary."""
    records = sorted(fix.fixed + fix.skipped + fix.rolled_back,
                     key=lambda a: (a.path, a.line, a.col, a.rule_id))
    lines: List[str] = [record.render() for record in records]
    if diff and fix.diffs:
        if lines:
            lines.append("")
        for display_path in sorted(fix.diffs):
            lines.append(fix.diffs[display_path].rstrip("\n"))
    summary = (f"{len(fix.fixed)} fixed, "
               f"{len(fix.skipped)} skipped (conflict), "
               f"{len(fix.rolled_back)} rolled back; "
               f"{len(fix.files_changed)} file(s) changed "
               f"in {fix.rounds} round(s)")
    if fix.dry_run:
        summary += " [dry run: nothing written]"
    lines.append(summary)
    return "\n".join(lines)


def _fix_payload(fix: "FixResult") -> Dict[str, object]:
    return {
        "counts": {"fixed": len(fix.fixed),
                   "skipped_conflicts": len(fix.skipped),
                   "rolled_back": len(fix.rolled_back)},
        "fixed": [a.to_dict() for a in fix.fixed],
        "skipped_conflicts": [a.to_dict() for a in fix.skipped],
        "rolled_back": [a.to_dict() for a in fix.rolled_back],
        "files_changed": list(fix.files_changed),
        "rounds": fix.rounds,
        "dry_run": fix.dry_run,
    }


def render_json(result: CheckResult,
                fix: Optional["FixResult"] = None) -> str:
    """Stable JSON document for tooling (CI annotations, dashboards)."""
    def encode(findings: Sequence[Finding]) -> List[Dict[str, object]]:
        return [f.to_dict() for f in
                sorted(findings, key=lambda f: f.sort_key())]

    payload = {
        "ok": result.ok,
        "files_checked": result.files_checked,
        "files_analyzed": result.files_analyzed,
        "files_from_cache": result.files_from_cache,
        "duration_s": round(result.duration_s, 6),
        "findings": encode(result.findings),
        "suppressed": encode(result.suppressed),
        "baselined": encode(result.baselined),
    }
    if fix is not None:
        payload["fix"] = _fix_payload(fix)
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: CheckResult,
                 rules: Optional[Sequence[Rule]] = None,
                 fix: Optional["FixResult"] = None) -> str:
    """SARIF 2.1.0 document for GitHub code scanning.

    Active findings become ``results`` at level ``error``; suppressed
    findings are included with an ``inSource`` suppression and
    baselined ones with an ``external`` suppression, so the code
    scanning UI can distinguish live debt from accepted debt.
    """
    from repro.staticcheck.fixers.model import fixable_rule_ids

    fixable = set(fixable_rule_ids())
    rule_objs = list(rules) if rules is not None else all_rules()
    driver_rules = [
        {
            "id": rule.rule_id,
            "name": _camel(rule.name),
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.description},
            "defaultConfiguration": {"level": "error"},
            "properties": {"fixable": rule.rule_id in fixable},
        }
        for rule in sorted(rule_objs, key=lambda r: r.rule_id)
    ]
    rule_index = {entry["id"]: i for i, entry in enumerate(driver_rules)}

    def sarif_result(finding: Finding,
                     suppression: Optional[str]) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col, 1),
                    },
                },
            }],
            "partialFingerprints": {
                "greedworkFingerprint/v1": finding.fingerprint(),
            },
        }
        if finding.rule_id in rule_index:
            entry["ruleIndex"] = rule_index[finding.rule_id]
        if suppression is not None:
            entry["suppressions"] = [{"kind": suppression}]
        return entry

    results = (
        [sarif_result(f, None) for f in result.findings]
        + [sarif_result(f, "external") for f in result.baselined]
        + [sarif_result(f, "inSource") for f in result.suppressed]
    )
    run: Dict[str, object] = {
        "tool": {
            "driver": {
                "name": TOOL_NAME,
                "informationUri": TOOL_URI,
                "rules": driver_rules,
            },
        },
        "columnKind": "unicodeCodePoints",
        "originalUriBaseIds": {
            "SRCROOT": {"description": {
                "text": "repository root at analysis time"}},
        },
        "results": results,
    }
    if fix is not None:
        run["properties"] = {"greedworkFix": _fix_payload(fix)}
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [run],
    }
    return json.dumps(document, indent=2)


def _camel(name: str) -> str:
    """``layer-dag`` -> ``LayerDag`` (SARIF rule names are PascalCase)."""
    return "".join(part.capitalize() for part in name.split("-"))
