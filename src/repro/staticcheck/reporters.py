"""Render check results as human-readable text or machine JSON."""

from __future__ import annotations

import json
from typing import List

from repro.staticcheck.core import CheckResult


def render_text(result: CheckResult, verbose: bool = False) -> str:
    """GCC-style ``path:line:col: RULE message`` lines plus a summary."""
    lines: List[str] = [f.render() for f in
                        sorted(result.findings, key=lambda f: f.sort_key())]
    if verbose and result.suppressed:
        lines.append("")
        lines.append("suppressed:")
        lines.extend("  " + f.render() for f in
                     sorted(result.suppressed,
                            key=lambda f: f.sort_key()))
    noun = "finding" if len(result.findings) == 1 else "findings"
    lines.append(
        f"{len(result.findings)} {noun} "
        f"({len(result.suppressed)} suppressed) in "
        f"{result.files_checked} file(s)")
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    """Stable JSON document for tooling (CI annotations, dashboards)."""
    payload = {
        "ok": result.ok,
        "files_checked": result.files_checked,
        "findings": [
            {"rule": f.rule_id, "path": f.path, "line": f.line,
             "col": f.col, "message": f.message}
            for f in sorted(result.findings,
                            key=lambda f: f.sort_key())
        ],
        "suppressed": [
            {"rule": f.rule_id, "path": f.path, "line": f.line,
             "col": f.col, "message": f.message}
            for f in sorted(result.suppressed,
                            key=lambda f: f.sort_key())
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
