"""Whole-program context for project-scoped rules.

:class:`ProjectContext` parses every file once and derives three
cross-file structures that per-file rules cannot see:

* a **symbol table** — every top-level function, class, and constant
  of every ``repro`` module, with its AST node and decorator/base
  names (:class:`Symbol`);
* an **import graph** — which ``repro`` modules each module imports,
  with relative imports resolved, plus the local alias table mapping
  bound names back to their defining module; and
* an approximate **call graph** — for each top-level function and
  method, the set of callee names it invokes, resolved through the
  alias table to dotted ``module:name`` targets where possible.

The context distinguishes *analyzed* files (those the user asked to
check, for which findings may be reported) from *reference-only* files
(extra roots such as ``examples/`` and ``benchmarks/`` scanned so that
usage-based rules see the whole program).  Files that fail to parse
contribute nothing here; the runner reports them as ``GW000``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.core import FileContext

#: Directories under the project root that are scanned for *references*
#: even when the user only asked to check a subset of the tree.
REFERENCE_ROOTS: Tuple[str, ...] = ("src", "tests", "examples",
                                    "benchmarks")

#: Container methods that mutate their receiver in place; used by the
#: stateful-discipline rule to spot writes through module-level names.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "sort", "reverse",
    "appendleft", "extendleft",
})


@dataclass
class Symbol:
    """One top-level definition in a module."""

    module: str
    name: str
    kind: str                       # "function" | "class" | "constant"
    lineno: int
    col: int
    node: ast.AST
    decorators: List[str] = field(default_factory=list)
    bases: List[str] = field(default_factory=list)

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")


class ModuleInfo:
    """Per-file slice of the project: symbols, imports, uses."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.module = ctx.module
        #: Top-level functions/classes/constants by name.
        self.symbols: Dict[str, Symbol] = {}
        #: Every name bound at module level (defs, assigns, imports).
        self.module_level_names: Set[str] = set()
        #: Local alias -> dotted target: ``"pkg.mod"`` for module
        #: imports, ``"pkg.mod:attr"`` for from-imports.
        self.aliases: Dict[str, str] = {}
        #: Dotted repro modules this module imports (graph edges).
        self.imported_modules: Set[str] = set()
        #: Modules star-imported (their whole namespace is "used").
        self.star_imports: Set[str] = set()
        #: Identifiers this module refers to: name loads, attribute
        #: accesses, import leaves, and identifier-shaped strings
        #: outside docstring position (`__all__`, getattr, registries).
        self.used_names: Set[str] = set()
        if ctx.tree is not None:
            self._index(ctx.tree)

    # -- indexing -----------------------------------------------------------

    def _index(self, tree: ast.Module) -> None:
        for node in tree.body:
            self._index_toplevel(node)
        docstrings = _docstring_nodes(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                self.used_names.add(node.id)
            elif isinstance(node, ast.Attribute):
                self.used_names.add(node.attr)
            elif isinstance(node, ast.Constant) \
                    and isinstance(node.value, str) \
                    and node not in docstrings \
                    and node.value.isidentifier():
                self.used_names.add(node.value)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                self._index_import(node)

    def _index_toplevel(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._add_symbol(node.name, "function", node,
                             decorators=node.decorator_list)
        elif isinstance(node, ast.ClassDef):
            self._add_symbol(node.name, "class", node,
                             decorators=node.decorator_list,
                             bases=node.bases)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                for name, anchor in _target_names(target):
                    self.module_level_names.add(name)
                    if name not in self.symbols:
                        self.symbols[name] = Symbol(
                            module=self.module or "", name=name,
                            kind="constant", lineno=anchor.lineno,
                            col=anchor.col_offset, node=anchor)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if bound != "*":
                    self.module_level_names.add(bound)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING / fallback-import blocks: index one level in.
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, ast.stmt):
                    self._index_toplevel(sub)

    def _add_symbol(self, name: str, kind: str, node: ast.AST,
                    decorators: Sequence[ast.expr] = (),
                    bases: Sequence[ast.expr] = ()) -> None:
        self.module_level_names.add(name)
        self.symbols[name] = Symbol(
            module=self.module or "", name=name, kind=kind,
            lineno=node.lineno, col=node.col_offset, node=node,
            decorators=[_dotted(d) for d in decorators],
            bases=[_dotted(b) for b in bases])

    def _index_import(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                self.aliases[bound] = target
                if alias.name.split(".")[0] == "repro":
                    self.imported_modules.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = resolve_import_base(self.ctx, node)
            if base is None:
                return
            for alias in node.names:
                if alias.name == "*":
                    self.star_imports.add(base)
                    continue
                bound = alias.asname or alias.name
                self.aliases[bound] = f"{base}:{alias.name}"
                self.used_names.add(alias.name)
            if base.split(".")[0] == "repro":
                self.imported_modules.add(base)

    # -- queries ------------------------------------------------------------

    def resolve(self, name: str) -> Optional[str]:
        """Dotted ``module`` or ``module:attr`` target of a local name."""
        return self.aliases.get(name)

    def resolve_dotted(self, dotted: str) -> Optional[str]:
        """Resolve ``a.b.c`` through the alias table.

        ``curve.value`` with ``curve`` unknown returns ``None``;
        ``mm1.mean_queue`` with ``mm1 -> repro.queueing.mm1`` returns
        ``"repro.queueing.mm1:mean_queue"``.
        """
        head, _, rest = dotted.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return None
        if not rest:
            return target
        if ":" in target:
            return f"{target}.{rest}"
        leaf, _, attr = rest.partition(".")
        resolved = f"{target}:{leaf}"
        return f"{resolved}.{attr}" if attr else resolved


def resolve_import_base(ctx: FileContext,
                        node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted module a ``from ... import`` pulls from."""
    if node.level == 0:
        return node.module
    if ctx.module is None:
        return None
    base = ctx.module.split(".")
    drop = node.level - 1 if ctx.path.stem == "__init__" else node.level
    base = base[:len(base) - drop] if drop else base
    if not base:
        return None
    if node.module:
        return ".".join(base + node.module.split("."))
    return ".".join(base)


class ProjectContext:
    """The whole program, parsed once, with cross-file indexes."""

    def __init__(self, analyzed: Sequence[FileContext],
                 reference_only: Sequence[FileContext] = (),
                 project_root: Optional[Path] = None) -> None:
        self.project_root = project_root
        self.analyzed = list(analyzed)
        self.reference_only = list(reference_only)
        #: ModuleInfo for every parsed file, analyzed first.
        self.infos: List[ModuleInfo] = [
            ModuleInfo(ctx) for ctx in self.analyzed + self.reference_only
            if ctx.tree is not None]
        #: Dotted repro module name -> its ModuleInfo.
        self.modules: Dict[str, ModuleInfo] = {
            info.module: info for info in self.infos
            if info.module is not None}
        self._analyzed_paths = {ctx.display_path for ctx in self.analyzed}
        self._call_graph: Optional[Dict[str, Set[str]]] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, analyzed: Sequence[FileContext],
              project_root: Optional[Path] = None,
              reference_roots: Sequence[str] = REFERENCE_ROOTS
              ) -> "ProjectContext":
        """Build from analyzed contexts plus reference-root scans.

        Files under ``reference_roots`` (relative to ``project_root``)
        that are not already analyzed are parsed as reference-only, so
        usage-based rules see consumers the user did not ask to check.
        """
        have = {ctx.path.resolve() for ctx in analyzed}
        extras: List[FileContext] = []
        if project_root is not None:
            for root_name in reference_roots:
                root = Path(project_root) / root_name
                if not root.is_dir():
                    continue
                for path in sorted(root.rglob("*.py")):
                    resolved = path.resolve()
                    if resolved in have:
                        continue
                    have.add(resolved)
                    try:
                        source = path.read_text(encoding="utf-8")
                    except (OSError, UnicodeDecodeError):
                        continue
                    extras.append(FileContext(
                        path, source, project_root=Path(project_root)))
        return cls(analyzed, extras, project_root=project_root)

    # -- queries ------------------------------------------------------------

    def is_analyzed(self, display_path: str) -> bool:
        """Whether findings may be reported against this file."""
        return display_path in self._analyzed_paths

    @property
    def import_graph(self) -> Dict[str, Set[str]]:
        """Module -> set of imported repro modules."""
        return {info.module: set(info.imported_modules)
                for info in self.infos if info.module is not None}

    @property
    def call_graph(self) -> Dict[str, Set[str]]:
        """Approximate caller -> callee map.

        Keys are ``module:qualname``; values contain resolved
        ``module:name`` targets where the alias table allows it and
        bare dotted names otherwise.  Built lazily and cached.
        """
        if self._call_graph is None:
            self._call_graph = self._build_call_graph()
        return self._call_graph

    def _build_call_graph(self) -> Dict[str, Set[str]]:
        graph: Dict[str, Set[str]] = {}
        for info in self.infos:
            if info.module is None or info.ctx.tree is None:
                continue
            for scope_name, func in _iter_functions(info.ctx.tree):
                callees: Set[str] = set()
                for node in ast.walk(func):
                    if not isinstance(node, ast.Call):
                        continue
                    dotted = _dotted(node.func)
                    if not dotted:
                        continue
                    resolved = info.resolve_dotted(dotted)
                    if resolved is None and dotted in info.symbols:
                        resolved = f"{info.module}:{dotted}"
                    callees.add(resolved or dotted)
                graph[f"{info.module}:{scope_name}"] = callees
        return graph

    def subclasses_of(self, module: str, class_name: str) -> List[Symbol]:
        """Transitive subclasses of ``module:class_name`` project-wide."""
        wanted = {f"{module}:{class_name}"}
        out: List[Symbol] = []
        changed = True
        seen: Set[str] = set()
        while changed:
            changed = False
            for info in self.infos:
                if info.module is None:
                    continue
                for symbol in info.symbols.values():
                    if symbol.kind != "class":
                        continue
                    key = f"{info.module}:{symbol.name}"
                    if key in seen:
                        continue
                    for base in symbol.bases:
                        target = info.resolve_dotted(base) or \
                            (f"{info.module}:{base}"
                             if base in info.symbols else base)
                        if target in wanted or base in {
                                w.split(":")[-1] for w in wanted}:
                            wanted.add(key)
                            seen.add(key)
                            out.append(symbol)
                            changed = True
                            break
        return out

    def name_used_outside(self, module: str, name: str) -> bool:
        """Whether any *other* parsed file refers to ``name``.

        Name-based on purpose: over-approximating use keeps the dead-
        code rule quiet unless a symbol is referenced nowhere at all.
        """
        home = self.modules.get(module)
        home_path = home.ctx.display_path if home is not None else None
        for info in self.infos:
            if info.ctx.display_path == home_path:
                continue
            if name in info.used_names:
                return True
            if module is not None and module in info.star_imports:
                # A star-importer may use anything it pulled in.
                return True
        return False


def _docstring_nodes(tree: ast.Module) -> Set[ast.AST]:
    """Constant nodes sitting in docstring position."""
    out: Set[ast.AST] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.FunctionDef,
                             ast.AsyncFunctionDef, ast.ClassDef)):
            body = getattr(node, "body", [])
            if body and isinstance(body[0], ast.Expr) \
                    and isinstance(body[0].value, ast.Constant) \
                    and isinstance(body[0].value.value, str):
                out.add(body[0].value)
    return out


def _dotted(node: ast.expr) -> str:
    """``a.b.c`` for a Name/Attribute chain, ``""`` otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    if isinstance(node, ast.Call):
        return _dotted(node.func)
    return ""


def _target_names(target: ast.expr) -> Iterable[Tuple[str, ast.expr]]:
    if isinstance(target, ast.Name):
        yield target.id, target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def _iter_functions(tree: ast.Module
                    ) -> Iterable[Tuple[str, ast.AST]]:
    """(qualname, node) for top-level functions and class methods."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                    yield f"{node.name}.{sub.name}", sub
