"""Whole-program context for project-scoped rules.

:class:`ProjectContext` parses every file once and derives three
cross-file structures that per-file rules cannot see:

* a **symbol table** — every top-level function, class, and constant
  of every ``repro`` module, with its AST node and decorator/base
  names (:class:`Symbol`);
* an **import graph** — which ``repro`` modules each module imports,
  with relative imports resolved, plus the local alias table mapping
  bound names back to their defining module; and
* an approximate **call graph** — for each top-level function and
  method, the set of callee names it invokes, resolved through the
  alias table to dotted ``module:name`` targets where possible.

On top of these sits the **state-flow layer** (PR 6), which the
state-contract and parallel-safety rule families consume:

* a per-class **attribute state model** (:class:`ClassStateModel`) —
  which attributes ``__init__`` assigns, which methods rebind or
  mutate them afterwards, and which methods read them — merged
  through in-project base classes;
* per-function **purity/escape summaries**
  (:class:`FunctionSummary`) — which module-level names a function
  reads or writes (rebinding via ``global``, assigning into, or
  calling a mutator method on); and
* **worker-entry reachability** — the callables handed to process
  pools (``multiprocessing.Pool`` / ``ProcessPoolExecutor``) and the
  transitive closure of the call graph from them, so rules can tell
  which code runs inside worker processes.

The context distinguishes *analyzed* files (those the user asked to
check, for which findings may be reported) from *reference-only* files
(extra roots such as ``examples/`` and ``benchmarks/`` scanned so that
usage-based rules see the whole program).  Files that fail to parse
contribute nothing here; the runner reports them as ``GW000``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.core import FileContext

#: Directories under the project root that are scanned for *references*
#: even when the user only asked to check a subset of the tree.
REFERENCE_ROOTS: Tuple[str, ...] = ("src", "tests", "examples",
                                    "benchmarks")

#: Container methods that mutate their receiver in place; used by the
#: stateful-discipline rule to spot writes through module-level names.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "sort", "reverse",
    "appendleft", "extendleft",
})

#: Pool constructors whose dispatched callables run in *other
#: processes* (shared-memory executors are deliberately absent).
_POOL_CONSTRUCTORS = frozenset({"Pool", "ProcessPoolExecutor"})

#: Methods that ship a callable to pool workers; the callable is the
#: first positional argument for every one of them.
_POOL_DISPATCH_METHODS = frozenset({
    "map", "imap", "imap_unordered", "starmap", "starmap_async",
    "map_async", "submit", "apply_async",
})


@dataclass
class Symbol:
    """One top-level definition in a module."""

    module: str
    name: str
    kind: str                       # "function" | "class" | "constant"
    lineno: int
    col: int
    node: ast.AST
    decorators: List[str] = field(default_factory=list)
    bases: List[str] = field(default_factory=list)

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")


@dataclass
class ClassStateModel:
    """Attribute-level state model of one class (bases merged in).

    Built from ``self.<attr>`` traffic inside instance methods:
    stores, augmented assigns, subscript stores, and calls to known
    in-place mutators all count as *writes*; plain loads count as
    *reads*.  ``classmethod``/``staticmethod`` bodies are excluded
    (their attribute traffic does not target the instance).
    """

    module: str
    name: str
    #: Attribute -> line of its first assignment inside ``__init__``.
    init_assigned: Dict[str, int] = field(default_factory=dict)
    #: Method name -> attributes it writes (``__init__`` excluded).
    method_writes: Dict[str, Set[str]] = field(default_factory=dict)
    #: Method name -> attributes it reads.
    method_reads: Dict[str, Set[str]] = field(default_factory=dict)
    #: Method name -> its AST node (instance methods *and* class/
    #: static methods, so contract rules can inspect any of them).
    methods: Dict[str, ast.AST] = field(default_factory=dict)
    #: Methods that pass ``self`` whole to a call (``deepcopy(self)``,
    #: ``pickle.dumps(self)``...): such a method covers every
    #: attribute by construction.
    whole_self_methods: Set[str] = field(default_factory=set)

    @property
    def stateful(self) -> Set[str]:
        """Every attribute the instance owns: init-assigned or written."""
        out = set(self.init_assigned)
        for attrs in self.method_writes.values():
            out.update(attrs)
        return out

    @property
    def mutated_after_init(self) -> Set[str]:
        """Attributes some non-``__init__`` method writes."""
        out: Set[str] = set()
        for attrs in self.method_writes.values():
            out.update(attrs)
        return out

    def reads_in(self, method: str) -> Set[str]:
        """Attributes of ``self`` the named method reads."""
        return self.method_reads.get(method, set())


@dataclass
class FunctionSummary:
    """Module-level state touched by one function (purity summary).

    ``global_writes`` maps each module-level name the function rebinds
    (``global``), assigns into, or calls a mutator method on, to the
    first node doing so; ``global_reads`` maps each module-level name
    it merely loads.  Imported names are excluded from reads — they
    are bindings, not state.
    """

    key: str                            # "module:qualname"
    module: str
    node: ast.AST
    global_reads: Dict[str, ast.AST] = field(default_factory=dict)
    global_writes: Dict[str, ast.AST] = field(default_factory=dict)


class ModuleInfo:
    """Per-file slice of the project: symbols, imports, uses."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.module = ctx.module
        #: Top-level functions/classes/constants by name.
        self.symbols: Dict[str, Symbol] = {}
        #: Every name bound at module level (defs, assigns, imports).
        self.module_level_names: Set[str] = set()
        #: Local alias -> dotted target: ``"pkg.mod"`` for module
        #: imports, ``"pkg.mod:attr"`` for from-imports.
        self.aliases: Dict[str, str] = {}
        #: Dotted repro modules this module imports (graph edges).
        self.imported_modules: Set[str] = set()
        #: Modules star-imported (their whole namespace is "used").
        self.star_imports: Set[str] = set()
        #: Identifiers this module refers to: name loads, attribute
        #: accesses, import leaves, and identifier-shaped strings
        #: outside docstring position (`__all__`, getattr, registries).
        self.used_names: Set[str] = set()
        if ctx.tree is not None:
            self._index(ctx.tree)

    # -- indexing -----------------------------------------------------------

    def _index(self, tree: ast.Module) -> None:
        for node in tree.body:
            self._index_toplevel(node)
        docstrings = _docstring_nodes(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                self.used_names.add(node.id)
            elif isinstance(node, ast.Attribute):
                self.used_names.add(node.attr)
            elif isinstance(node, ast.Constant) \
                    and isinstance(node.value, str) \
                    and node not in docstrings \
                    and node.value.isidentifier():
                self.used_names.add(node.value)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                self._index_import(node)

    def _index_toplevel(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._add_symbol(node.name, "function", node,
                             decorators=node.decorator_list)
        elif isinstance(node, ast.ClassDef):
            self._add_symbol(node.name, "class", node,
                             decorators=node.decorator_list,
                             bases=node.bases)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                for name, anchor in _target_names(target):
                    self.module_level_names.add(name)
                    if name not in self.symbols:
                        self.symbols[name] = Symbol(
                            module=self.module or "", name=name,
                            kind="constant", lineno=anchor.lineno,
                            col=anchor.col_offset, node=anchor)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if bound != "*":
                    self.module_level_names.add(bound)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING / fallback-import blocks: index one level in.
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, ast.stmt):
                    self._index_toplevel(sub)

    def _add_symbol(self, name: str, kind: str, node: ast.AST,
                    decorators: Sequence[ast.expr] = (),
                    bases: Sequence[ast.expr] = ()) -> None:
        self.module_level_names.add(name)
        self.symbols[name] = Symbol(
            module=self.module or "", name=name, kind=kind,
            lineno=node.lineno, col=node.col_offset, node=node,
            decorators=[_dotted(d) for d in decorators],
            bases=[_dotted(b) for b in bases])

    def _index_import(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                self.aliases[bound] = target
                if alias.name.split(".")[0] == "repro":
                    self.imported_modules.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = resolve_import_base(self.ctx, node)
            if base is None:
                return
            for alias in node.names:
                if alias.name == "*":
                    self.star_imports.add(base)
                    continue
                bound = alias.asname or alias.name
                self.aliases[bound] = f"{base}:{alias.name}"
                self.used_names.add(alias.name)
            if base.split(".")[0] == "repro":
                self.imported_modules.add(base)

    # -- queries ------------------------------------------------------------

    def resolve(self, name: str) -> Optional[str]:
        """Dotted ``module`` or ``module:attr`` target of a local name."""
        return self.aliases.get(name)

    def resolve_dotted(self, dotted: str) -> Optional[str]:
        """Resolve ``a.b.c`` through the alias table.

        ``curve.value`` with ``curve`` unknown returns ``None``;
        ``mm1.mean_queue`` with ``mm1 -> repro.queueing.mm1`` returns
        ``"repro.queueing.mm1:mean_queue"``.
        """
        head, _, rest = dotted.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return None
        if not rest:
            return target
        if ":" in target:
            return f"{target}.{rest}"
        leaf, _, attr = rest.partition(".")
        resolved = f"{target}:{leaf}"
        return f"{resolved}.{attr}" if attr else resolved


def resolve_import_base(ctx: FileContext,
                        node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted module a ``from ... import`` pulls from."""
    if node.level == 0:
        return node.module
    if ctx.module is None:
        return None
    base = ctx.module.split(".")
    drop = node.level - 1 if ctx.path.stem == "__init__" else node.level
    base = base[:len(base) - drop] if drop else base
    if not base:
        return None
    if node.module:
        return ".".join(base + node.module.split("."))
    return ".".join(base)


class ProjectContext:
    """The whole program, parsed once, with cross-file indexes."""

    def __init__(self, analyzed: Sequence[FileContext],
                 reference_only: Sequence[FileContext] = (),
                 project_root: Optional[Path] = None) -> None:
        self.project_root = project_root
        self.analyzed = list(analyzed)
        self.reference_only = list(reference_only)
        #: ModuleInfo for every parsed file, analyzed first.
        self.infos: List[ModuleInfo] = [
            ModuleInfo(ctx) for ctx in self.analyzed + self.reference_only
            if ctx.tree is not None]
        #: Dotted repro module name -> its ModuleInfo.
        self.modules: Dict[str, ModuleInfo] = {
            info.module: info for info in self.infos
            if info.module is not None}
        self._analyzed_paths = {ctx.display_path for ctx in self.analyzed}
        self._call_graph: Optional[Dict[str, Set[str]]] = None
        self._class_states: Dict[str, Optional[ClassStateModel]] = {}
        self._function_summaries: Optional[Dict[str, FunctionSummary]] = None
        self._mutable_globals: Dict[str, Set[str]] = {}
        self._worker_entries: Optional[Dict[str, str]] = None
        self._worker_reachable: Optional[Dict[str, str]] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, analyzed: Sequence[FileContext],
              project_root: Optional[Path] = None,
              reference_roots: Sequence[str] = REFERENCE_ROOTS
              ) -> "ProjectContext":
        """Build from analyzed contexts plus reference-root scans.

        Files under ``reference_roots`` (relative to ``project_root``)
        that are not already analyzed are parsed as reference-only, so
        usage-based rules see consumers the user did not ask to check.
        """
        have = {ctx.path.resolve() for ctx in analyzed}
        extras: List[FileContext] = []
        if project_root is not None:
            for root_name in reference_roots:
                root = Path(project_root) / root_name
                if not root.is_dir():
                    continue
                for path in sorted(root.rglob("*.py")):
                    resolved = path.resolve()
                    if resolved in have:
                        continue
                    have.add(resolved)
                    try:
                        source = path.read_text(encoding="utf-8")
                    except (OSError, UnicodeDecodeError):
                        continue
                    extras.append(FileContext(
                        path, source, project_root=Path(project_root)))
        return cls(analyzed, extras, project_root=project_root)

    # -- queries ------------------------------------------------------------

    def is_analyzed(self, display_path: str) -> bool:
        """Whether findings may be reported against this file."""
        return display_path in self._analyzed_paths

    @property
    def import_graph(self) -> Dict[str, Set[str]]:
        """Module -> set of imported repro modules."""
        return {info.module: set(info.imported_modules)
                for info in self.infos if info.module is not None}

    @property
    def call_graph(self) -> Dict[str, Set[str]]:
        """Approximate caller -> callee map.

        Keys are ``module:qualname``; values contain resolved
        ``module:name`` targets where the alias table allows it and
        bare dotted names otherwise.  Built lazily and cached.
        """
        if self._call_graph is None:
            self._call_graph = self._build_call_graph()
        return self._call_graph

    def _build_call_graph(self) -> Dict[str, Set[str]]:
        graph: Dict[str, Set[str]] = {}
        for info in self.infos:
            if info.module is None or info.ctx.tree is None:
                continue
            for scope_name, func in _iter_functions(info.ctx.tree):
                callees: Set[str] = set()
                for node in ast.walk(func):
                    if not isinstance(node, ast.Call):
                        continue
                    dotted = _dotted(node.func)
                    if not dotted:
                        continue
                    resolved = info.resolve_dotted(dotted)
                    if resolved is None and dotted in info.symbols:
                        resolved = f"{info.module}:{dotted}"
                    callees.add(resolved or dotted)
                graph[f"{info.module}:{scope_name}"] = callees
        return graph

    def subclasses_of(self, module: str, class_name: str) -> List[Symbol]:
        """Transitive subclasses of ``module:class_name`` project-wide."""
        wanted = {f"{module}:{class_name}"}
        out: List[Symbol] = []
        changed = True
        seen: Set[str] = set()
        while changed:
            changed = False
            for info in self.infos:
                if info.module is None:
                    continue
                for symbol in info.symbols.values():
                    if symbol.kind != "class":
                        continue
                    key = f"{info.module}:{symbol.name}"
                    if key in seen:
                        continue
                    for base in symbol.bases:
                        target = info.resolve_dotted(base) or \
                            (f"{info.module}:{base}"
                             if base in info.symbols else base)
                        if target in wanted or base in {
                                w.split(":")[-1] for w in wanted}:
                            wanted.add(key)
                            seen.add(key)
                            out.append(symbol)
                            changed = True
                            break
        return out

    # -- state-flow layer ---------------------------------------------------

    def class_state(self, module: str, class_name: str
                    ) -> Optional[ClassStateModel]:
        """Attribute state model of ``module:class_name``, bases merged.

        Only bases resolvable to in-project classes contribute; a base
        from outside the parsed tree is silently treated as stateless.
        Returns ``None`` when the class itself cannot be found.
        """
        return self._class_state(module, class_name, set())

    def _class_state(self, module: str, class_name: str,
                     visiting: Set[str]) -> Optional[ClassStateModel]:
        key = f"{module}:{class_name}"
        if key in self._class_states:
            return self._class_states[key]
        if key in visiting:             # inheritance cycle: stop
            return None
        visiting.add(key)
        info = self.modules.get(module)
        symbol = info.symbols.get(class_name) if info is not None else None
        if symbol is None or not isinstance(symbol.node, ast.ClassDef):
            self._class_states[key] = None
            return None
        model = _build_class_model(module, symbol.node)
        for base in symbol.bases:
            target = info.resolve_dotted(base)
            if target is None and base in info.symbols:
                target = f"{module}:{base}"
            if target is None or ":" not in target:
                continue
            base_mod, _, base_name = target.partition(":")
            if "." in base_name:
                continue
            parent = self._class_state(base_mod, base_name, visiting)
            if parent is not None:
                _merge_base_model(model, parent)
        self._class_states[key] = model
        return model

    @property
    def function_summaries(self) -> Dict[str, FunctionSummary]:
        """``module:qualname`` -> module-state purity summary."""
        if self._function_summaries is None:
            out: Dict[str, FunctionSummary] = {}
            for info in self.infos:
                if info.module is None or info.ctx.tree is None:
                    continue
                for qual, func in _iter_functions(info.ctx.tree):
                    key = f"{info.module}:{qual}"
                    out[key] = _build_function_summary(key, info, func)
            self._function_summaries = out
        return self._function_summaries

    def module_mutable_globals(self, module: str) -> Set[str]:
        """Module-level names some function in ``module`` writes.

        This is the working definition of *worker-shared mutable
        state*: a module-level binding no function ever writes is
        configuration, not state.
        """
        if module not in self._mutable_globals:
            written: Set[str] = set()
            for summary in self.function_summaries.values():
                if summary.module == module:
                    written.update(summary.global_writes)
            self._mutable_globals[module] = written
        return self._mutable_globals[module]

    def worker_entry_points(self) -> Dict[str, str]:
        """Callable shipped to a process pool -> the dispatching scope.

        Keys are resolved ``module:qualname`` targets of the first
        positional argument of ``pool.map``/``submit``/... calls on
        receivers constructed from ``multiprocessing.Pool`` or
        ``ProcessPoolExecutor``.
        """
        if self._worker_entries is None:
            entries: Dict[str, str] = {}
            for info in self.infos:
                if info.module is None or info.ctx.tree is None:
                    continue
                for qual, func in _iter_functions(info.ctx.tree):
                    for target in _pool_dispatch_targets(info, func):
                        resolved = self._normalize_target(target)
                        entries.setdefault(resolved,
                                           f"{info.module}:{qual}")
            self._worker_entries = entries
        return self._worker_entries

    def reachable_from_workers(self) -> Dict[str, str]:
        """Functions transitively callable inside pool workers.

        Maps each reachable ``module:qualname`` to the worker entry
        point it is reached from (first found; breadth-first, so the
        shortest chain wins).  Approximate by construction: calls
        through local variables or subscripts do not traverse.
        """
        if self._worker_reachable is None:
            graph = self.call_graph
            origin: Dict[str, str] = {}
            queue: List[Tuple[str, str]] = [
                (entry, entry) for entry in sorted(
                    self.worker_entry_points())]
            while queue:
                key, root = queue.pop(0)
                if key in origin:
                    continue
                origin[key] = root
                for callee in sorted(graph.get(key, ())):
                    for nxt in self._expand_callee(key, callee):
                        if nxt not in origin:
                            queue.append((nxt, root))
            self._worker_reachable = origin
        return self._worker_reachable

    def _normalize_target(self, target: str) -> str:
        """Re-root ``pkg:sub.attr`` to ``pkg.sub:attr`` for submodules.

        ``from repro.sim import cache as sim_cache`` aliases resolve
        to ``repro.sim:cache``; traffic through the alias then renders
        as ``repro.sim:cache.enabled`` while the call graph keys it as
        ``repro.sim.cache:enabled``.
        """
        while ":" in target:
            mod, _, rest = target.partition(":")
            head, _, tail = rest.partition(".")
            if tail and f"{mod}.{head}" in self.modules:
                target = f"{mod}.{head}:{tail}"
            else:
                break
        return target

    def _expand_callee(self, caller_key: str, callee: str) -> List[str]:
        """Graph keys a callee string may refer to (possibly none)."""
        caller_mod = caller_key.partition(":")[0]
        if ":" not in callee:
            info = self.modules.get(caller_mod)
            head = callee.split(".")[0]
            if head == "self" and "." in caller_key.partition(":")[2]:
                # self.method() inside a method: same class.
                cls = caller_key.partition(":")[2].split(".")[0]
                callee = f"{caller_mod}:{cls}.{callee.split('.', 1)[1]}"
            elif info is not None and head in info.symbols:
                callee = f"{caller_mod}:{callee}"
            else:
                return []
        callee = self._normalize_target(callee)
        graph = self.call_graph
        out: List[str] = []
        if callee in graph:
            out.append(callee)
        # Instantiating a class runs its __init__.
        if f"{callee}.__init__" in graph:
            out.append(f"{callee}.__init__")
        return out

    def name_used_outside(self, module: str, name: str) -> bool:
        """Whether any *other* parsed file refers to ``name``.

        Name-based on purpose: over-approximating use keeps the dead-
        code rule quiet unless a symbol is referenced nowhere at all.
        """
        home = self.modules.get(module)
        home_path = home.ctx.display_path if home is not None else None
        for info in self.infos:
            if info.ctx.display_path == home_path:
                continue
            if name in info.used_names:
                return True
            if module is not None and module in info.star_imports:
                # A star-importer may use anything it pulled in.
                return True
        return False


def _docstring_nodes(tree: ast.Module) -> Set[ast.AST]:
    """Constant nodes sitting in docstring position."""
    out: Set[ast.AST] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.FunctionDef,
                             ast.AsyncFunctionDef, ast.ClassDef)):
            body = getattr(node, "body", [])
            if body and isinstance(body[0], ast.Expr) \
                    and isinstance(body[0].value, ast.Constant) \
                    and isinstance(body[0].value.value, str):
                out.add(body[0].value)
    return out


def _dotted(node: ast.expr) -> str:
    """``a.b.c`` for a Name/Attribute chain, ``""`` otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    if isinstance(node, ast.Call):
        return _dotted(node.func)
    return ""


def _target_names(target: ast.expr) -> Iterable[Tuple[str, ast.expr]]:
    if isinstance(target, ast.Name):
        yield target.id, target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def _iter_functions(tree: ast.Module
                    ) -> Iterable[Tuple[str, ast.AST]]:
    """(qualname, node) for top-level functions and class methods."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                    yield f"{node.name}.{sub.name}", sub


# -- state-flow builders ----------------------------------------------------

def _decorator_names(func: ast.AST) -> Set[str]:
    return {_dotted(d).split(".")[-1]
            for d in getattr(func, "decorator_list", [])}


def _self_parameter(func: ast.AST) -> Optional[str]:
    """The instance-receiver parameter name, or ``None``.

    ``staticmethod``/``classmethod`` bodies have no instance receiver:
    their attribute traffic must not be charged to the instance.
    """
    if _decorator_names(func) & {"staticmethod", "classmethod"}:
        return None
    args = func.args
    positional = list(args.posonlyargs) + list(args.args)
    if not positional:
        return None
    return positional[0].arg


def _self_attr_root(node: ast.expr, self_name: str) -> Optional[str]:
    """``attr`` when ``node`` is ``self.attr`` (through subscripts)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == self_name:
        return node.attr
    return None


def _build_class_model(module: str,
                       cls_node: ast.ClassDef) -> ClassStateModel:
    model = ClassStateModel(module=module, name=cls_node.name)
    for method in cls_node.body:
        if not isinstance(method, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
            continue
        model.methods[method.name] = method
        self_name = _self_parameter(method)
        if self_name is None:
            continue
        writes: Set[str] = set()
        reads: Set[str] = set()
        attr_value_ids: Set[int] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == self_name:
                attr_value_ids.add(id(node.value))
                if isinstance(node.ctx, ast.Store):
                    writes.add(node.attr)
                elif isinstance(node.ctx, ast.Del):
                    writes.add(node.attr)
                else:
                    reads.add(node.attr)
            elif isinstance(node, (ast.Assign, ast.AugAssign,
                                   ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        attr = _self_attr_root(target, self_name)
                        if attr is not None:
                            writes.add(attr)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in MUTATOR_METHODS:
                attr = _self_attr_root(node.func.value, self_name)
                if attr is not None:
                    writes.add(attr)
        # A bare `self` load that is not the receiver of an attribute
        # access escapes whole (deepcopy(self), vars(self), ...).
        for node in ast.walk(method):
            if isinstance(node, ast.Name) and node.id == self_name \
                    and isinstance(node.ctx, ast.Load) \
                    and id(node) not in attr_value_ids:
                model.whole_self_methods.add(method.name)
                break
        if method.name == "__init__":
            for node in ast.walk(method):
                if isinstance(node, ast.Attribute) \
                        and isinstance(node.value, ast.Name) \
                        and node.value.id == self_name \
                        and isinstance(node.ctx, ast.Store):
                    model.init_assigned.setdefault(node.attr,
                                                   node.lineno)
        else:
            if writes:
                model.method_writes[method.name] = writes
        if reads:
            model.method_reads[method.name] = reads
    return model


def _merge_base_model(model: ClassStateModel,
                      base: ClassStateModel) -> None:
    """Fold a base-class model into ``model`` (derived wins)."""
    for attr, lineno in base.init_assigned.items():
        model.init_assigned.setdefault(attr, lineno)
    for method, node in base.methods.items():
        if method in model.methods:
            continue                    # overridden: derived body wins
        model.methods[method] = node
        if method in base.method_writes:
            model.method_writes.setdefault(method,
                                           set(base.method_writes[method]))
        if method in base.method_reads:
            model.method_reads.setdefault(method,
                                          set(base.method_reads[method]))
        if method in base.whole_self_methods:
            model.whole_self_methods.add(method)


def _scope_local_names(func: ast.AST) -> Set[str]:
    """Names bound locally inside a function (params, stores, loops)."""
    out: Set[str] = set()
    args = func.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])):
        out.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            out.add(node.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    out.add(sub.id)
        elif isinstance(node, ast.withitem) \
                and node.optional_vars is not None:
            for sub in ast.walk(node.optional_vars):
                if isinstance(sub, ast.Name):
                    out.add(sub.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not func:
            out.add(node.name)
    return out


def _expr_root_name(node: ast.AST) -> str:
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _build_function_summary(key: str, info: "ModuleInfo",
                            func: ast.AST) -> FunctionSummary:
    summary = FunctionSummary(key=key, module=info.module or "",
                              node=func)
    declared_global: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    local = _scope_local_names(func) - declared_global
    module_names = info.module_level_names
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            for name in node.names:
                if name in module_names:
                    summary.global_writes.setdefault(name, node)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = _expr_root_name(target)
                    if root and root not in local \
                            and root in module_names \
                            and root not in info.aliases:
                        summary.global_writes.setdefault(root, node)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in MUTATOR_METHODS:
            root = _expr_root_name(node.func.value)
            if root and root not in local and root in module_names \
                    and root not in info.aliases:
                summary.global_writes.setdefault(root, node)
        elif isinstance(node, ast.Name) \
                and isinstance(node.ctx, ast.Load):
            if node.id in module_names and node.id not in local \
                    and node.id not in info.aliases:
                summary.global_reads.setdefault(node.id, node)
    return summary


def _pool_dispatch_targets(info: "ModuleInfo",
                           func: ast.AST) -> List[str]:
    """Resolved ``module:name`` callables this function ships to pools."""
    pool_names: Set[str] = set()
    for node in ast.walk(func):
        value: Optional[ast.expr] = None
        bound: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            value, bound = node.value, node.targets[0]
        elif isinstance(node, ast.withitem):
            value, bound = node.context_expr, node.optional_vars
        if value is None or not isinstance(bound, ast.Name):
            continue
        dotted = _dotted(value) if isinstance(value, ast.Call) else ""
        if dotted.split(".")[-1] in _POOL_CONSTRUCTORS:
            pool_names.add(bound.id)
    if not pool_names:
        return []
    out: List[str] = []
    for node in ast.walk(func):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_DISPATCH_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pool_names
                and node.args):
            continue
        target = node.args[0]
        resolved: Optional[str] = None
        if isinstance(target, ast.Name):
            if target.id in info.symbols:
                resolved = f"{info.module}:{target.id}"
            else:
                resolved = info.resolve(target.id)
        elif isinstance(target, ast.Attribute):
            dotted = _dotted(target)
            if dotted:
                resolved = info.resolve_dotted(dotted)
        if resolved is not None and ":" in resolved:
            out.append(resolved)
    return out
