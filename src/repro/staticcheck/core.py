"""Shared infrastructure: findings, file contexts, suppression, registry.

A *rule* inspects one :class:`FileContext` (path, source, parsed AST,
module name) and yields :class:`Finding` objects.  The runner parses
``# greedwork: ignore[...]`` pragmas and drops findings they cover, so
rules never need to reason about suppression themselves.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Type

#: Sentinel rule id meaning "every rule" in a suppression pragma.
ALL_RULES = "*"

_PRAGMA = re.compile(
    r"#\s*greedwork:\s*ignore(?:\[(?P<ids>[^\]]*)\])?")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        """Stable report ordering: path, then location, then rule."""
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        """GCC-style one-line rendering (``path:line:col: RULE msg``)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.message}")

    def fingerprint(self) -> str:
        """Location-insensitive identity used by baseline files.

        Deliberately omits the line/column so that unrelated edits
        moving a known finding do not un-baseline it.
        """
        return f"{self.rule_id}::{self.path}::{self.message}"

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for the cache and JSON reporters."""
        return {"rule": self.rule_id, "path": self.path,
                "line": self.line, "col": self.col,
                "message": self.message}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        return cls(rule_id=str(payload["rule"]), path=str(payload["path"]),
                   line=int(payload["line"]), col=int(payload["col"]),
                   message=str(payload["message"]))


class FileContext:
    """Everything a rule may want to know about one source file.

    A file that does not parse still yields a usable context:
    ``tree`` is ``None`` and ``parse_error`` carries the
    ``SyntaxError``, so one broken file can be reported as a ``GW000``
    finding without aborting the rest of the run.
    """

    def __init__(self, path: Path, source: str,
                 project_root: Optional[Path] = None) -> None:
        self.path = path
        self.project_root = project_root
        self.source = source
        self.lines = source.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            self.parse_error = exc
        self.module = module_name_for(path)
        self.display_path = display_path_for(path, project_root)
        self._suppressions = _parse_suppressions(self.lines)

    def suppressed_ids(self, line: int) -> FrozenSet[str]:
        """Rule ids suppressed on a 1-based source line.

        A pragma suppresses the line it sits on; a pragma on an
        otherwise-blank line also covers the line directly below it,
        so long statements can carry the comment above them.
        """
        return self._suppressions.get(line, frozenset())

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether a pragma on the finding's line covers its rule."""
        ids = self.suppressed_ids(finding.line)
        return ALL_RULES in ids or finding.rule_id in ids


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name for files living under a ``repro`` package.

    Uses the *last* path component named ``repro`` so that temporary
    project trees (``/tmp/.../src/repro/...``) resolve the same way as
    the real one.  Returns ``None`` for files outside any ``repro``
    package (rules that reason about the architecture skip those).
    """
    parts = path.resolve().with_suffix("").parts
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
    dotted = list(parts[idx:])
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


def display_path_for(path: Path, project_root: Optional[Path]) -> str:
    """Path as shown in reports: project-relative when possible."""
    if project_root is not None:
        try:
            return path.resolve().relative_to(
                project_root.resolve()).as_posix()
        except ValueError:
            pass
    return str(path)


def _parse_suppressions(lines: List[str]) -> Dict[int, FrozenSet[str]]:
    out: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        raw = match.group("ids")
        if raw is None:
            ids = frozenset({ALL_RULES})
        else:
            ids = frozenset(
                token.strip() for token in raw.split(",") if token.strip())
            if not ids:
                ids = frozenset({ALL_RULES})
        out[lineno] = out.get(lineno, frozenset()) | ids
        # A standalone pragma (comment-only line) covers the next
        # *statement* line: skip over blank and comment-only lines so
        # the pragma may sit above a decorated or documented target.
        if text[:match.start()].strip() == "":
            target = lineno + 1
            while target <= len(lines):
                stripped = lines[target - 1].strip()
                if stripped and not stripped.startswith("#"):
                    break
                target += 1
            out[target] = out.get(target, frozenset()) | ids
    return out


class Rule:
    """Base class for checks; subclasses set the class attributes."""

    rule_id: str = "GW000"
    name: str = "unnamed"
    description: str = ""
    #: ``"file"`` rules see one :class:`FileContext` at a time and may
    #: run in parallel worker processes; ``"project"`` rules see the
    #: whole :class:`~repro.staticcheck.project.ProjectContext`.
    scope: str = "file"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield findings for one file (suppression handled upstream)."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST,
                message: str) -> Finding:
        """Build a :class:`Finding` anchored at an AST node."""
        return Finding(rule_id=self.rule_id, path=ctx.display_path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message)


class ProjectRule(Rule):
    """Base class for whole-program checks.

    A project rule receives the full
    :class:`~repro.staticcheck.project.ProjectContext` — symbol table,
    import graph, call graph — and may relate facts across files.  Its
    findings still anchor to one location, so per-line suppression
    pragmas apply exactly as they do for file rules.
    """

    scope = "project"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Project rules do not run per file."""
        return ()

    def check_project(self, project: "ProjectContext"
                      ) -> Iterable[Finding]:
        """Yield findings for the whole program."""
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one registered rule by id."""
    _load_builtin_rules()
    try:
        # greedwork: ignore[GW601] -- _REGISTRY is append-only at
        # import time; every worker re-imports and rebuilds the
        # identical table, so there is no divergent state.
        return _REGISTRY[rule_id]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown rule {rule_id!r}; known rules: {known}") from None


def _load_builtin_rules() -> None:
    # Imported lazily to avoid a cycle (rule modules import this one).
    import repro.staticcheck.rules  # noqa: F401


def select_rules(rules: Iterable[Rule],
                 select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None) -> List[Rule]:
    """Filter rules by id or family prefix.

    A selector matches a rule when the rule id starts with it, so
    ``GW1`` (or ``GW1xx``) selects the whole perf family while
    ``GW101`` selects one rule.  ``ignore`` wins over ``select``.
    Unknown selectors raise ``KeyError`` so typos fail loudly.
    """
    def normalize(tokens: Optional[Iterable[str]]) -> List[str]:
        out = []
        for token in tokens or ():
            token = token.strip().rstrip("x")
            if token:
                out.append(token)
        return out

    rules = list(rules)
    chosen = normalize(select)
    dropped = normalize(ignore)
    for selector in chosen + dropped:
        if not any(rule.rule_id.startswith(selector) for rule in rules):
            known = ", ".join(sorted(r.rule_id for r in rules))
            raise KeyError(f"unknown rule selector {selector!r}; "
                           f"known rules: {known}")
    out = []
    for rule in rules:
        if chosen and not any(rule.rule_id.startswith(s) for s in chosen):
            continue
        if any(rule.rule_id.startswith(s) for s in dropped):
            continue
        out.append(rule)
    return out


@dataclass
class CheckResult:
    """Outcome of running the suite over a set of files."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: Findings present in the accepted baseline file (known debt).
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Files whose per-file rules actually ran this invocation.
    files_analyzed: int = 0
    #: Files served entirely from the incremental cache.
    files_from_cache: int = 0
    #: Wall-clock duration of the run, in seconds.
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings
