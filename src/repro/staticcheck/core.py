"""Shared infrastructure: findings, file contexts, suppression, registry.

A *rule* inspects one :class:`FileContext` (path, source, parsed AST,
module name) and yields :class:`Finding` objects.  The runner parses
``# greedwork: ignore[...]`` pragmas and drops findings they cover, so
rules never need to reason about suppression themselves.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Type

#: Sentinel rule id meaning "every rule" in a suppression pragma.
ALL_RULES = "*"

_PRAGMA = re.compile(
    r"#\s*greedwork:\s*ignore(?:\[(?P<ids>[^\]]*)\])?")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        """Stable report ordering: path, then location, then rule."""
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        """GCC-style one-line rendering (``path:line:col: RULE msg``)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.message}")


class FileContext:
    """Everything a rule may want to know about one source file."""

    def __init__(self, path: Path, source: str,
                 project_root: Optional[Path] = None) -> None:
        self.path = path
        self.project_root = project_root
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.module = module_name_for(path)
        self.display_path = display_path_for(path, project_root)
        self._suppressions = _parse_suppressions(self.lines)

    def suppressed_ids(self, line: int) -> FrozenSet[str]:
        """Rule ids suppressed on a 1-based source line.

        A pragma suppresses the line it sits on; a pragma on an
        otherwise-blank line also covers the line directly below it,
        so long statements can carry the comment above them.
        """
        return self._suppressions.get(line, frozenset())

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether a pragma on the finding's line covers its rule."""
        ids = self.suppressed_ids(finding.line)
        return ALL_RULES in ids or finding.rule_id in ids


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name for files living under a ``repro`` package.

    Uses the *last* path component named ``repro`` so that temporary
    project trees (``/tmp/.../src/repro/...``) resolve the same way as
    the real one.  Returns ``None`` for files outside any ``repro``
    package (rules that reason about the architecture skip those).
    """
    parts = path.resolve().with_suffix("").parts
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
    dotted = list(parts[idx:])
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


def display_path_for(path: Path, project_root: Optional[Path]) -> str:
    """Path as shown in reports: project-relative when possible."""
    if project_root is not None:
        try:
            return path.resolve().relative_to(
                project_root.resolve()).as_posix()
        except ValueError:
            pass
    return str(path)


def _parse_suppressions(lines: List[str]) -> Dict[int, FrozenSet[str]]:
    out: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        raw = match.group("ids")
        if raw is None:
            ids = frozenset({ALL_RULES})
        else:
            ids = frozenset(
                token.strip() for token in raw.split(",") if token.strip())
            if not ids:
                ids = frozenset({ALL_RULES})
        out[lineno] = out.get(lineno, frozenset()) | ids
        # A standalone pragma (comment-only line) covers the next line.
        if text[:match.start()].strip() == "":
            out[lineno + 1] = out.get(lineno + 1, frozenset()) | ids
    return out


class Rule:
    """Base class for checks; subclasses set the class attributes."""

    rule_id: str = "GW000"
    name: str = "unnamed"
    description: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield findings for one file (suppression handled upstream)."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST,
                message: str) -> Finding:
        """Build a :class:`Finding` anchored at an AST node."""
        return Finding(rule_id=self.rule_id, path=ctx.display_path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one registered rule by id."""
    _load_builtin_rules()
    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown rule {rule_id!r}; known rules: {known}") from None


def _load_builtin_rules() -> None:
    # Imported lazily to avoid a cycle (rule modules import this one).
    import repro.staticcheck.rules  # noqa: F401


@dataclass
class CheckResult:
    """Outcome of running the suite over a set of files."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings
