"""Cost sharing theory (Moulin-Shenker).

The paper's Fair Share allocation *is* the serial cost sharing method
of [23] applied to the cost function ``g``: users demand quantities
(rates) and share the total cost (congestion).  This package implements
serial and average-cost sharing for arbitrary increasing convex cost
functions, exposing the abstract mechanism the economics results are
stated for — and letting the ablation experiments compare the two
sharing rules' strategic properties outside the queueing context.
"""

from repro.costsharing.rules import (
    average_cost_shares,
    serial_cost_shares,
    serial_matches_fair_share,
)
from repro.costsharing.game import (
    CostGameResult,
    solve_cost_game,
)

__all__ = [
    "serial_cost_shares",
    "average_cost_shares",
    "serial_matches_fair_share",
    "CostGameResult",
    "solve_cost_game",
]
