"""The abstract cost-sharing game.

Users choose demands; a sharing rule splits ``Cost(sum q)``; each user
maximizes ``benefit_i(q_i) - share_i(q)``.  This is the economics-side
twin of the queueing game (quasi-linear instead of ordinal utilities)
and drives the ablation experiment comparing serial vs. average-cost
sharing: serial has a unique, dominance-solvable equilibrium; average
cost pricing can oscillate and exploit small demanders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.costsharing.rules import average_cost_shares, serial_cost_shares
from repro.numerics.iterate import damped_fixed_point
from repro.numerics.optimize import multistart_maximize

CostFunction = Callable[[float], float]
BenefitFunction = Callable[[float], float]


@dataclass
class CostGameResult:
    """Equilibrium of a cost-sharing game.

    Attributes
    ----------
    demands:
        Equilibrium demand vector.
    shares:
        Cost shares at the equilibrium.
    payoffs:
        ``benefit_i(q_i) - share_i``.
    converged:
        Whether best-response iteration converged.
    iterations:
        Iterations used.
    """

    demands: np.ndarray
    shares: np.ndarray
    payoffs: np.ndarray
    converged: bool
    iterations: int


def _share_function(rule: str) -> Callable[[Sequence[float], CostFunction],
                                           np.ndarray]:
    if rule == "serial":
        return serial_cost_shares
    if rule == "average":
        return average_cost_shares
    raise ValueError(f"unknown sharing rule {rule!r}; use 'serial' or "
                     "'average'")


def solve_cost_game(benefits: Sequence[BenefitFunction],
                    cost: CostFunction, rule: str = "serial",
                    demand_cap: float = 5.0,
                    q0: Optional[Sequence[float]] = None,
                    damping: float = 0.5, tol: float = 1e-9,
                    max_iter: int = 300) -> CostGameResult:
    """Best-response iteration on the cost-sharing game.

    Parameters
    ----------
    benefits:
        Per-user concave benefit functions of own demand.
    cost:
        Increasing convex total-cost function.
    rule:
        ``"serial"`` or ``"average"``.
    demand_cap:
        Upper bound of each user's demand search interval.
    """
    n = len(benefits)
    share_of = _share_function(rule)
    start = (np.full(n, demand_cap / (2.0 * n)) if q0 is None
             else np.asarray(q0, dtype=float))

    def mapping(q: np.ndarray) -> np.ndarray:
        out = q.copy()
        for i in range(n):
            def payoff(x: float, i: int = i) -> float:
                probe = out.copy()
                probe[i] = x
                share = share_of(probe, cost)[i]
                return benefits[i](x) - share

            out[i] = multistart_maximize(payoff, 0.0, demand_cap,
                                         n_scan=65).x
        return out

    outcome = damped_fixed_point(mapping, start, damping=damping, tol=tol,
                                 max_iter=max_iter)
    demands = outcome.x
    shares = share_of(demands, cost)
    payoffs = np.array([benefits[i](float(demands[i])) - float(shares[i])
                        for i in range(n)])
    return CostGameResult(demands=demands, shares=shares, payoffs=payoffs,
                          converged=outcome.converged,
                          iterations=outcome.iterations)
