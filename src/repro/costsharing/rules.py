"""Serial and average cost sharing rules.

Users demand quantities ``q_1 .. q_N``; a technology turns total demand
into total cost ``Cost(sum q)``.  A *cost sharing rule* splits that
total into individual shares ``x_i``:

* **Average cost pricing**: ``x_i = q_i * Cost(Q) / Q`` — the
  cost-sharing face of the proportional/FIFO allocation.
* **Serial cost sharing** (Moulin-Shenker): with demands sorted
  ascending, ``x_k = sum_{m<=k} [Cost(Q_m) - Cost(Q_{m-1})]/(N-m+1)``
  where ``Q_m = (N-m+1) q_m + sum_{j<m} q_j`` — the cost-sharing face
  of Fair Share.

The key serial properties mirrored from the paper: the share of user
``i`` is independent of demands larger than hers (insularity), and her
share never exceeds the unanimity bound ``Cost(N q_i)/N``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.numerics.tolerances import is_zero

CostFunction = Callable[[float], float]


def _validate(demands: Sequence[float]) -> np.ndarray:
    q = np.asarray(demands, dtype=float)
    if q.ndim != 1 or q.size == 0:
        raise ValueError("demands must be a non-empty vector")
    if np.any(q < 0.0):
        raise ValueError(f"demands must be nonnegative, got {q}")
    return q


def average_cost_shares(demands: Sequence[float],
                        cost: CostFunction) -> np.ndarray:
    """Average-cost pricing: proportional split of the total cost."""
    q = _validate(demands)
    total = float(q.sum())
    if is_zero(total):
        return np.zeros_like(q)
    return (cost(total) / total) * q


def serial_cost_shares(demands: Sequence[float],
                       cost: CostFunction) -> np.ndarray:
    """Serial cost sharing (Moulin-Shenker).

    Equal division of the marginal cost ladder: the smallest demander
    pays as if everyone demanded like her; each succeeding demander
    additionally pays an equal share of the extra cost her larger
    demand forces on the remaining coalition.
    """
    q = _validate(demands)
    order = np.argsort(q, kind="stable")
    sorted_q = q[order]
    n = q.size
    prefix = np.concatenate(([0.0], np.cumsum(sorted_q)[:-1]))
    multiplicity = n - np.arange(n)
    ladder = multiplicity * sorted_q + prefix
    shares_sorted = np.empty(n)
    cumulative = 0.0
    prev_cost = cost(0.0)
    for m in range(n):
        level_cost = cost(float(ladder[m]))
        cumulative += (level_cost - prev_cost) / (n - m)
        prev_cost = level_cost
        shares_sorted[m] = cumulative
    out = np.empty(n)
    out[order] = shares_sorted
    return out


def unanimity_bound(demand: float, n_users: int,
                    cost: CostFunction) -> float:
    """``Cost(N q)/N`` — the serial rule's worst-case share."""
    if demand < 0.0:
        raise ValueError(f"demand must be nonnegative, got {demand}")
    return cost(n_users * demand) / n_users


def serial_matches_fair_share(rates: Sequence[float],
                              atol: float = 1e-10) -> bool:
    """Cross-check: serial shares of ``g`` equal the FS allocation.

    This is the identity the paper leans on when importing the
    Moulin-Shenker results (uniqueness, revelation, coalition
    resistance): Fair Share *is* serial cost sharing of the M/M/1
    queue function.
    """
    from repro.disciplines.fair_share import FairShareAllocation

    fs = FairShareAllocation()

    def mm1_cost(x: float) -> float:
        if x >= 1.0:
            return float("inf")
        return x / (1.0 - x)

    serial = serial_cost_shares(rates, mm1_cost)
    direct = fs.congestion(rates)
    return bool(np.allclose(serial, direct, atol=atol, rtol=0.0,
                            equal_nan=True))
