"""Append-only JSONL sweep journals: interrupted sweeps resume delta-only.

A sweep over hundreds of cells is exactly the kind of job that gets
killed halfway — CI timeouts, laptop lids, OOM reapers.  The journal
makes that cheap to survive: every completed cell appends one JSON
line (fsync-free, atomic at the line level for the append sizes
involved), and a resumed sweep replays the journal, keeps every
outcome whose content key still matches the catalog + engine version,
and schedules only the missing cells.

Layout: ``.greedwork_cache/sweeps/<catalog-digest>.jsonl`` under the
working directory (``$GREEDWORK_SWEEP_DIR`` overrides), one journal
per catalog digest — so ``sweep resume`` needs no bookkeeping beyond
the catalog itself.  Records::

    {"kind": "sweep", "digest": ..., "catalog": ..., "n_cells": ...,
     "engine": ...}
    {"kind": "cell", "key": ..., "outcome": {...}}

The header is written once per ``run``/``resume`` invocation (a
journal may carry several across restarts); a header whose digest or
engine tag disagrees with the resuming catalog invalidates all
*earlier* cell records, mirroring the sim cache's engine-version
policy.  Truncated trailing lines (the kill arrived mid-write) are
ignored, not fatal.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, TextIO

from repro.exceptions import SweepError
from repro.sim.runner import ENGINE_VERSION

#: Environment override for the journal directory.
ENV_DIR = "GREEDWORK_SWEEP_DIR"

#: Default location relative to the working directory (sibling of the
#: sim and staticcheck caches).
DEFAULT_SUBDIR = os.path.join(".greedwork_cache", "sweeps")


def sweep_dir() -> str:
    """Resolved journal directory (not necessarily existing yet)."""
    return os.environ.get(ENV_DIR) or os.path.join(os.getcwd(),
                                                   DEFAULT_SUBDIR)


def journal_path(digest: str) -> str:
    """Canonical journal path for a catalog digest."""
    return os.path.join(sweep_dir(), digest + ".jsonl")


def read_journal(path: str) -> Dict[str, Dict[str, Any]]:
    """Completed cell outcomes by key from a journal on disk.

    Returns an empty mapping when the journal does not exist.  A
    ``sweep`` header whose engine tag differs from the running one
    drops everything read so far (those outcomes came from an event
    core that no longer exists); malformed or truncated lines are
    skipped.
    """
    outcomes: Dict[str, Dict[str, Any]] = {}
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue            # truncated trailing write
                kind = record.get("kind")
                if kind == "sweep":
                    if record.get("engine") != ENGINE_VERSION:
                        outcomes.clear()
                elif kind == "cell":
                    key = record.get("key")
                    outcome = record.get("outcome")
                    if isinstance(key, str) and isinstance(outcome,
                                                           dict):
                        outcomes[key] = outcome
    except OSError:
        return {}
    return outcomes


class SweepJournal:
    """Append-only writer for one sweep's journal file.

    ``fresh=True`` truncates any existing journal (``sweep run``
    semantics); the default appends (``sweep resume``).  Each record
    is flushed immediately so a killed sweep loses at most the cell
    in flight.
    """

    def __init__(self, path: str, fresh: bool = False) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            try:
                os.makedirs(directory, exist_ok=True)
            except OSError as exc:
                raise SweepError(
                    f"cannot create sweep directory {directory!r}: "
                    f"{exc}") from exc
        mode = "w" if fresh else "a"
        try:
            self._handle: Optional[TextIO] = open(
                path, mode, encoding="utf-8")
        except OSError as exc:
            raise SweepError(
                f"cannot open sweep journal {path!r}: {exc}") from exc

    def write_header(self, digest: str, catalog_name: str,
                     n_cells: int) -> None:
        """Record the catalog identity this journal extends."""
        self._write({"kind": "sweep", "digest": digest,
                     "catalog": catalog_name, "n_cells": n_cells,
                     "engine": ENGINE_VERSION})

    def write_cell(self, key: str, outcome: Dict[str, Any]) -> None:
        """Record one completed cell outcome."""
        self._write({"kind": "cell", "key": key, "outcome": outcome})

    def _write(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            raise SweepError(
                f"sweep journal {self.path!r} is already closed")
        self._handle.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def list_journals() -> List[str]:
    """Journal digests present in the sweep directory (sorted)."""
    try:
        names = sorted(os.listdir(sweep_dir()))
    except OSError:
        return []
    return [name[:-len(".jsonl")] for name in names
            if name.endswith(".jsonl")]
