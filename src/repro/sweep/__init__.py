"""Scenario-sweep orchestrator: the experiment harness as a service.

The paper's verdicts are judgments over a discipline x utility-profile
x traffic-model x rho x N grid.  All the fast primitives exist lower
in the stack — chunked C kernels, a content-keyed persistent sim
cache, precision-targeted sequential stopping, resumable engine
snapshots — but each experiment wires them by hand.  This package is
the front door that serves the whole grid as heavy traffic:

``catalog``
    Declarative scenario specs expanded into content-keyed cells.
``scheduler``
    Async orchestrator: dedup-before-dispatch against the sim cache,
    priority-aware (cheap cells first) scheduling over a persistent
    worker pool, CRN-sibling batching, streamed progress.
``journal``
    Append-only JSONL sweep journal; an interrupted sweep resumes
    delta-only.
``pareto``
    Cost-quality dominance classification (events simulated vs CI
    half-width vs verdict confidence).
``report``
    ASCII + JSON sweep reports with per-group Pareto frontiers.
"""

from repro.sweep.catalog import (
    Catalog,
    SweepCell,
    builtin_catalog,
    builtin_catalog_names,
    expand_catalog,
    load_catalog,
)
from repro.sweep.journal import SweepJournal, read_journal
from repro.sweep.pareto import (
    ParetoPoint,
    classify_points,
    compute_pareto_frontier,
    frontier_line,
    verdict_confidence,
)
from repro.sweep.report import render_report, report_document
from repro.sweep.scheduler import (
    CellOutcome,
    SweepProgress,
    SweepResult,
    SweepScheduler,
    run_sweep,
)

__all__ = [
    "Catalog",
    "SweepCell",
    "builtin_catalog",
    "builtin_catalog_names",
    "expand_catalog",
    "load_catalog",
    "SweepJournal",
    "read_journal",
    "ParetoPoint",
    "classify_points",
    "compute_pareto_frontier",
    "frontier_line",
    "verdict_confidence",
    "render_report",
    "report_document",
    "CellOutcome",
    "SweepProgress",
    "SweepResult",
    "SweepScheduler",
    "run_sweep",
]
