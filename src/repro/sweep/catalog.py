"""Declarative scenario catalogs expanded into content-keyed cells.

A *catalog* is the sweep's unit of intent: a small JSON-able spec
naming axes (service discipline, utility/rate profile, traffic model,
utilization ``rho``, population ``N``, seeds) that expands into the
cross product of *cells*.  Each cell pins one precision-targeted
simulation — the same :class:`~repro.sim.runner.SimulationConfig` +
``simulate_to_precision`` contract the experiments use — and carries a
content-keyed identity so that two cells that would run the exact same
simulation are equal by key, whatever catalog they came from.  Keys
include the engine version: bumping the event core invalidates every
journal entry the old core produced, exactly like the sim cache.

Spec format (JSON object)::

    {
      "name": "my-sweep",
      "policies": ["fifo", "fair-share"],
      "profiles": ["uniform", "linear"],
      "arrival_processes": ["poisson"],
      "service_processes": ["exponential"],
      "rhos": [0.5, 0.9],
      "n_users": [2, 4],
      "seeds": [0],
      "target_halfwidth": 0.1,
      "horizon": 8000.0,
      "warmup": 1000.0,
      "n_batches": 20,
      "max_doublings": 5
    }

Axis entries (plural keys) are lists; scalar keys set every cell's
stopping rule.  The grid keys every later stage: the scheduler
schedules cheap cells first using :meth:`SweepCell.cost_estimate`,
batches CRN siblings (same :meth:`SweepCell.crn_key`, i.e. identical
traffic — only the discipline differs) onto one worker, and the
journal records outcomes under :meth:`SweepCell.key`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import SweepError
from repro.sim.runner import ENGINE_VERSION, SimulationConfig

#: Canonical policy names a catalog may sweep (the subset of
#: :func:`repro.sim.queues.make_policy` spellings the cache can key).
POLICY_NAMES = frozenset({
    "fifo", "lifo", "ps", "fair-share", "adaptive-fair-share",
    "hol", "round-robin", "fair-queueing",
})

#: Rate-profile shapes: how the per-user rates split the load.
#: ``uniform`` gives every user the same rate; ``linear`` gives user i
#: a rate proportional to ``i+1`` (the heterogeneous 1:2:...:N profile
#: the paper's Table 1 and the bench cells use).
PROFILES = ("uniform", "linear")

_ARRIVALS = ("poisson", "deterministic", "hyperexponential")
_SERVICES = ("exponential", "deterministic", "hyperexponential")

#: Non-exponential service is only valid with nonpreemptive policies
#: (see SimulationConfig docs); catalogs crossing service laws with
#: preemptive disciplines are rejected at expansion time rather than
#: crashing in a worker.
_NONPREEMPTIVE = frozenset({"fifo", "hol", "round-robin",
                            "fair-queueing"})


@dataclass(frozen=True)
class SweepCell:
    """One precision-targeted simulation in a sweep grid.

    Frozen and hashable: cells are dict keys in the scheduler's dedup
    index, and a cell's identity is exactly its field contents (plus
    the engine version) — never object identity.
    """

    policy: str
    profile: str
    arrival_process: str
    service_process: str
    rho: float
    n_users: int
    seed: int = 0
    #: Stopping rule: grow the horizon until every user's 95% CI
    #: half-width is at or below this.
    target_halfwidth: float = 0.1
    #: Initial horizon (first rung of the geometric ladder).
    horizon: float = 8000.0
    warmup: float = 1000.0
    n_batches: int = 20
    #: Ladder length cap: ``max_horizon = warmup + window * 2**k``.
    max_doublings: int = 5

    def rates(self) -> Tuple[float, ...]:
        """Per-user arrival rates realizing ``rho`` under ``profile``.

        The switch serves at rate 1 (the paper's convention), so the
        rates sum to ``rho`` exactly; the profile only shapes the
        split.
        """
        n = self.n_users
        if self.profile == "uniform":
            weights = [1.0] * n
        else:                           # "linear": 1:2:...:N
            weights = [float(i + 1) for i in range(n)]
        total = sum(weights)
        return tuple(self.rho * w / total for w in weights)

    def config(self) -> SimulationConfig:
        """The cell's simulation config (resumable batch layout)."""
        quota = (self.horizon - self.warmup) / self.n_batches
        return SimulationConfig(
            rates=self.rates(), policy=self.policy,
            horizon=self.horizon, warmup=self.warmup,
            seed=self.seed, n_batches=self.n_batches,
            arrival_process=self.arrival_process,
            service_process=self.service_process,
            batch_quota=quota)

    def max_horizon(self) -> float:
        """Budget cap for the cell's horizon ladder."""
        window = self.horizon - self.warmup
        return self.warmup + window * (2.0 ** self.max_doublings)

    def key(self) -> str:
        """Content hash identifying the cell's exact computation.

        Two cells with equal keys would run byte-identical
        simulations under the same event core, so the scheduler runs
        one and shares the outcome.  Memoized on the instance (the
        hot paths — dedup index, warm probe, journal records, outcome
        ordering — each rehash every cell): safe because the
        dataclass is frozen, so the content cannot change under the
        cached digest.
        """
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = self._digest(exclude=())
            object.__setattr__(self, "_key", cached)
        return cached

    def crn_key(self) -> str:
        """Hash of the cell's *traffic*, excluding the discipline.

        Cells sharing a ``crn_key`` draw identical arrival streams
        (arrival draws are a pure function of the seed under the
        draw-order contract), so they are common-random-number
        siblings: the scheduler batches them onto one worker, where
        consecutive ladder rungs reuse each other's warm state.
        """
        cached = self.__dict__.get("_crn_key")
        if cached is None:
            cached = self._digest(exclude=("policy",))
            object.__setattr__(self, "_crn_key", cached)
        return cached

    def _digest(self, exclude: Tuple[str, ...]) -> str:
        payload = asdict(self)
        for field_name in exclude:
            del payload[field_name]
        payload["__engine__"] = ENGINE_VERSION
        blob = json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def cost_estimate(self) -> float:
        """Deterministic proxy for the cell's simulation cost.

        Expected events at the *initial* horizon are about
        ``2 * rho * horizon`` (arrivals plus departures); cells near
        saturation mix slowly and typically climb more ladder rungs
        before their CI certifies, so the estimate scales by
        ``1/(1-rho)``.  Only the *ordering* matters — the scheduler
        runs cheap cells first for early signal — so a heuristic is
        fine as long as it is a pure function of the cell.
        """
        window = self.horizon - self.warmup
        events = 2.0 * self.rho * (self.warmup + window)
        congestion = 1.0 / max(1e-9, 1.0 - min(self.rho, 0.999))  # greedwork: ignore[GW201] -- denominator clamped to >= 1e-9 by the max(); rho also validated in (0, 1)
        return events * congestion

    def label(self) -> str:
        """Human-readable cell id for progress lines and reports."""
        traffic = self.arrival_process
        if self.service_process != "exponential":
            traffic += f"/{self.service_process}"
        return (f"{self.policy} {self.profile} {traffic} "
                f"rho={self.rho:g} N={self.n_users} seed={self.seed}")


@dataclass
class Catalog:
    """A named, expanded list of sweep cells."""

    name: str
    cells: List[SweepCell] = field(default_factory=list)

    def digest(self) -> str:
        """Content hash of the whole catalog (the sweep identity).

        A pure function of the cell set and the engine version — not
        of the catalog name or cell order — so `run` and `resume`
        agree on the journal file whatever order the spec listed its
        axes in.
        """
        keys = sorted(cell.key() for cell in self.cells)
        blob = json.dumps(keys, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def __len__(self) -> int:
        return len(self.cells)


_AXES: Tuple[Tuple[str, str], ...] = (
    # (spec key, cell field) in expansion order.
    ("policies", "policy"),
    ("profiles", "profile"),
    ("arrival_processes", "arrival_process"),
    ("service_processes", "service_process"),
    ("rhos", "rho"),
    ("n_users", "n_users"),
    ("seeds", "seed"),
)

_AXIS_DEFAULTS: Dict[str, List[Any]] = {
    "policies": ["fifo", "fair-share"],
    "profiles": ["linear"],
    "arrival_processes": ["poisson"],
    "service_processes": ["exponential"],
    "rhos": [0.5, 0.9],
    "n_users": [4],
    "seeds": [0],
}

_SCALARS = ("target_halfwidth", "horizon", "warmup", "n_batches",
            "max_doublings")


def _axis_values(spec: Dict[str, Any], key: str) -> List[Any]:
    values = spec.get(key, _AXIS_DEFAULTS[key])
    if not isinstance(values, (list, tuple)) or not values:
        raise SweepError(
            f"catalog axis {key!r} must be a non-empty list, got "
            f"{values!r}")
    return list(values)


def _validate_cell(cell: SweepCell) -> None:
    if cell.policy not in POLICY_NAMES:
        known = ", ".join(sorted(POLICY_NAMES))
        raise SweepError(
            f"unknown policy {cell.policy!r}; known: {known}")
    if cell.profile not in PROFILES:
        raise SweepError(
            f"unknown profile {cell.profile!r}; known: "
            f"{', '.join(PROFILES)}")
    if cell.arrival_process not in _ARRIVALS:
        raise SweepError(
            f"unknown arrival process {cell.arrival_process!r}; "
            f"known: {', '.join(_ARRIVALS)}")
    if cell.service_process not in _SERVICES:
        raise SweepError(
            f"unknown service process {cell.service_process!r}; "
            f"known: {', '.join(_SERVICES)}")
    if (cell.service_process != "exponential"
            and cell.policy not in _NONPREEMPTIVE):
        raise SweepError(
            f"service process {cell.service_process!r} needs a "
            f"nonpreemptive policy, got {cell.policy!r} (the "
            f"memoryless redraw would be wrong)")
    if not 0.0 < cell.rho < 1.0:
        raise SweepError(
            f"rho must lie in (0, 1), got {cell.rho!r}")
    if cell.n_users < 1:
        raise SweepError(
            f"need at least one user, got {cell.n_users!r}")
    if cell.target_halfwidth <= 0.0:
        raise SweepError(
            f"target half-width must be positive, got "
            f"{cell.target_halfwidth!r}")
    if cell.horizon <= cell.warmup:
        raise SweepError(
            f"horizon {cell.horizon!r} must exceed warmup "
            f"{cell.warmup!r}")
    if cell.max_doublings < 0:
        raise SweepError(
            f"max_doublings must be non-negative, got "
            f"{cell.max_doublings!r}")


def expand_catalog(spec: Dict[str, Any]) -> Catalog:
    """Expand a JSON-able spec into the cross product of cells.

    Unknown spec keys are rejected (a typo'd axis name would
    otherwise silently fall back to its default and sweep the wrong
    grid); every expanded cell is validated before anything runs.
    """
    if not isinstance(spec, dict):
        raise SweepError(
            f"catalog spec must be an object, got {type(spec).__name__}")
    known = ({"name"} | {key for key, _ in _AXES} | set(_SCALARS))
    unknown = sorted(set(spec) - known)
    if unknown:
        raise SweepError(
            f"unknown catalog key(s) {', '.join(map(repr, unknown))}; "
            f"known: {', '.join(sorted(known))}")
    name = spec.get("name", "sweep")
    int_scalars = {"n_batches", "max_doublings"}
    scalars: Dict[str, Any] = {}
    for key in _SCALARS:
        if key in spec:
            scalars[key] = (int(spec[key]) if key in int_scalars
                            else float(spec[key]))
    axes = [_axis_values(spec, key) for key, _ in _AXES]
    cells: List[SweepCell] = []
    for combo in itertools.product(*axes):
        kwargs = {cell_field: value
                  for (_, cell_field), value in zip(_AXES, combo)}
        kwargs["rho"] = float(kwargs["rho"])
        kwargs["n_users"] = int(kwargs["n_users"])
        kwargs["seed"] = int(kwargs["seed"])
        cell = SweepCell(**kwargs, **scalars)
        _validate_cell(cell)
        cells.append(cell)
    if not cells:
        raise SweepError(f"catalog {name!r} expanded to zero cells")
    return Catalog(name=str(name), cells=cells)


def load_catalog(path: str) -> Catalog:
    """Read and expand a JSON catalog spec from disk."""
    try:
        with open(path, encoding="utf-8") as handle:
            spec = json.load(handle)
    except OSError as exc:
        raise SweepError(f"cannot read catalog {path!r}: {exc}") from exc
    except ValueError as exc:
        raise SweepError(
            f"catalog {path!r} is not valid JSON: {exc}") from exc
    catalog = expand_catalog(spec)
    if "name" not in spec:
        catalog.name = path
    return catalog


#: Built-in catalogs: ``smoke`` is the <=20-cell CI gate grid,
#: ``paper`` the ~200-cell load-generator grid bench_sweep.py times.
_BUILTINS: Dict[str, Dict[str, Any]] = {
    "smoke": {
        "name": "smoke",
        "policies": ["fifo", "fair-share", "fair-queueing"],
        "profiles": ["linear"],
        "arrival_processes": ["poisson"],
        "service_processes": ["exponential"],
        "rhos": [0.3, 0.6],
        "n_users": [2, 4, 8],
        "seeds": [0],
        "target_halfwidth": 0.25,
        "horizon": 3000.0,
        "warmup": 500.0,
        "max_doublings": 3,
    },
    "paper": {
        "name": "paper",
        "policies": ["fifo", "fair-share", "fair-queueing",
                     "round-robin"],
        "profiles": ["uniform", "linear"],
        "arrival_processes": ["poisson", "hyperexponential"],
        "service_processes": ["exponential"],
        "rhos": [0.3, 0.5, 0.7, 0.9],
        "n_users": [2, 4, 8],
        "seeds": [0],
        "target_halfwidth": 0.2,
        "horizon": 6000.0,
        "warmup": 1000.0,
        "max_doublings": 4,
    },
}


def builtin_catalog_names() -> List[str]:
    """Names accepted by :func:`builtin_catalog`."""
    return sorted(_BUILTINS)


def builtin_catalog(name: str) -> Catalog:
    """Expand one of the built-in catalogs by name."""
    try:
        spec = _BUILTINS[name]
    except KeyError:
        raise SweepError(
            f"unknown built-in catalog {name!r}; known: "
            f"{', '.join(builtin_catalog_names())}") from None
    return expand_catalog(spec)


def dedupe_cells(cells: Iterable[SweepCell]
                 ) -> Tuple[List[SweepCell], Dict[str, int]]:
    """Unique cells (first-seen order) plus duplicate counts by key."""
    seen: Dict[str, int] = {}
    unique: List[SweepCell] = []
    duplicates: Dict[str, int] = {}
    for cell in cells:
        cell_key = cell.key()
        if cell_key in seen:
            duplicates[cell_key] = duplicates.get(cell_key, 0) + 1
            continue
        seen[cell_key] = len(unique)
        unique.append(cell)
    return unique, duplicates
