"""Cost-quality Pareto dominance over sweep outcomes.

Every sweep cell ends with a cost (events simulated) and a quality
pair (the achieved CI half-width, and the *verdict confidence* — the
Student-t probability that the estimated mean lies within the cell's
target of the truth).  A configuration is Pareto-efficient when no
other point in its comparison group is at least as good on all three
and strictly better on one: cheaper, tighter, or more certain.  The
frontier is what the ROADMAP's "cost-quality frontier" reporting
serves — pick the discipline/stopping-rule combination that buys the
required confidence for the fewest simulated events.

Dominance convention (minimize cost, minimize half-width, maximize
confidence)::

    A dominates B  iff  cost_A <= cost_B
                    and halfwidth_A <= halfwidth_B
                    and confidence_A >= confidence_B
                    and at least one inequality is strict

Ties are kept: two coincident points are both on the frontier (the
report marks them; neither dominates the other).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.sim.stats import t_cdf, t_quantile


@dataclass(frozen=True)
class ParetoPoint:
    """One point in cost-quality space.

    ``cost`` is events simulated (lower is better); ``halfwidth`` the
    achieved CI half-width (lower is better); ``confidence`` the
    verdict confidence in [0, 1] (higher is better).  ``meta`` carries
    whatever the caller wants echoed into reports (policy, rho, ...).
    """

    label: str
    cost: float
    halfwidth: float
    confidence: float
    meta: Dict[str, Any] = field(default_factory=dict, compare=False,
                                 hash=False)


@dataclass
class PointClassification:
    """Dominance verdict for one point within its group."""

    point: ParetoPoint
    on_frontier: bool
    #: Number of points in the group that dominate this one.
    dominated_by: int
    #: Label of one dominating point (diagnostic; None on frontier).
    dominator: Optional[str] = None


def _finite(point: ParetoPoint) -> bool:
    return (math.isfinite(point.cost)
            and math.isfinite(point.halfwidth)
            and math.isfinite(point.confidence))


def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """Whether ``a`` Pareto-dominates ``b`` (see module convention).

    A point with any non-finite coordinate never dominates: NaN
    comparisons are all false, which would otherwise let a diverged
    cell "dominate" on cost alone while its quality is unknown.
    """
    if not _finite(a):
        return False
    if (a.cost > b.cost or a.halfwidth > b.halfwidth
            or a.confidence < b.confidence):
        return False
    return (a.cost < b.cost or a.halfwidth < b.halfwidth
            or a.confidence > b.confidence)


def compute_pareto_frontier(points: Sequence[ParetoPoint]) -> List[int]:
    """Indices of the nondominated points, in input order.

    O(n^2) pairwise scan — sweep groups are tens of points, and the
    quadratic form keeps the three-objective logic obvious.  Points
    with non-finite coordinates never make the frontier (a cell whose
    CI diverged is not a bargain at any cost).
    """
    out: List[int] = []
    for i, candidate in enumerate(points):
        if not _finite(candidate):
            continue
        if not any(dominates(other, candidate)
                   for j, other in enumerate(points) if j != i):
            out.append(i)
    return out


def classify_points(points: Sequence[ParetoPoint]
                    ) -> List[PointClassification]:
    """Frontier membership and dominator counts for every point."""
    frontier = set(compute_pareto_frontier(points))
    out: List[PointClassification] = []
    for i, point in enumerate(points):
        dominators = [other for j, other in enumerate(points)
                      if j != i and dominates(other, point)]
        out.append(PointClassification(
            point=point,
            on_frontier=i in frontier,
            dominated_by=len(dominators),
            dominator=dominators[0].label if dominators else None))
    return out


def frontier_line(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """The frontier sorted by cost ascending (for plotting).

    Secondary sort on half-width keeps the order total and
    deterministic when two frontier points tie on cost.
    """
    chosen = [points[i] for i in compute_pareto_frontier(points)]
    return sorted(chosen,
                  key=lambda p: (p.cost, p.halfwidth, p.label))


def verdict_confidence(halfwidth: float, target: float, dof: int,
                       confidence: float = 0.95) -> float:
    """P(|estimate - truth| <= target) implied by an achieved CI.

    The achieved half-width ``h`` at level ``confidence`` encodes a
    standard error ``se = h / t_q(confidence, dof)``; the probability
    that the estimate sits within ``target`` of the truth is then the
    two-sided Student-t mass ``2 F(target/se) - 1``.  A cell that just
    met its target reports ~``confidence``; overshooting (smaller
    ``h``) pushes the verdict confidence toward 1, undershooting
    degrades it smoothly instead of flipping a binary flag.
    """
    if target <= 0.0:
        raise ValueError(f"target must be positive, got {target}")
    if not math.isfinite(halfwidth) or dof < 1:
        return 0.0
    if halfwidth <= 0.0:
        return 1.0
    se = halfwidth / t_quantile(confidence, dof)
    return max(0.0, 2.0 * t_cdf(target / se, dof) - 1.0)
