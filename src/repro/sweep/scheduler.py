"""Async cell scheduler: the sweep's throughput-oriented dispatch core.

Given an expanded :class:`~repro.sweep.catalog.Catalog`, the scheduler
turns "run this grid" into the cheapest event stream that still
answers every cell:

1. **Journal replay** — cells already recorded in the sweep journal
   (same content key, same engine version) are returned as-is; an
   interrupted sweep restarts delta-only.
2. **In-catalog dedup** — cells with identical content keys run once;
   later occurrences share the outcome.
3. **Dedup-before-dispatch** — each remaining cell's deterministic
   chunk ladder is replayed against the on-disk sim cache
   (:func:`repro.sim.cache.peek`, no counters touched).  A cell whose
   whole ladder is warm resolves in the parent with zero worker
   round-trips and zero fresh events.
4. **Priority-aware batched dispatch** — cold cells are grouped by
   CRN key (identical traffic, different discipline) so siblings land
   on the same worker back-to-back, and batches are dispatched
   cheapest-first (early signal) over a persistent
   :class:`~repro.parallel.WorkerPool` via an asyncio loop that never
   blocks: completions are awaited, not polled.

Workers return ``(outcomes, stats_delta, busy_seconds)``; the parent
folds each delta into its own sim-cache counters (the sanctioned
``_stats`` + ``merge_stats`` protocol) so ``[sim-cache]`` summaries
cover the whole pool, and busy seconds accumulate into the worker
utilization the bench gates on.  A crashing cell is isolated into an
error outcome carrying its traceback instead of killing the sweep.
"""

from __future__ import annotations

import asyncio
import time
import traceback
from collections import deque
from dataclasses import asdict, dataclass, field, replace
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Tuple)

import numpy as np

from repro.parallel import WorkerPool
from repro.sim import cache as sim_cache
from repro.sim.runner import (
    ENGINE_VERSION,
    PrecisionResult,
    control_variate_summary,
    simulate_to_precision,
)
from repro.sweep import journal as journal_mod
from repro.sweep.catalog import Catalog, SweepCell, dedupe_cells
from repro.sweep.pareto import verdict_confidence

#: Outcome sources, cheapest first: ``journal`` (resumed), ``cache``
#: (warm ladder, resolved in the parent), ``dedup`` (shared with an
#: identical cell), ``fresh`` (simulated by a worker).
SOURCES = ("journal", "cache", "dedup", "fresh")


@dataclass
class CellOutcome:
    """Everything the journal and reports need about one cell."""

    key: str
    label: str
    policy: str
    profile: str
    arrival_process: str
    service_process: str
    rho: float
    n_users: int
    seed: int
    target_halfwidth: float
    #: Events behind the final (longest-horizon) run of the cell.
    events: int
    horizon: float
    n_rungs: int
    achieved: bool
    #: Worst per-user CI half-width at stop.
    halfwidth: float
    #: Verdict confidence implied by the achieved half-width.
    confidence: float
    mean_total_queue: float
    source: str = "fresh"
    error: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able form (journal currency)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CellOutcome":
        """Rebuild from a journal record, ignoring unknown keys."""
        known = {spec: payload[spec] for spec in cls.__dataclass_fields__
                 if spec in payload}
        return cls(**known)

    @property
    def ok(self) -> bool:
        """Whether the cell produced a usable estimate."""
        return self.error is None


@dataclass
class SweepProgress:
    """Streamed scheduler state (one tick per batch completion)."""

    done: int
    running: int
    queued: int
    total: int
    events: int
    fresh_events: int
    cache_hits: int
    cache_misses: int
    busy_s: float
    wall_s: float
    jobs: int

    @property
    def hit_rate(self) -> float:
        """Sim-cache hit rate over the sweep so far."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def utilization(self) -> float:
        """Worker busy time over available pool time so far."""
        if self.wall_s <= 0.0 or self.jobs < 1:
            return 0.0
        return min(1.0, self.busy_s / (self.wall_s * self.jobs))

    def line(self) -> str:
        """One-line progress summary for the CLI stream."""
        return (f"[sweep] done={self.done}/{self.total} "
                f"running={self.running} queued={self.queued} "
                f"events={self.events} fresh={self.fresh_events} "
                f"hit-rate={self.hit_rate:.2f} "
                f"util={self.utilization:.2f}")


@dataclass
class SweepResult:
    """Final outcome of a sweep run."""

    catalog_name: str
    digest: str
    outcomes: List[CellOutcome]
    wall_s: float
    busy_s: float
    jobs: int
    fresh_events: int
    stats_delta: Dict[str, int] = field(default_factory=dict)
    journal_path: Optional[str] = None

    @property
    def utilization(self) -> float:
        """Worker busy time over available pool time."""
        if self.wall_s <= 0.0 or self.jobs < 1:
            return 0.0
        return min(1.0, self.busy_s / (self.wall_s * self.jobs))

    @property
    def events(self) -> int:
        """Total events behind every outcome (cached or fresh)."""
        return sum(o.events for o in self.outcomes if o.ok)

    def source_counts(self) -> Dict[str, int]:
        """How many outcomes each source supplied."""
        counts = {source: 0 for source in SOURCES}
        for outcome in self.outcomes:
            counts[outcome.source] = counts.get(outcome.source, 0) + 1
        return counts

    @property
    def failures(self) -> List[CellOutcome]:
        """Outcomes that carry an error traceback."""
        return [o for o in self.outcomes if not o.ok]


def _cell_outcome(cell: SweepCell, precision: PrecisionResult,
                  source: str) -> CellOutcome:
    """Fold a finished precision run into the outcome record."""
    halfwidth = float(np.max(precision.summary.half_widths)) \
        if precision.summary.half_widths.size else float("nan")
    dof = max(1, precision.summary.n_batches - 1
              - precision.summary.n_controls)
    return CellOutcome(
        key=cell.key(), label=cell.label(), policy=cell.policy,
        profile=cell.profile, arrival_process=cell.arrival_process,
        service_process=cell.service_process, rho=cell.rho,
        n_users=cell.n_users, seed=cell.seed,
        target_halfwidth=cell.target_halfwidth,
        events=int(precision.result.events),
        horizon=float(precision.horizons[-1]),
        n_rungs=len(precision.horizons),
        achieved=bool(precision.achieved),
        halfwidth=halfwidth,
        confidence=verdict_confidence(
            halfwidth, cell.target_halfwidth, dof,
            precision.summary.confidence),
        mean_total_queue=float(precision.result.total_mean_queue),
        source=source)


def _error_outcome(cell: SweepCell, trace: str) -> CellOutcome:
    """A FAIL outcome standing in for a cell that crashed."""
    return CellOutcome(
        key=cell.key(), label=cell.label(), policy=cell.policy,
        profile=cell.profile, arrival_process=cell.arrival_process,
        service_process=cell.service_process, rho=cell.rho,
        n_users=cell.n_users, seed=cell.seed,
        target_halfwidth=cell.target_halfwidth,
        events=0, horizon=float(cell.horizon), n_rungs=0,
        achieved=False, halfwidth=float("nan"), confidence=0.0,
        mean_total_queue=float("nan"), source="fresh",
        error=trace.rstrip())


def _run_cell(cell: SweepCell) -> CellOutcome:
    """Simulate one cell to its CI target (worker unit of work)."""
    precision = simulate_to_precision(
        cell.config(), target_halfwidth=cell.target_halfwidth,
        max_horizon=cell.max_horizon())
    return _cell_outcome(cell, precision, source="fresh")


def _run_cell_batch(cells: Sequence[SweepCell],
                    cache_enabled: Optional[bool],
                    ) -> Tuple[List[Dict[str, Any]], Dict[str, int],
                               float]:
    """Run a batch of CRN-sibling cells in one worker.

    Returns ``(outcome_dicts, sim_cache_stats_delta, busy_seconds)``.
    The delta lets the parent fold this worker's cache counters into
    its own (workers are reused across batches, hence a delta rather
    than a total); busy seconds feed the utilization estimate.  A
    crashing cell yields an error outcome; its siblings still run.
    """
    if cache_enabled is not None:
        sim_cache.set_enabled(cache_enabled)
    before = sim_cache.snapshot()
    started = time.perf_counter()
    outcomes: List[Dict[str, Any]] = []
    for cell in cells:
        try:
            outcome = _run_cell(cell)
        except Exception:
            outcome = _error_outcome(cell, traceback.format_exc())
        outcomes.append(outcome.as_dict())
    busy = time.perf_counter() - started
    after = sim_cache.snapshot()
    delta = {key: after[key] - before[key] for key in after}
    return outcomes, delta, busy


def warm_outcome(cell: SweepCell) -> Optional[CellOutcome]:
    """Resolve a cell purely from the persistent sim cache, or None.

    Replays the cell's deterministic chunk ladder — the same schedule
    ``simulate_to_precision`` walks — answering every chunk with
    :func:`repro.sim.cache.peek`.  If the ladder reaches its stopping
    condition without a single miss, the outcome is byte-identical to
    what a worker would have produced and costs no dispatch, no
    pickle round-trip, and no fresh events.  The first miss aborts the
    replay: the cell goes to a worker, which will itself reuse every
    cached rung below the miss.
    """
    if not sim_cache.enabled():
        return None
    config = cell.config()
    max_horizon = cell.max_horizon()
    indexed = _indexed_final_rung(cell, config, max_horizon)
    if indexed is not None:
        final_horizon, rungs = indexed
        chunk = replace(config, horizon=final_horizon)
        key = sim_cache.config_key(chunk, ENGINE_VERSION)
        result = sim_cache.peek(key) if key is not None else None
        if result is not None:
            return _finish_warm(cell, config, result, final_horizon,
                                rungs, max_horizon)
        # Index without its result entry (partial eviction): fall
        # through to the rung-by-rung replay below.
    horizon = config.horizon
    rungs = 0
    while True:
        chunk = replace(config, horizon=horizon)
        key = sim_cache.config_key(chunk, ENGINE_VERSION)
        if key is None:
            return None
        result = sim_cache.peek(key)
        if result is None:
            return None
        rungs += 1
        summary = control_variate_summary(result)
        finite = bool(np.all(np.isfinite(summary.half_widths)))
        achieved = bool(finite and np.max(summary.half_widths)
                        <= cell.target_halfwidth)
        if achieved or horizon >= max_horizon:
            precision = PrecisionResult(
                result=result, summary=summary,
                target_halfwidth=cell.target_halfwidth,
                horizons=[], achieved=achieved)
            precision.horizons.extend(
                _ladder(config.horizon, config.warmup, rungs,
                        max_horizon))
            return _cell_outcome(cell, precision, source="cache")
        horizon = min(max_horizon,
                      config.warmup + (horizon - config.warmup) * 2.0)


def _indexed_final_rung(cell: SweepCell, config: Any,
                        max_horizon: float,
                        ) -> Optional[Tuple[float, int]]:
    """The cached ``(final_horizon, n_rungs)`` for a cell, or None.

    ``simulate_to_precision`` indexes each finished schedule under a
    content key of the initial config plus the ladder parameters; a
    hit lets the warm replay skip straight to the final rung instead
    of summarizing every intermediate one.  The entry is validated
    against the cell's own deterministic ladder — a corrupted or
    foreign entry falls back to the full replay, never a wrong
    outcome.
    """
    pkey = sim_cache.precision_key(
        config, ENGINE_VERSION, cell.target_halfwidth, 0.95, 2.0,
        max_horizon, True)
    if pkey is None:
        return None
    entry = sim_cache.peek(pkey)
    if not isinstance(entry, dict):
        return None
    final_horizon = entry.get("final_horizon")
    rungs = entry.get("n_rungs")
    if not isinstance(final_horizon, float) \
            or not isinstance(rungs, int) or rungs < 1:
        return None
    ladder = _ladder(config.horizon, config.warmup, rungs, max_horizon)
    # greedwork: ignore[GW004] -- exact identity intended: both sides
    # come from the same deterministic recurrence on the same floats.
    if len(ladder) != rungs or ladder[-1] != final_horizon:
        return None
    return final_horizon, rungs


def _finish_warm(cell: SweepCell, config: Any, result: Any,
                 final_horizon: float, rungs: int,
                 max_horizon: float) -> CellOutcome:
    """Build the cache-sourced outcome from the final rung's result.

    Recomputes the stopping verdict from the result itself (the same
    expression ``simulate_to_precision`` evaluates) rather than
    trusting the index, so the outcome is byte-identical to the
    worker's even if the index entry were stale.
    """
    summary = control_variate_summary(result)
    finite = bool(np.all(np.isfinite(summary.half_widths)))
    achieved = bool(finite and np.max(summary.half_widths)
                    <= cell.target_halfwidth)
    precision = PrecisionResult(
        result=result, summary=summary,
        target_halfwidth=cell.target_halfwidth,
        horizons=_ladder(config.horizon, config.warmup, rungs,
                         max_horizon),
        achieved=achieved)
    return _cell_outcome(cell, precision, source="cache")


def _ladder(first: float, warmup: float, rungs: int,
            max_horizon: float) -> List[float]:
    """The first ``rungs`` horizons of the geometric chunk schedule."""
    out: List[float] = []
    horizon = first
    for _ in range(rungs):
        out.append(horizon)
        horizon = min(max_horizon, warmup + (horizon - warmup) * 2.0)
    return out


class SweepScheduler:
    """Schedules a catalog's cells across a persistent worker pool.

    Parameters
    ----------
    catalog:
        The expanded scenario grid.
    jobs:
        Worker processes; 1 runs everything in-process (no pool).
    journal_path:
        Override for the journal location (default: derived from the
        catalog digest under ``.greedwork_cache/sweeps/``); ``None``
        with ``journal=False`` disables journaling entirely (tests).
    resume:
        Replay an existing journal before scheduling (``sweep
        resume``); ``False`` truncates and starts fresh (``sweep
        run``).
    progress:
        Callback receiving :class:`SweepProgress` ticks.
    pool:
        An existing :class:`~repro.parallel.WorkerPool` to reuse; the
        scheduler then never shuts it down (callers owning a pool can
        run many sweeps without re-paying spin-up).
    cache_enabled:
        Pinned sim-cache flag shipped to workers (parent overrides are
        in-memory and would otherwise be lost under spawn).
    """

    def __init__(self, catalog: Catalog, jobs: int = 1,
                 journal_path: Optional[str] = None,
                 journal: bool = True,
                 resume: bool = False,
                 progress: Optional[Callable[[SweepProgress],
                                             None]] = None,
                 pool: Optional[WorkerPool] = None,
                 cache_enabled: Optional[bool] = None) -> None:
        self.catalog = catalog
        self.jobs = max(1, jobs)
        self.digest = catalog.digest()
        self._journal_enabled = journal
        self._journal_path = journal_path or (
            journal_mod.journal_path(self.digest) if journal else None)
        self._resume = resume
        self._progress = progress
        self._pool = pool
        self._cache_enabled = cache_enabled
        # Live accounting, read by the progress callback.
        self._done = 0
        self._running = 0
        self._queued = 0
        self._events = 0
        self._busy_s = 0.0
        self._started = 0.0
        self._delta: Dict[str, int] = {}

    # -- public entry points -------------------------------------------

    def run(self) -> SweepResult:
        """Execute the sweep and return outcomes in catalog order."""
        self._started = time.perf_counter()
        unique, _duplicates = dedupe_cells(self.catalog.cells)
        by_key: Dict[str, CellOutcome] = {}

        replayed = self._replay_journal(unique, by_key)
        journal = self._open_journal()
        try:
            if journal is not None:
                journal.write_header(self.digest, self.catalog.name,
                                     len(self.catalog))
                # Re-record replayed outcomes: `run` truncated the
                # file, and resumed journals stay self-contained.
                for outcome in replayed:
                    journal.write_cell(outcome.key, outcome.as_dict())
            pending: List[SweepCell] = []
            for cell in unique:
                if cell.key() in by_key:
                    continue
                warm = warm_outcome(cell)
                if warm is not None:
                    by_key[warm.key] = warm
                    self._done += 1
                    self._events += warm.events
                    if journal is not None:
                        journal.write_cell(warm.key, warm.as_dict())
                else:
                    pending.append(cell)
            self._queued = len(pending)
            self._tick()
            batches = self._batches(pending)
            if batches:
                self._execute(batches, journal, by_key)
        finally:
            if journal is not None:
                journal.close()
        outcomes = self._ordered_outcomes(by_key)
        wall = time.perf_counter() - self._started
        return SweepResult(
            catalog_name=self.catalog.name, digest=self.digest,
            outcomes=outcomes, wall_s=wall, busy_s=self._busy_s,
            jobs=self.jobs,
            fresh_events=self._delta.get("fresh_events", 0),
            stats_delta=dict(self._delta),
            journal_path=self._journal_path)

    # -- phases ---------------------------------------------------------

    def _replay_journal(self, unique: Sequence[SweepCell],
                        by_key: Dict[str, CellOutcome],
                        ) -> List[CellOutcome]:
        """Fill ``by_key`` from the journal (resume only)."""
        if not (self._resume and self._journal_path):
            return []
        recorded = journal_mod.read_journal(self._journal_path)
        replayed: List[CellOutcome] = []
        for cell in unique:
            payload = recorded.get(cell.key())
            if payload is None:
                continue
            outcome = CellOutcome.from_dict(payload)
            if not outcome.ok:
                continue            # crashed cells are retried
            outcome.source = "journal"
            by_key[outcome.key] = outcome
            replayed.append(outcome)
            self._done += 1
            self._events += outcome.events
        return replayed

    def _open_journal(self) -> Optional[journal_mod.SweepJournal]:
        if not (self._journal_enabled and self._journal_path):
            return None
        return journal_mod.SweepJournal(self._journal_path,
                                        fresh=not self._resume)

    def _batches(self, pending: Sequence[SweepCell]
                 ) -> List[List[SweepCell]]:
        """CRN-sibling batches, cheapest batch first.

        Cells sharing a CRN key (identical traffic, different
        discipline) go to the same worker back-to-back: their ladder
        rungs land in that worker's page cache and snapshot store
        together, and their outcomes become comparable as a paired
        block as soon as the batch completes.  Within a batch and
        across batches, cheap cells run first for early signal.
        """
        groups: Dict[str, List[SweepCell]] = {}
        order: List[str] = []
        for cell in pending:
            group_key = cell.crn_key()
            if group_key not in groups:
                groups[group_key] = []
                order.append(group_key)
            groups[group_key].append(cell)
        batches = []
        for group_key in order:
            batch = sorted(groups[group_key],
                           key=lambda c: (c.cost_estimate(), c.key()))
            batches.append(batch)
        batches.sort(key=lambda batch: (batch[0].cost_estimate(),
                                        batch[0].key()))
        return batches

    def _execute(self, batches: List[List[SweepCell]],
                 journal: Optional[journal_mod.SweepJournal],
                 by_key: Dict[str, CellOutcome]) -> None:
        if self.jobs == 1:
            for batch in batches:
                self._running = len(batch)
                self._queued -= len(batch)
                self._absorb(_run_cell_batch(batch,
                                             self._cache_enabled),
                             journal, by_key)
            self._running = 0
            return
        asyncio.run(self._dispatch(batches, journal, by_key))

    async def _dispatch(self, batches: List[List[SweepCell]],
                        journal: Optional[journal_mod.SweepJournal],
                        by_key: Dict[str, CellOutcome]) -> None:
        """Dispatch batches over the pool without ever blocking.

        The loop keeps at most ``jobs`` batches in flight, waits on
        *completion events* (``asyncio.wait`` with FIRST_COMPLETED —
        awaiting a finished future never blocks the loop), and
        absorbs results as they land so journal writes and progress
        ticks stream during the sweep rather than after it.
        """
        pool = self._pool or WorkerPool(self.jobs)
        own_pool = self._pool is None
        loop = asyncio.get_running_loop()
        queue = deque(batches)
        in_flight: Dict[Any, List[SweepCell]] = {}
        try:
            while queue or in_flight:
                while queue and len(in_flight) < pool.jobs:
                    batch = queue.popleft()
                    future = loop.run_in_executor(
                        pool.executor, _run_cell_batch, batch,
                        self._cache_enabled)
                    in_flight[future] = batch
                    self._running += len(batch)
                    self._queued -= len(batch)
                done, _pending = await asyncio.wait(
                    set(in_flight), return_when=asyncio.FIRST_COMPLETED)
                for future in done:
                    batch = in_flight.pop(future)
                    self._running -= len(batch)
                    self._absorb(await future, journal, by_key)
        finally:
            if own_pool:
                pool.shutdown()

    def _absorb(self, payload: Tuple[List[Dict[str, Any]],
                                     Dict[str, int], float],
                journal: Optional[journal_mod.SweepJournal],
                by_key: Dict[str, CellOutcome]) -> None:
        """Fold one batch result into parent-side accounting."""
        outcome_dicts, delta, busy = payload
        for key in delta:
            self._delta[key] = self._delta.get(key, 0) + delta[key]
        sim_cache.merge_stats(delta)
        self._busy_s += busy
        for outcome_dict in outcome_dicts:
            outcome = CellOutcome.from_dict(outcome_dict)
            by_key[outcome.key] = outcome
            self._done += 1
            if outcome.ok:
                self._events += outcome.events
            if journal is not None:
                journal.write_cell(outcome.key, outcome.as_dict())
        self._tick()

    def _ordered_outcomes(self, by_key: Dict[str, CellOutcome]
                          ) -> List[CellOutcome]:
        """Catalog-order outcomes; duplicates marked ``dedup``."""
        outcomes: List[CellOutcome] = []
        seen: Dict[str, int] = {}
        for cell in self.catalog.cells:
            cell_key = cell.key()
            outcome = by_key[cell_key]
            if cell_key in seen:
                outcome = replace(outcome, source="dedup")
            seen[cell_key] = seen.get(cell_key, 0) + 1
            outcomes.append(outcome)
        return outcomes

    def _tick(self) -> None:
        if self._progress is None:
            return
        self._progress(SweepProgress(
            done=self._done, running=self._running,
            queued=max(0, self._queued),
            total=len(self.catalog),
            events=self._events,
            fresh_events=self._delta.get("fresh_events", 0),
            cache_hits=self._delta.get("hits", 0),
            cache_misses=self._delta.get("misses", 0),
            busy_s=self._busy_s,
            wall_s=time.perf_counter() - self._started,
            jobs=self.jobs))


def run_sweep(catalog: Catalog, jobs: int = 1,
              journal: bool = True, resume: bool = False,
              journal_path: Optional[str] = None,
              progress: Optional[Callable[[SweepProgress],
                                          None]] = None,
              pool: Optional[WorkerPool] = None,
              cache_enabled: Optional[bool] = None) -> SweepResult:
    """One-call front door: schedule a catalog and collect outcomes."""
    scheduler = SweepScheduler(
        catalog, jobs=jobs, journal=journal, resume=resume,
        journal_path=journal_path, progress=progress, pool=pool,
        cache_enabled=cache_enabled)
    return scheduler.run()
