"""Sweep reports: ASCII cost-quality frontiers and a JSON artifact.

Two views of the same outcomes:

* **Scenario groups** — cells sharing traffic, load, population, and
  stopping rule (everything but the discipline) are directly
  comparable: their arrival streams are CRN-identical, so dominance
  between them is a paired statement about the disciplines.  Each
  group gets a Pareto classification; the per-discipline *frontier
  share* (fraction of its groups where the discipline is
  Pareto-efficient) is the sweep's headline verdict table.
* **Discipline aggregates** — mean events / mean half-width / mean
  verdict confidence per discipline across the grid, with a global
  frontier in the style of ProjectScylla's cost-quality figure,
  rendered as an :class:`~repro.experiments.asciiplot.AsciiChart`
  scatter plus a marked table.

``report_document`` returns the JSON-able artifact (written by
``repro sweep run/report`` and uploaded by the CI smoke job);
``render_report`` the terminal rendering of the same content.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.asciiplot import AsciiChart
from repro.experiments.base import Table
from repro.sweep.pareto import (
    ParetoPoint,
    classify_points,
    compute_pareto_frontier,
    frontier_line,
)
from repro.sweep.scheduler import CellOutcome, SweepResult

#: A scenario group: everything that defines the traffic and the
#: stopping rule, i.e. everything but the discipline.
GroupKey = Tuple[str, str, str, float, int, int, float]


def group_key(outcome: CellOutcome) -> GroupKey:
    """The scenario-group key of one outcome."""
    return (outcome.profile, outcome.arrival_process,
            outcome.service_process, outcome.rho, outcome.n_users,
            outcome.seed, outcome.target_halfwidth)


def group_label(key: GroupKey) -> str:
    """Human-readable scenario-group name."""
    profile, arrival, service, rho, n_users, seed, target = key
    traffic = arrival if service == "exponential" \
        else f"{arrival}/{service}"
    return (f"{profile} {traffic} rho={rho:g} N={n_users} "
            f"seed={seed} target={target:g}")


def _point(outcome: CellOutcome) -> ParetoPoint:
    return ParetoPoint(
        label=outcome.policy,
        cost=float(outcome.events),
        halfwidth=float(outcome.halfwidth),
        confidence=float(outcome.confidence),
        meta={"key": outcome.key, "label": outcome.label})


def scenario_groups(outcomes: Sequence[CellOutcome]
                    ) -> Dict[GroupKey, List[CellOutcome]]:
    """Outcomes bucketed by scenario group (insertion-ordered)."""
    groups: Dict[GroupKey, List[CellOutcome]] = {}
    for outcome in outcomes:
        if outcome.source == "dedup" or not outcome.ok:
            continue
        groups.setdefault(group_key(outcome), []).append(outcome)
    return groups


def discipline_aggregates(outcomes: Sequence[CellOutcome]
                          ) -> List[ParetoPoint]:
    """Mean cost/quality per discipline across the whole grid."""
    buckets: Dict[str, List[CellOutcome]] = {}
    for outcome in outcomes:
        if outcome.source == "dedup" or not outcome.ok:
            continue
        if not math.isfinite(outcome.halfwidth):
            continue
        buckets.setdefault(outcome.policy, []).append(outcome)
    points: List[ParetoPoint] = []
    for policy in sorted(buckets):
        cells = buckets[policy]
        n = len(cells)
        points.append(ParetoPoint(
            label=policy,
            cost=sum(float(c.events) for c in cells) / n,
            halfwidth=sum(float(c.halfwidth) for c in cells) / n,
            confidence=sum(float(c.confidence) for c in cells) / n,
            meta={"cells": n,
                  "achieved": sum(1 for c in cells if c.achieved)}))
    return points


def frontier_shares(groups: Dict[GroupKey, List[CellOutcome]]
                    ) -> Dict[str, Tuple[int, int]]:
    """Per discipline: (groups where Pareto-efficient, groups entered)."""
    shares: Dict[str, Tuple[int, int]] = {}
    for cells in groups.values():
        points = [_point(outcome) for outcome in cells]
        frontier = {points[i].label
                    for i in compute_pareto_frontier(points)}
        for outcome in cells:
            wins, entered = shares.get(outcome.policy, (0, 0))
            shares[outcome.policy] = (
                wins + (1 if outcome.policy in frontier else 0),
                entered + 1)
    return shares


def report_document(result: SweepResult) -> Dict[str, Any]:
    """The JSON-able sweep report artifact."""
    groups = scenario_groups(result.outcomes)
    aggregates = discipline_aggregates(result.outcomes)
    aggregate_classes = classify_points(aggregates)
    shares = frontier_shares(groups)
    group_docs: List[Dict[str, Any]] = []
    for key, cells in groups.items():
        points = [_point(outcome) for outcome in cells]
        classes = classify_points(points)
        group_docs.append({
            "group": group_label(key),
            "cells": [{
                "policy": verdict.point.label,
                "events": verdict.point.cost,
                "halfwidth": verdict.point.halfwidth,
                "confidence": verdict.point.confidence,
                "on_frontier": verdict.on_frontier,
                "dominated_by": verdict.dominated_by,
                "dominator": verdict.dominator,
            } for verdict in classes],
        })
    return {
        "report": "sweep-pareto",
        "catalog": result.catalog_name,
        "digest": result.digest,
        "engine_sensitive": True,
        "cells_total": len(result.outcomes),
        "cells_failed": len(result.failures),
        "events_total": result.events,
        "fresh_events": result.fresh_events,
        "wall_s": result.wall_s,
        "busy_s": result.busy_s,
        "jobs": result.jobs,
        "utilization": result.utilization,
        "sources": result.source_counts(),
        "sim_cache": dict(result.stats_delta),
        "disciplines": [{
            "policy": verdict.point.label,
            "cells": verdict.point.meta["cells"],
            "achieved": verdict.point.meta["achieved"],
            "mean_events": verdict.point.cost,
            "mean_halfwidth": verdict.point.halfwidth,
            "mean_confidence": verdict.point.confidence,
            "on_frontier": verdict.on_frontier,
            "dominated_by": verdict.dominated_by,
            "frontier_share": list(shares.get(verdict.point.label,
                                              (0, 0))),
        } for verdict in aggregate_classes],
        "frontier": [point.label
                     for point in frontier_line(aggregates)],
        "groups": group_docs,
        "outcomes": [outcome.as_dict() for outcome in result.outcomes],
    }


def _summary_lines(result: SweepResult) -> List[str]:
    sources = result.source_counts()
    lines = [
        f"sweep {result.catalog_name} (digest {result.digest})",
        f"cells: {len(result.outcomes)} "
        f"(journal {sources['journal']}, cache {sources['cache']}, "
        f"dedup {sources['dedup']}, fresh {sources['fresh']})"
        + (f"; FAILED {len(result.failures)}" if result.failures
           else ""),
        f"events: {result.events} total, {result.fresh_events} fresh; "
        f"wall {result.wall_s:.2f}s at jobs={result.jobs} "
        f"(utilization {result.utilization:.2f})",
    ]
    return lines


def render_report(result: SweepResult,
                  max_groups: Optional[int] = 12) -> str:
    """Terminal rendering: summary, verdict table, frontier chart.

    ``max_groups`` caps the per-group dominance tables (the JSON
    artifact always carries all of them); ``None`` prints every
    group.
    """
    lines = _summary_lines(result)
    lines.append("")
    groups = scenario_groups(result.outcomes)
    aggregates = discipline_aggregates(result.outcomes)
    if not aggregates:
        lines.append("no successful cells to report")
        return "\n".join(lines)
    shares = frontier_shares(groups)
    table = Table(
        title="Cost-quality frontier by discipline "
              "(means over the grid)",
        headers=["policy", "cells", "mean events", "mean CI half",
                 "mean conf", "frontier", "group wins"])
    for verdict in classify_points(aggregates):
        wins, entered = shares.get(verdict.point.label, (0, 0))
        table.add_row(
            verdict.point.label,
            int(verdict.point.meta["cells"]),
            float(verdict.point.cost),
            float(verdict.point.halfwidth),
            float(verdict.point.confidence),
            "*" if verdict.on_frontier else
            f"dominated by {verdict.dominator}",
            f"{wins}/{entered}")
    lines.append(table.render())
    lines.append("")
    if len(aggregates) >= 2:
        chart = AsciiChart(
            "events (x, log10) vs CI half-width (y) -- "
            "frontier marked 'o'", width=60, height=14)
        frontier = {point.label for point in frontier_line(aggregates)}
        front = [p for p in aggregates if p.label in frontier]
        rest = [p for p in aggregates if p.label not in frontier]
        chart.add_series(
            "frontier",
            [math.log10(max(p.cost, 1.0)) for p in front],
            [p.halfwidth for p in front])
        if rest:
            chart.add_series(
                "dominated",
                [math.log10(max(p.cost, 1.0)) for p in rest],
                [p.halfwidth for p in rest])
        lines.append(chart.render())
        lines.append("")
    shown = 0
    for key, cells in groups.items():
        if max_groups is not None and shown >= max_groups:
            lines.append(
                f"... {len(groups) - shown} more group(s) in the "
                f"JSON artifact")
            break
        points = [_point(outcome) for outcome in cells]
        classes = classify_points(points)
        table = Table(title=group_label(key),
                      headers=["policy", "events", "CI half",
                               "conf", "verdict"])
        for verdict in classes:
            table.add_row(
                verdict.point.label,
                int(verdict.point.cost),
                float(verdict.point.halfwidth),
                float(verdict.point.confidence),
                "frontier" if verdict.on_frontier
                else f"dominated by {verdict.dominator}")
        lines.append(table.render())
        lines.append("")
        shown += 1
    for outcome in result.failures:
        lines.append(f"FAILED {outcome.label}:")
        lines.append(str(outcome.error))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
