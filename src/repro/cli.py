"""Command-line interface: list and run reproduction experiments.

Usage::

    greedwork list
    greedwork run t3_envy
    greedwork run all --fast --jobs 4
    greedwork run table1 --no-sim-cache
    greedwork simulate --rates 0.1 0.2 0.3 --policy fair-share
    greedwork nash --gammas 0.2 0.5 --discipline fair-share

(equivalently ``python -m repro ...``)
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

from repro.numerics.rng import default_rng


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="greedwork",
        description=("Reproduction of Shenker (SIGCOMM 1994), 'Making "
                     "Greed Work in Networks'"))
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run experiments")
    run_parser.add_argument("experiment",
                            help="experiment id, or 'all'")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--fast", action="store_true",
                            help="reduced sample sizes / horizons")
    run_parser.add_argument("--jobs", type=int, default=1,
                            help="worker processes (output is "
                                 "identical to a serial run)")
    run_parser.add_argument("--no-sim-cache", action="store_true",
                            help="do not reuse or store cached "
                                 "simulation results")

    sim_parser = sub.add_parser("simulate",
                                help="one packet-level simulation")
    sim_parser.add_argument("--rates", type=float, nargs="+",
                            required=True)
    sim_parser.add_argument("--policy", default="fifo")
    sim_parser.add_argument("--horizon", type=float, default=50000.0,
                            help="fixed horizon, or the initial "
                                 "horizon under --target-halfwidth")
    sim_parser.add_argument("--seed", type=int, default=0)
    sim_parser.add_argument("--target-halfwidth", type=float,
                            default=None, metavar="W",
                            help="stop when every user's CI "
                                 "half-width is at most W (grows the "
                                 "horizon as needed instead of "
                                 "running the fixed one)")
    sim_parser.add_argument("--replications", type=int, default=None,
                            metavar="N",
                            help="pool N independent replications "
                                 "(Student-t CI across seeds; N=1 "
                                 "reports its CI as n/a)")
    sim_parser.add_argument("--backend",
                            choices=["auto", "scalar", "chunked"],
                            default=None,
                            help="engine backend for this run "
                                 "(default: the GREEDWORK_ENGINE_"
                                 "BACKEND environment variable, else "
                                 "auto); both produce byte-identical "
                                 "measurements")
    sim_parser.add_argument("--antithetic", action="store_true",
                            help="run replications as mirrored "
                                 "antithetic pairs (N must be even)")

    nash_parser = sub.add_parser(
        "nash", help="solve a Nash equilibrium for linear users")
    nash_parser.add_argument("--gammas", type=float, nargs="+",
                             required=True,
                             help="congestion sensitivities")
    nash_parser.add_argument("--discipline", default="fair-share")
    nash_parser.add_argument("--counts", type=int, nargs="+",
                             default=None,
                             help="users per gamma (one count per "
                                  "--gammas entry); solves the K-class "
                                  "reduced game, so N can be huge")
    nash_parser.add_argument("--mode",
                             choices=("exact", "class", "mean-field"),
                             default="exact",
                             help="solver: per-user ('exact'), "
                                  "symmetry-class reduction ('class') "
                                  "or the N->inf limit ('mean-field'); "
                                  "--counts implies 'class' unless "
                                  "overridden")

    protect_parser = sub.add_parser(
        "protect",
        help="adversarial protection check for one user")
    protect_parser.add_argument("--rate", type=float, required=True,
                                help="the protected user's rate")
    protect_parser.add_argument("--users", type=int, default=3,
                                help="total number of users")
    protect_parser.add_argument("--discipline", default="fair-share")
    protect_parser.add_argument("--samples", type=int, default=150)
    protect_parser.add_argument("--seed", type=int, default=0)

    tandem_parser = sub.add_parser(
        "tandem", help="two-switch tandem simulation")
    tandem_parser.add_argument("--rates", type=float, nargs="+",
                               required=True)
    tandem_parser.add_argument("--policies", nargs=2,
                               default=("fifo", "fifo"),
                               metavar=("HOP0", "HOP1"))
    tandem_parser.add_argument("--horizon", type=float, default=30000.0)
    tandem_parser.add_argument("--seed", type=int, default=0)

    report_parser = sub.add_parser(
        "report", help="run experiments and write a markdown report")
    report_parser.add_argument("-o", "--output", default="REPORT.md")
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument("--full", action="store_true",
                               help="full fidelity (slow)")
    report_parser.add_argument("--only", nargs="+", default=None,
                               help="subset of experiment ids")
    report_parser.add_argument("--jobs", type=int, default=1,
                               help="worker processes (the report is "
                                    "identical to a serial run)")
    report_parser.add_argument("--no-sim-cache", action="store_true",
                               help="do not reuse or store cached "
                                    "simulation results")

    check_parser = sub.add_parser(
        "check",
        help="run the repo-native static-analysis suite")
    check_parser.add_argument("paths", nargs="*", default=None,
                              help="files/directories (default: src)")
    check_parser.add_argument("--format",
                              choices=("text", "json", "sarif"),
                              default="text", dest="output_format")
    check_parser.add_argument("-o", "--output", default=None,
                              help="write the report to a file "
                                   "instead of stdout")
    check_parser.add_argument("--select", default=None,
                              help="comma-separated rule ids or "
                                   "family prefixes to run (e.g. "
                                   "GW001,GW2)")
    check_parser.add_argument("--ignore", default=None,
                              help="comma-separated rule ids or "
                                   "family prefixes to skip")
    check_parser.add_argument("-j", "--jobs", type=int, default=1,
                              help="worker processes for per-file "
                                   "rules (0 = one per CPU)")
    check_parser.add_argument("--no-cache", action="store_true",
                              help="disable the incremental result "
                                   "cache")
    check_parser.add_argument("--cache-dir", default=None,
                              help="cache location (default: "
                                   "<cwd>/.greedwork_cache)")
    check_parser.add_argument("--baseline", default=None,
                              help="accepted-findings baseline file; "
                                   "matching findings do not fail "
                                   "the run")
    check_parser.add_argument("--update-baseline", action="store_true",
                              help="write current findings to the "
                                   "baseline file and exit 0")
    check_parser.add_argument("--stats", action="store_true",
                              help="print run statistics (files, "
                                   "cache hits, duration) to stderr")
    check_parser.add_argument("--list-rules", action="store_true",
                              help="list rule ids and exit")
    check_parser.add_argument("--verbose", action="store_true",
                              help="also show suppressed findings")
    check_parser.add_argument("--fix", action="store_true",
                              help="apply registered autofixes "
                                   "(verified and transactional) "
                                   "before reporting")
    check_parser.add_argument("--diff", action="store_true",
                              help="with --fix: print unified diffs "
                                   "of the applied rewrites")

    fix_parser = sub.add_parser(
        "fix",
        help="apply verified autofixes for static-analysis findings")
    fix_parser.add_argument("paths", nargs="*", default=None,
                            help="files/directories (default: src)")
    fix_parser.add_argument("--diff", action="store_true",
                            help="print unified diffs of the applied "
                                 "rewrites")
    fix_parser.add_argument("--dry-run", action="store_true",
                            help="report what would change without "
                                 "writing anything")
    fix_parser.add_argument("--format", choices=("text", "json"),
                            default="text", dest="output_format")
    fix_parser.add_argument("--select", default=None,
                            help="comma-separated rule ids or family "
                                 "prefixes to fix (e.g. GW003,GW1)")
    fix_parser.add_argument("--ignore", default=None,
                            help="comma-separated rule ids or family "
                                 "prefixes to leave alone")
    fix_parser.add_argument("--no-cache", action="store_true",
                            help="do not invalidate the incremental "
                                 "check cache for rewritten files")
    fix_parser.add_argument("--cache-dir", default=None,
                            help="cache location (default: "
                                 "<cwd>/.greedwork_cache)")
    fix_parser.add_argument("--baseline", default=None,
                            help="baseline file to apply and prune "
                                 "(default: .greedwork_baseline.json "
                                 "when present)")
    fix_parser.add_argument("--verbose", action="store_true",
                            help="also show remaining findings")

    sweep_parser = sub.add_parser(
        "sweep",
        help="scenario-sweep orchestrator: catalog -> cells -> "
             "Pareto report")
    sweep_sub = sweep_parser.add_subparsers(dest="sweep_command",
                                            required=True)
    for sweep_name, sweep_help in (
            ("run", "run a catalog from scratch (truncates any "
                    "existing journal for it)"),
            ("resume", "replay the journal, run only missing cells")):
        runlike = sweep_sub.add_parser(sweep_name, help=sweep_help)
        runlike.add_argument("--catalog", default=None, metavar="FILE",
                             help="JSON catalog spec (see "
                                  "EXPERIMENTS.md); default: the "
                                  "built-in 'smoke' catalog")
        runlike.add_argument("--builtin", default=None,
                             metavar="NAME",
                             help="built-in catalog name "
                                  "(smoke, paper)")
        runlike.add_argument("--jobs", type=int, default=1,
                             help="worker processes for cold cells")
        runlike.add_argument("--no-sim-cache", action="store_true",
                             help="do not reuse or store cached "
                                  "simulation results")
        runlike.add_argument("--no-journal", action="store_true",
                             help="do not write a sweep journal")
        runlike.add_argument("-o", "--output", default=None,
                             metavar="FILE",
                             help="also write the JSON report "
                                  "artifact here")
        runlike.add_argument("--max-groups", type=int, default=12,
                             help="per-group tables shown in the "
                                  "ASCII report (-1 = all)")
        runlike.add_argument("--quiet", action="store_true",
                             help="suppress the progress stream on "
                                  "stderr")
    sweep_report = sweep_sub.add_parser(
        "report",
        help="regenerate the Pareto report from the journal "
             "(no simulation)")
    sweep_report.add_argument("--catalog", default=None, metavar="FILE")
    sweep_report.add_argument("--builtin", default=None, metavar="NAME")
    sweep_report.add_argument("-o", "--output", default=None,
                              metavar="FILE")
    sweep_report.add_argument("--max-groups", type=int, default=12)

    explain_parser = sub.add_parser(
        "explain",
        help="explain a static-analysis rule: rationale, minimal "
             "triggering example, approved fix/suppression")
    explain_parser.add_argument("rules", nargs="*", metavar="RULE",
                                help="rule ids or family prefixes "
                                     "(e.g. GW401, GW5xx); with no "
                                     "argument, list every rule")
    return parser


def _cmd_list() -> int:
    from repro.experiments.registry import all_experiments, claim_of

    for experiment_id in all_experiments():
        print(f"{experiment_id:20s} {claim_of(experiment_id)}")
    return 0


def _cmd_run(experiment: str, seed: int, fast: bool, jobs: int,
             no_sim_cache: bool) -> int:
    from repro.exceptions import ReproError
    from repro.experiments.registry import all_experiments, run_experiments
    from repro.sim import cache as sim_cache

    if no_sim_cache:
        sim_cache.set_enabled(False)
    try:
        ids = all_experiments() if experiment == "all" else [experiment]
        reports = run_experiments(ids, seed=seed, fast=fast, jobs=jobs)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if no_sim_cache:
            sim_cache.set_enabled(None)
    failures = 0
    for report in reports:
        print(report.render())
        print()
        if not report.passed:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) FAILED")
    # Stats go to stderr so stdout stays byte-identical across
    # serial/parallel and cold/warm-cache runs (CI greps this line).
    print(sim_cache.stats().line(), file=sys.stderr)
    return 1 if failures else 0


def _cmd_simulate(rates: List[float], policy: str, horizon: float,
                  seed: int, target_halfwidth: Optional[float] = None,
                  replications: Optional[int] = None,
                  antithetic: bool = False,
                  backend: Optional[str] = None) -> int:
    from repro.experiments.base import Table
    from repro.sim.runner import (ENV_ENGINE_BACKEND, SimulationConfig,
                                  replicate, simulate,
                                  simulate_to_precision)

    if backend is not None:
        os.environ[ENV_ENGINE_BACKEND] = backend
    config = SimulationConfig(rates=rates, policy=policy,
                              horizon=horizon, warmup=horizon * 0.05,
                              seed=seed)
    if replications is not None:
        summary = replicate(config, n_replications=replications,
                            antithetic=antithetic)
        labels = summary.half_width_labels()
        table = Table(
            title=(f"policy={policy} horizon={horizon:g} "
                   f"replications={replications}"
                   + (" (antithetic pairs)" if antithetic else "")),
            headers=["user", "rate", "mean queue", "CI half"])
        for i, rate in enumerate(rates):
            table.add_row(i, float(rate),
                          float(summary.mean_queues[i]), labels[i])
        print(table.render())
        return 0
    if target_halfwidth is not None:
        precision = simulate_to_precision(
            config, target_halfwidth=target_halfwidth)
        result = precision.result
        table = Table(
            title=(f"policy={result.policy_name} "
                   f"target-halfwidth={target_halfwidth:g} "
                   f"horizon={precision.horizons[-1]:g}"),
            headers=["user", "rate", "mean queue", "CI half",
                     "throughput"])
        for i, rate in enumerate(rates):
            table.add_row(i, float(rate),
                          float(precision.summary.means[i]),
                          float(precision.summary.half_widths[i]),
                          float(result.throughputs[i]))
        print(table.render())
        chunks = ", ".join(f"{h:g}" for h in precision.horizons)
        print(f"schedule: {chunks}  achieved: {precision.achieved}  "
              f"controls: "
              f"{', '.join(precision.summary.control_names) or 'none'}")
        return 0 if precision.achieved else 1
    result = simulate(config)
    table = Table(title=f"policy={result.policy_name} horizon={horizon:g}",
                  headers=["user", "rate", "mean queue", "CI half",
                           "throughput"])
    for i, rate in enumerate(rates):
        table.add_row(i, float(rate), float(result.mean_queues[i]),
                      float(result.batch.half_widths[i]),
                      float(result.throughputs[i]))
    print(table.render())
    return 0


def _cmd_nash(gammas: List[float], discipline: str,
              counts: Optional[List[int]] = None,
              mode: str = "exact") -> int:
    from repro.disciplines.registry import make_discipline
    from repro.experiments.base import Table
    from repro.game.classes import solve_nash_classes
    from repro.game.meanfield import solve_nash_meanfield
    from repro.game.nash import solve_nash
    from repro.users.families import LinearUtility

    allocation = make_discipline(discipline)
    if counts is not None and len(counts) != len(gammas):
        print(f"error: {len(counts)} counts for {len(gammas)} gammas",
              file=sys.stderr)
        return 2
    if counts is not None and mode == "exact":
        mode = "class"              # counts say 'solve in class space'
    profile = [LinearUtility(gamma=g) for g in gammas]

    if mode == "exact":
        result = solve_nash(allocation, profile)
        table = Table(title=f"Nash equilibrium under {allocation.name}",
                      headers=["user", "gamma", "rate", "congestion",
                               "utility"])
        for i, gamma in enumerate(gammas):
            table.add_row(i, float(gamma), float(result.rates[i]),
                          float(result.congestion[i]),
                          float(result.utilities[i]))
        print(table.render())
        print(f"converged: {result.converged}  "
              f"max unilateral gain: {result.max_gain:.2e}")
        return 0

    class_counts = counts if counts is not None else [1] * len(gammas)
    solver = (solve_nash_meanfield if mode == "mean-field"
              else solve_nash_classes)
    outcome = solver(allocation, profile, counts=class_counts)
    table = Table(
        title=f"{mode} equilibrium under {allocation.name} "
              f"(N={outcome.n_users}, K={len(gammas)})",
        headers=["class", "gamma", "users", "rate", "congestion",
                 "utility"])
    for k, gamma in enumerate(gammas):
        table.add_row(k, float(gamma), int(outcome.counts[k]),
                      float(outcome.class_rates[k]),
                      float(outcome.class_congestion[k]),
                      float(outcome.class_utilities[k]))
    print(table.render())
    print(f"converged: {outcome.converged}  "
          f"max class gain: {outcome.max_gain:.2e}  "
          f"per-user spot gain: {outcome.spot_gain:.2e}")
    return 0


def _cmd_protect(rate: float, users: int, discipline: str, samples: int,
                 seed: int) -> int:
    import numpy as np_local

    from repro.disciplines.registry import make_discipline
    from repro.experiments.base import Table
    from repro.game.protection import worst_case_congestion

    allocation = make_discipline(discipline)
    report = worst_case_congestion(
        allocation, 0, rate, users,
        rng=default_rng(seed), n_samples=samples)
    table = Table(
        title=f"Protection of a rate-{rate:g} user among {users} "
              f"({allocation.name})",
        headers=["bound g(Nr)/N", "worst congestion found",
                 "protective"])
    table.add_row(report.bound, report.worst_congestion,
                  report.protective)
    print(table.render())
    print(f"worst opponents: {np_local.round(report.worst_opponents, 4)}")
    return 0


def _cmd_tandem(rates: List[float], policies: List[str], horizon: float,
                seed: int) -> int:
    from repro.experiments.base import Table
    from repro.network.tandem import TandemConfig, simulate_tandem

    result = simulate_tandem(TandemConfig(
        rates=rates, policies=tuple(policies), horizon=horizon,
        warmup=horizon * 0.05, seed=seed))
    table = Table(
        title=f"tandem {policies[0]} -> {policies[1]}, "
              f"horizon {horizon:g}",
        headers=["user", "rate", "hop-0 mean queue",
                 "hop-1 mean queue", "total"])
    for i, rate in enumerate(rates):
        table.add_row(i, float(rate), float(result.mean_queues[0][i]),
                      float(result.mean_queues[1][i]),
                      float(result.total_mean_queues[i]))
    print(table.render())
    return 0


def _split_selectors(raw: Optional[str]) -> Optional[List[str]]:
    if not raw:
        return None
    return [token for token in
            (t.strip() for t in raw.split(",")) if token]


def _default_check_paths(paths: Optional[List[str]]) -> List[str]:
    if paths:
        return paths
    return ["src"] if os.path.isdir("src") else ["."]


def _report_missing(paths: List[str]) -> bool:
    missing = [p for p in paths if not os.path.exists(p)]
    for p in missing:
        print(f"error: no such file or directory: {p}",
              file=sys.stderr)
    return bool(missing)


def _cmd_check(args: "argparse.Namespace") -> int:
    from repro.staticcheck import (
        CheckUsageError,
        all_rules,
        render_json,
        render_sarif,
        render_stats,
        render_text,
        run_checks,
        select_rules,
        write_baseline,
    )
    from repro.staticcheck.baseline import DEFAULT_BASELINE_NAME

    if args.list_rules:
        for rule in all_rules():
            scope = "project" if rule.scope == "project" else "file   "
            print(f"{rule.rule_id}  [{scope}] {rule.name:24s} "
                  f"{rule.description}")
        return 0

    try:
        rules = select_rules(all_rules(),
                             select=_split_selectors(args.select),
                             ignore=_split_selectors(args.ignore))
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    if args.fix and args.update_baseline:
        print("error: --fix and --update-baseline are mutually "
              "exclusive (fix first, then accept what remains)",
              file=sys.stderr)
        return 2

    paths = _default_check_paths(args.paths)
    if _report_missing(paths):
        return 2

    baseline_path = args.baseline
    if args.update_baseline and baseline_path is None:
        baseline_path = DEFAULT_BASELINE_NAME
    active_baseline = None if args.update_baseline else (
        baseline_path if baseline_path is not None
        and os.path.exists(baseline_path) else None)
    fix_result = None
    try:
        if args.fix:
            from repro.staticcheck.fixers import run_fix

            if active_baseline is None \
                    and os.path.exists(DEFAULT_BASELINE_NAME):
                active_baseline = DEFAULT_BASELINE_NAME
            fix_result = run_fix(
                paths, rules=rules,
                cache=not args.no_cache,
                cache_dir=args.cache_dir,
                baseline=active_baseline)
            result = fix_result.check
        else:
            result = run_checks(
                paths, rules=rules,
                jobs=args.jobs,
                cache=not args.no_cache,
                cache_dir=args.cache_dir,
                baseline=active_baseline)
    except CheckUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        write_baseline(baseline_path, result.findings)
        print(f"baseline written: {baseline_path} "
              f"({len(result.findings)} accepted finding(s))")
        return 0

    if args.output_format == "json":
        report = render_json(result, fix=fix_result)
    elif args.output_format == "sarif":
        report = render_sarif(result, rules=rules, fix=fix_result)
    else:
        report = render_text(result, verbose=args.verbose)
        if fix_result is not None:
            from repro.staticcheck.reporters import render_fix_text

            report = (render_fix_text(fix_result, diff=args.diff)
                      + "\n\n" + report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)
    if args.stats:
        print(render_stats(result), file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_fix(args: "argparse.Namespace") -> int:
    from repro.staticcheck import (
        CheckUsageError,
        all_rules,
        render_text,
        select_rules,
    )
    from repro.staticcheck.baseline import DEFAULT_BASELINE_NAME
    from repro.staticcheck.fixers import run_fix
    from repro.staticcheck.reporters import render_fix_text, render_json

    try:
        rules = select_rules(all_rules(),
                             select=_split_selectors(args.select),
                             ignore=_split_selectors(args.ignore))
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    paths = _default_check_paths(args.paths)
    if _report_missing(paths):
        return 2
    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE_NAME):
        baseline_path = DEFAULT_BASELINE_NAME
    try:
        result = run_fix(paths, rules=rules,
                         dry_run=args.dry_run,
                         cache=not args.no_cache,
                         cache_dir=args.cache_dir,
                         baseline=baseline_path)
    except CheckUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(render_json(result.check, fix=result))
    else:
        print(render_fix_text(result, diff=args.diff))
        if args.verbose and not result.check.ok:
            print()
            print(render_text(result.check))
    return 0 if result.check.ok else 1


#: Rule-family display names, keyed by id prefix (GW1xx = "GW1").
_RULE_FAMILIES = {
    "GW0": "contracts",
    "GW1": "perf",
    "GW2": "numerics",
    "GW3": "whole-program",
    "GW4": "state-contract",
    "GW5": "determinism",
    "GW6": "parallel-safety",
}


def _cmd_explain(selectors: List[str]) -> int:
    """Print rationale/example/fix for rules, from their docstrings.

    The ``explain`` output *is* the class docstring (dedented), so the
    documentation cannot drift from the rule implementation: editing
    the rule's Rationale/Example/Fix sections updates both.  With no
    selector, print the one-line catalog instead: id, family, summary,
    and whether ``repro fix`` has a registered autofixer for it.
    """
    import inspect

    from repro.staticcheck import all_rules, select_rules

    if not selectors:
        from repro.staticcheck.fixers import fixable_rule_ids

        fixable = set(fixable_rule_ids())
        for rule in all_rules():
            family = _RULE_FAMILIES.get(rule.rule_id[:3], "misc")
            marker = "fixable" if rule.rule_id in fixable else "-"
            summary = " ".join(rule.description.split())
            print(f"{rule.rule_id}  {family:<15} {marker:<8} "
                  f"{rule.name}: {summary}")
        return 0

    try:
        chosen = select_rules(all_rules(), select=selectors)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    blocks = []
    for rule in chosen:
        scope = "project" if rule.scope == "project" else "file"
        lines = [f"{rule.rule_id} ({rule.name}, {scope}-scope)",
                 f"  {rule.description}"]
        doc = inspect.getdoc(type(rule))
        if doc:
            lines.append("")
            lines.extend(f"  {line}" if line else ""
                         for line in doc.splitlines())
        blocks.append("\n".join(lines))
    try:
        print("\n\n".join(blocks))
    except BrokenPipeError:  # reader (head, a pager) closed early
        return 0
    return 0


def _sweep_catalog(args: "argparse.Namespace"):
    """Resolve the catalog a ``sweep`` subcommand addresses."""
    from repro.exceptions import SweepError
    from repro.sweep import builtin_catalog, load_catalog

    if args.catalog and args.builtin:
        raise SweepError(
            "--catalog and --builtin are mutually exclusive")
    if args.catalog:
        return load_catalog(args.catalog)
    return builtin_catalog(args.builtin or "smoke")


def _cmd_sweep(args: "argparse.Namespace") -> int:
    import json

    from repro.exceptions import ReproError
    from repro.sim import cache as sim_cache
    from repro.sweep import (CellOutcome, SweepProgress, SweepResult,
                             read_journal, render_report,
                             report_document, run_sweep)
    from repro.sweep.journal import journal_path

    try:
        catalog = _sweep_catalog(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    max_groups = None if args.max_groups < 0 else args.max_groups

    if args.sweep_command == "report":
        # Rebuild the report from the journal alone: no simulation,
        # no cache traffic — the artifact is a pure function of what
        # the last run/resume recorded.
        path = journal_path(catalog.digest())
        recorded = read_journal(path)
        outcomes = []
        missing = 0
        seen = set()
        for cell in catalog.cells:
            payload = recorded.get(cell.key())
            if payload is None:
                missing += 1
                continue
            outcome = CellOutcome.from_dict(payload)
            outcome.source = ("dedup" if cell.key() in seen
                              else "journal")
            seen.add(cell.key())
            outcomes.append(outcome)
        if not outcomes:
            print(f"error: no journal for catalog {catalog.name!r} "
                  f"(digest {catalog.digest()}); run "
                  f"`repro sweep run` first", file=sys.stderr)
            return 2
        result = SweepResult(
            catalog_name=catalog.name, digest=catalog.digest(),
            outcomes=outcomes, wall_s=0.0, busy_s=0.0, jobs=0,
            fresh_events=0, journal_path=path)
        if missing:
            print(f"[sweep] {missing} cell(s) not in the journal yet; "
                  f"`repro sweep resume` completes them",
                  file=sys.stderr)
        print(render_report(result, max_groups=max_groups), end="")
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(report_document(result), handle, indent=2)
            print(f"[sweep] JSON artifact: {args.output}",
                  file=sys.stderr)
        return 1 if result.failures else 0

    no_cache = args.no_sim_cache
    if no_cache:
        sim_cache.set_enabled(False)

    def _progress(progress: "SweepProgress") -> None:
        print(progress.line(), file=sys.stderr)

    try:
        result = run_sweep(
            catalog, jobs=args.jobs, journal=not args.no_journal,
            resume=(args.sweep_command == "resume"),
            progress=None if args.quiet else _progress,
            cache_enabled=False if no_cache else None)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if no_cache:
            sim_cache.set_enabled(None)
    print(render_report(result, max_groups=max_groups), end="")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report_document(result), handle, indent=2)
        print(f"[sweep] JSON artifact: {args.output}", file=sys.stderr)
    print(sim_cache.stats().line(), file=sys.stderr)
    return 1 if result.failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    np.set_printoptions(precision=5, suppress=True)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.seed, args.fast,
                        args.jobs, args.no_sim_cache)
    if args.command == "simulate":
        return _cmd_simulate(args.rates, args.policy, args.horizon,
                             args.seed, args.target_halfwidth,
                             args.replications, args.antithetic,
                             args.backend)
    if args.command == "nash":
        return _cmd_nash(args.gammas, args.discipline,
                         counts=args.counts, mode=args.mode)
    if args.command == "protect":
        return _cmd_protect(args.rate, args.users, args.discipline,
                            args.samples, args.seed)
    if args.command == "tandem":
        return _cmd_tandem(args.rates, args.policies, args.horizon,
                           args.seed)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "fix":
        return _cmd_fix(args)
    if args.command == "explain":
        return _cmd_explain(args.rules)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "report":
        from repro.experiments.report import generate_report
        from repro.sim import cache as sim_cache

        if args.no_sim_cache:
            sim_cache.set_enabled(False)
        try:
            failures = generate_report(args.output, fast=not args.full,
                                       seed=args.seed,
                                       experiment_ids=args.only,
                                       jobs=args.jobs)
        finally:
            if args.no_sim_cache:
                sim_cache.set_enabled(None)
        print(sim_cache.stats().line(), file=sys.stderr)
        return 1 if failures else 0
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
