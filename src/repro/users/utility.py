"""The utility-function interface and AU acceptance checking.

A utility represents one user's *ordinal* preferences over service
allocations ``(r, c)``: amount of service ``r`` and congestion ``c``
(average queue length).  The paper's acceptance set ``AU`` requires
strict monotonicity (increasing in ``r``, decreasing in ``c``), C^2
smoothness, and a curvature condition whose reading is ambiguous in
the paper (its text says "convex function"; its own constructions are
concave — see :func:`check_acceptable`, which supports both, defaulting
to the concave/convex-preferences reading).

Infinite congestion (allocations outside the stable region) must be
supported: ``value(r, inf) = -inf``, which is how learning dynamics
punish overload.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.exceptions import UtilityDomainError
from repro.numerics.tolerances import is_zero

_H = 1e-6


class Utility(ABC):
    """Ordinal preferences over allocations ``(r, c)``.

    Subclasses implement :meth:`value`; derivative methods have numeric
    defaults that concrete families override with closed forms.
    """

    @abstractmethod
    def value(self, r: float, c: float) -> float:
        """Utility of receiving throughput ``r`` at congestion ``c``.

        Must return ``-inf`` when ``c`` is infinite.
        """

    def __call__(self, r: float, c: float) -> float:
        return self.value(r, c)

    def value_grid(self, rs: np.ndarray, cs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`value` over aligned rate/congestion arrays.

        The default loops over the points (bit-identical to scalar
        calls); the closed-form families override it with one numpy
        pass so batched solvers stay batched end to end.
        """
        r_arr = np.asarray(rs, dtype=float)
        c_arr = np.asarray(cs, dtype=float)
        return np.asarray(
            [self.value(r, c)
             for r, c in zip(r_arr.tolist(), c_arr.tolist())], dtype=float)

    # -- derivatives -----------------------------------------------------

    def du_dr(self, r: float, c: float) -> float:
        """``dU/dr`` (positive on AU); numeric default."""
        return (self.value(r + _H, c) - self.value(r - _H, c)) / (2.0 * _H)

    def du_dc(self, r: float, c: float) -> float:
        """``dU/dc`` (negative on AU); numeric default."""
        return (self.value(r, c + _H) - self.value(r, c - _H)) / (2.0 * _H)

    def marginal_ratio(self, r: float, c: float) -> float:
        """``M(r, c) = (dU/dr) / (dU/dc)``.

        This is the marginal rate of substitution between throughput
        and congestion; it is negative on AU and is the left-hand side
        of both the Nash FDC (``M = -dC_i/dr_i``) and the Pareto FDC
        (``M = -f'``).
        """
        denominator = self.du_dc(r, c)
        if is_zero(denominator):
            raise UtilityDomainError(
                f"dU/dc vanished at (r={r}, c={c}); utility is not in AU")
        return self.du_dr(r, c) / denominator

    # -- comparisons -------------------------------------------------------

    def prefers(self, allocation_a: Tuple[float, float],
                allocation_b: Tuple[float, float]) -> bool:
        """Strict preference of allocation ``a`` over ``b``."""
        return (self.value(*allocation_a) > self.value(*allocation_b))

    def envies(self, own: Tuple[float, float],
               other: Tuple[float, float]) -> bool:
        """Envy: would this user strictly prefer the *other* allocation?"""
        return self.value(*other) > self.value(*own)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


@dataclass
class AcceptanceReport:
    """Outcome of a numeric AU-membership check."""

    is_acceptable: bool
    violations: List[str] = field(default_factory=list)
    points_checked: int = 0


def check_acceptable(utility: Utility,
                     r_range: Tuple[float, float] = (0.02, 0.9),
                     c_range: Tuple[float, float] = (0.05, 10.0),
                     n_grid: int = 7,
                     curvature: str = "concave",
                     tol: float = 1e-8) -> AcceptanceReport:
    """Numerically check AU membership on a grid.

    Always verifies strict monotonicity (``dU/dr > 0``, ``dU/dc < 0``).
    The curvature condition is selectable because the paper is
    ambiguous: the text of Section 3.2 says "convex function", but the
    explicit Lemma-5 utilities are strictly *concave* functions and the
    appendix proofs (Lemma 4, Theorem 3) compose utilities with convex
    allocation functions in the way that requires concavity — i.e. the
    intended class is convex *preferences*.

    Parameters
    ----------
    curvature:
        ``"concave"`` (default; the reading consistent with the
        paper's own constructions), ``"convex"`` (the paper's literal
        wording), or ``"quasiconcave"`` (convex preferences in the
        ordinal sense, via the bordered-Hessian test).
    """
    if curvature not in ("concave", "convex", "quasiconcave"):
        raise ValueError(
            f"curvature must be concave/convex/quasiconcave, got "
            f"{curvature!r}")
    violations: List[str] = []
    rs = np.linspace(r_range[0], r_range[1], n_grid)
    cs = np.linspace(c_range[0], c_range[1], n_grid)
    checked = 0
    # Scalar derivative probes on a small grid: .tolist() marks the
    # per-point iteration as deliberate.
    for r in rs.tolist():
        for c in cs.tolist():
            checked += 1
            ur = utility.du_dr(float(r), float(c))
            uc = utility.du_dc(float(r), float(c))
            if not ur > tol:
                violations.append(f"dU/dr = {ur:.3e} <= 0 at ({r:.3f}, {c:.3f})")
            if not uc < -tol:
                violations.append(f"dU/dc = {uc:.3e} >= 0 at ({r:.3f}, {c:.3f})")
            urr, ucc, urc = _hessian_entries(utility, float(r), float(c))
            scale = 1e-5 * (1.0 + abs(urr) + abs(ucc) + abs(urc))
            if curvature == "convex":
                if urr < -scale or ucc < -scale:
                    violations.append(
                        f"not convex at ({r:.3f}, {c:.3f}): "
                        f"U_rr={urr:.3e}, U_cc={ucc:.3e}")
                elif urr * ucc - urc * urc < -scale * scale:
                    violations.append(
                        f"Hessian determinant negative at ({r:.3f}, "
                        f"{c:.3f})")
            elif curvature == "concave":
                if urr > scale or ucc > scale:
                    violations.append(
                        f"not concave at ({r:.3f}, {c:.3f}): "
                        f"U_rr={urr:.3e}, U_cc={ucc:.3e}")
                elif urr * ucc - urc * urc < -scale * scale:
                    violations.append(
                        f"Hessian determinant negative at ({r:.3f}, "
                        f"{c:.3f})")
            else:
                # Quasi-concavity via the bordered Hessian:
                # det [[0, Ur, Uc], [Ur, Urr, Urc], [Uc, Urc, Ucc]] >= 0.
                bordered = (-ur * (ur * ucc - urc * uc)
                            + uc * (ur * urc - urr * uc))
                if bordered < -scale * (ur * ur + uc * uc):
                    violations.append(
                        f"bordered Hessian negative at ({r:.3f}, "
                        f"{c:.3f}): {bordered:.3e}")
    return AcceptanceReport(is_acceptable=not violations,
                            violations=violations, points_checked=checked)


def _hessian_entries(utility: Utility, r: float,
                     c: float) -> Tuple[float, float, float]:
    """(U_rr, U_cc, U_rc) by differencing the first derivatives.

    Differencing ``du_dr``/``du_dc`` (analytic in the concrete
    families) is far better conditioned than second differences of the
    value, which matters for the steeply curved exponential utilities.
    """
    h = 1e-5
    urr = (utility.du_dr(r + h, c) - utility.du_dr(r - h, c)) / (2.0 * h)
    ucc = (utility.du_dc(r, c + h) - utility.du_dc(r, c - h)) / (2.0 * h)
    urc = (utility.du_dr(r, c + h) - utility.du_dr(r, c - h)) / (2.0 * h)
    return urr, ucc, urc
