"""Concrete utility families.

A note on curvature.  The paper's Section 3.2 says utilities are
"convex functions", but its own Lemma-5 construction is a strictly
*concave* function and the appendix proofs compose utilities with
convex allocation functions in the way that needs concavity — the
intended class is convex *preferences*.  This library's default AU
reading is therefore concave (see
:func:`repro.users.utility.check_acceptable`):

* in concave AU: :class:`LinearUtility`, :class:`ExponentialUtility`,
  :class:`PowerUtility` with ``p <= 1 <= q``, :class:`QuadraticUtility`
  with ``b <= 0``;
* convex as a function (the paper's literal wording):
  :class:`LinearUtility`, :class:`BiconvexUtility`,
  :class:`PowerUtility` with ``p >= 1 >= q``,
  :class:`QuadraticUtility` with ``b >= 0``;
* outside AU on any reading: :class:`ThresholdUtility` (the
  Ferguson-style preferences of Section 5.3; it is not strictly
  monotone in ``r`` past the threshold and not C^2) — kept for
  negative tests and the related-work comparison.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.users.utility import Utility


class LinearUtility(Utility):
    """``U = a r - gamma c``.

    The workhorse profile of Section 4.2.3 (the ``1 - N`` eigenvalue
    example uses ``U = r - gamma c``).  Linear, hence convex; marginal
    ratio is the constant ``-a / gamma``.
    """

    def __init__(self, gamma: float, a: float = 1.0) -> None:
        if gamma <= 0.0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        if a <= 0.0:
            raise ValueError(f"a must be positive, got {a}")
        self.gamma = float(gamma)
        self.a = float(a)

    def value(self, r: float, c: float) -> float:
        if math.isinf(c):
            return -math.inf
        return self.a * r - self.gamma * c

    def value_grid(self, rs: np.ndarray, cs: np.ndarray) -> np.ndarray:
        r = np.asarray(rs, dtype=float)
        c = np.asarray(cs, dtype=float)
        return np.where(np.isinf(c), -math.inf, self.a * r - self.gamma * c)

    def du_dr(self, r: float, c: float) -> float:
        return self.a

    def du_dc(self, r: float, c: float) -> float:
        return -self.gamma

    def marginal_ratio(self, r: float, c: float) -> float:
        return -self.a / self.gamma

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearUtility(gamma={self.gamma}, a={self.a})"


class ExponentialUtility(Utility):
    """The Lemma-5 family:

    ``U = -(alpha^2/beta) exp(-(beta/alpha)(r - r_ref))
         - (gamma^2/nu)  exp( (nu/gamma) (c - c_ref))``.

    At the anchor ``(r_ref, c_ref)``: ``dU/dr = alpha``,
    ``dU/dc = -gamma``, so ``M = -alpha/gamma``; ``beta`` and ``nu``
    control curvature.  With ``alpha/gamma`` matched to ``dC_i/dr_i``
    and curvature large enough, the anchor becomes a (globally optimal)
    best response — the construction used throughout the paper's
    uniqueness/characterization proofs.

    Both terms are strictly concave, so this family sits in concave AU
    (despite the paper introducing it under the label "convex" — see
    the module docstring).
    """

    def __init__(self, alpha: float, beta: float, gamma: float, nu: float,
                 r_ref: float = 0.0, c_ref: float = 0.0) -> None:
        for name, val in (("alpha", alpha), ("beta", beta),
                          ("gamma", gamma), ("nu", nu)):
            if val <= 0.0:
                raise ValueError(f"{name} must be positive, got {val}")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.nu = float(nu)
        self.r_ref = float(r_ref)
        self.c_ref = float(c_ref)

    def value(self, r: float, c: float) -> float:
        if math.isinf(c):
            return -math.inf
        r_term = -(self.alpha ** 2 / self.beta) * math.exp(
            -(self.beta / self.alpha) * (r - self.r_ref))
        exponent = (self.nu / self.gamma) * (c - self.c_ref)
        if exponent > 700.0:        # exp overflow guard
            return -math.inf
        c_term = -(self.gamma ** 2 / self.nu) * math.exp(exponent)
        return r_term + c_term

    def value_grid(self, rs: np.ndarray, cs: np.ndarray) -> np.ndarray:
        r = np.asarray(rs, dtype=float)
        c = np.asarray(cs, dtype=float)
        out = np.full(r.shape, -math.inf)
        exponent = np.where(np.isinf(c), math.inf,
                            (self.nu / self.gamma) * (c - self.c_ref))
        ok = exponent <= 700.0
        with np.errstate(over="ignore"):
            r_term = -(self.alpha ** 2 / self.beta) * np.exp(
                -(self.beta / self.alpha) * (r[ok] - self.r_ref))
            out[ok] = r_term - (self.gamma ** 2 / self.nu) * np.exp(
                exponent[ok])
        return out

    def du_dr(self, r: float, c: float) -> float:
        return self.alpha * math.exp(
            -(self.beta / self.alpha) * (r - self.r_ref))

    def du_dc(self, r: float, c: float) -> float:
        exponent = (self.nu / self.gamma) * (c - self.c_ref)
        if exponent > 700.0:
            return -math.inf
        return -self.gamma * math.exp(exponent)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ExponentialUtility(alpha={self.alpha}, beta={self.beta}, "
                f"gamma={self.gamma}, nu={self.nu}, r_ref={self.r_ref}, "
                f"c_ref={self.c_ref})")


class PowerUtility(Utility):
    """``U = a r^p - gamma c^q`` with ``p, q > 0``.

    Curvature regimes: the function is concave (the default AU
    reading) for ``p <= 1 <= q`` — diminishing returns to throughput,
    growing pain from congestion, yielding interior equilibria — and
    convex (the paper's literal wording) for ``p >= 1 >= q``.  Mixed
    exponents are neither.
    """

    def __init__(self, gamma: float, a: float = 1.0, p: float = 1.0,
                 q: float = 1.0) -> None:
        if gamma <= 0.0 or a <= 0.0:
            raise ValueError("a and gamma must be positive")
        if p <= 0.0:
            raise ValueError(f"p must be positive, got {p}")
        if q <= 0.0:
            raise ValueError(f"q must be positive, got {q}")
        self.gamma = float(gamma)
        self.a = float(a)
        self.p = float(p)
        self.q = float(q)

    def value(self, r: float, c: float) -> float:
        if math.isinf(c):
            return -math.inf
        if r < 0.0 or c < 0.0:
            return -math.inf
        return self.a * r ** self.p - self.gamma * c ** self.q

    def value_grid(self, rs: np.ndarray, cs: np.ndarray) -> np.ndarray:
        r = np.asarray(rs, dtype=float)
        c = np.asarray(cs, dtype=float)
        out = np.full(r.shape, -math.inf)
        ok = ~np.isinf(c) & (r >= 0.0) & (c >= 0.0)
        out[ok] = (self.a * r[ok] ** self.p
                   - self.gamma * c[ok] ** self.q)
        return out

    def du_dr(self, r: float, c: float) -> float:
        if r <= 0.0 and self.p < 1.0:
            r = 1e-12      # one-sided limit at the p < 1 pole
        return self.a * self.p * r ** (self.p - 1.0)

    def du_dc(self, r: float, c: float) -> float:
        if c <= 0.0 and self.q < 1.0:
            c = 1e-12      # one-sided limit at the q < 1 pole
        return -self.gamma * self.q * c ** (self.q - 1.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PowerUtility(gamma={self.gamma}, a={self.a}, "
                f"p={self.p}, q={self.q})")


class QuadraticUtility(Utility):
    """``U = a r + b r^2 - gamma c``.

    ``b <= 0`` gives a concave family (the default AU reading) with
    diminishing returns to throughput; ``b >= 0`` gives the convex
    variant.  Strict monotonicity in ``r`` on the unit rate interval
    requires ``a + 2 b > 0`` when ``b < 0``, which the constructor
    enforces.
    """

    def __init__(self, gamma: float, a: float = 1.0, b: float = 0.0) -> None:
        if gamma <= 0.0 or a <= 0.0:
            raise ValueError("a and gamma must be positive")
        if b < 0.0 and a + 2.0 * b <= 0.0:
            raise ValueError(
                f"a + 2b must be positive for monotonicity on [0, 1], "
                f"got a={a}, b={b}")
        self.gamma = float(gamma)
        self.a = float(a)
        self.b = float(b)

    def value(self, r: float, c: float) -> float:
        if math.isinf(c):
            return -math.inf
        return self.a * r + self.b * r * r - self.gamma * c

    def value_grid(self, rs: np.ndarray, cs: np.ndarray) -> np.ndarray:
        r = np.asarray(rs, dtype=float)
        c = np.asarray(cs, dtype=float)
        return np.where(np.isinf(c), -math.inf,
                        self.a * r + self.b * r * r - self.gamma * c)

    def du_dr(self, r: float, c: float) -> float:
        return self.a + 2.0 * self.b * r

    def du_dc(self, r: float, c: float) -> float:
        return -self.gamma

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"QuadraticUtility(gamma={self.gamma}, a={self.a}, "
                f"b={self.b})")


class ThresholdUtility(Utility):
    """Ferguson-style preferences: throughput matters only up to ``t``.

    ``U = a min(r, t) - gamma c``.  Concave (not convex) in ``r`` and
    not differentiable at the threshold, hence **outside AU** — kept to
    exercise the acceptance checker and the Section-5.3 related-work
    comparison (such decoupled preferences make incentive issues much
    easier, as the paper notes).
    """

    def __init__(self, threshold: float, gamma: float, a: float = 1.0) -> None:
        if threshold <= 0.0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if gamma <= 0.0 or a <= 0.0:
            raise ValueError("a and gamma must be positive")
        self.threshold = float(threshold)
        self.gamma = float(gamma)
        self.a = float(a)

    def value(self, r: float, c: float) -> float:
        if math.isinf(c):
            return -math.inf
        return self.a * min(r, self.threshold) - self.gamma * c

    def value_grid(self, rs: np.ndarray, cs: np.ndarray) -> np.ndarray:
        r = np.asarray(rs, dtype=float)
        c = np.asarray(cs, dtype=float)
        return np.where(np.isinf(c), -math.inf,
                        self.a * np.minimum(r, self.threshold)
                        - self.gamma * c)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ThresholdUtility(threshold={self.threshold}, "
                f"gamma={self.gamma}, a={self.a})")


class BiconvexUtility(Utility):
    """``U = (a0/a1) e^{a1 r} - L c + (b0/b1) e^{-b1 c}``.

    Every term is convex; ``dU/dr = a0 e^{a1 r} > 0`` and
    ``dU/dc = -(L + b0 e^{-b1 c}) < 0``, so the family is in AU for all
    positive parameters.  Its distinguishing feature is a marginal rate
    of substitution *increasing in both arguments* —
    ``|M| = a0 e^{a1 r} / (L + b0 e^{-b1 c})`` — which is what lets a
    single utility satisfy the FIFO Nash condition at several distinct
    rate/congestion pairs simultaneously.  The Theorem-4 experiment
    uses it to construct FIFO games with multiple Nash equilibria.

    This family is convex as a function — inside the paper's *literal*
    AU wording but outside the concave reading its own Lemma 5 uses
    (see the module docstring); the Theorem-4 experiment notes spell
    out that caveat.
    """

    def __init__(self, a0: float, a1: float, ell: float, b0: float,
                 b1: float) -> None:
        for name, val in (("a0", a0), ("a1", a1), ("ell", ell),
                          ("b0", b0), ("b1", b1)):
            if val <= 0.0:
                raise ValueError(f"{name} must be positive, got {val}")
        self.a0 = float(a0)
        self.a1 = float(a1)
        self.ell = float(ell)
        self.b0 = float(b0)
        self.b1 = float(b1)

    def value(self, r: float, c: float) -> float:
        if math.isinf(c):
            return -math.inf
        exponent = self.a1 * r
        if exponent > 700.0:
            return math.inf
        return ((self.a0 / self.a1) * math.exp(exponent)
                - self.ell * c
                + (self.b0 / self.b1) * math.exp(-self.b1 * c))

    def value_grid(self, rs: np.ndarray, cs: np.ndarray) -> np.ndarray:
        r = np.asarray(rs, dtype=float)
        c = np.asarray(cs, dtype=float)
        exponent = self.a1 * r
        finite = ~np.isinf(c)
        big = exponent > 700.0
        vals = np.where(big, math.inf, 0.0)
        ok = finite & ~big
        vals[ok] = ((self.a0 / self.a1) * np.exp(exponent[ok])
                    - self.ell * c[ok]
                    + (self.b0 / self.b1) * np.exp(-self.b1 * c[ok]))
        return np.where(finite, vals, -math.inf)

    def du_dc(self, r: float, c: float) -> float:
        return -(self.ell + self.b0 * math.exp(-self.b1 * c))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BiconvexUtility(a0={self.a0}, a1={self.a1}, "
                f"ell={self.ell}, b0={self.b0}, b1={self.b1})")


class DelayBasedUtility(Utility):
    """Preferences over (throughput, mean delay) via Little's law.

    The paper's footnote 2: since ``c_i = r_i d_i``, working with the
    average queue loses no generality.  This wrapper takes a utility
    ``V(r, d)`` over throughput and mean *delay* and exposes it as a
    utility over throughput and mean *queue*: ``U(r, c) = V(r, c/r)``.

    Note the paper's warning in the same footnote: convexity-type
    conditions on ``V`` translate into more complicated conditions on
    ``U``, so wrapped utilities should be acceptance-checked rather
    than assumed in AU.
    """

    def __init__(self, delay_utility: Utility,
                 min_rate: float = 1e-9) -> None:
        if min_rate <= 0.0:
            raise ValueError(f"min_rate must be positive, got {min_rate}")
        self.delay_utility = delay_utility
        self.min_rate = float(min_rate)

    def value(self, r: float, c: float) -> float:
        if math.isinf(c):
            return -math.inf
        rate = max(r, self.min_rate)
        return self.delay_utility.value(r, c / rate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DelayBasedUtility({self.delay_utility!r})"


class MonotoneTransformedUtility(Utility):
    """``G(U)`` for a strictly increasing transform ``G``.

    Utilities are ordinal: the paper requires every result to be
    invariant under ``U -> G(U)``.  This wrapper lets tests verify that
    invariance (same best responses, same Nash equilibria, same envy
    relations) without duplicating family code.

    Note that ``G(U)`` generally leaves AU (convexity is not preserved
    by monotone transforms), but Nash/envy/Stackelberg computations are
    purely ordinal and must not care.
    """

    def __init__(self, base: Utility,
                 transform: Callable[[float], float]) -> None:
        self.base = base
        self.transform = transform

    def value(self, r: float, c: float) -> float:
        inner = self.base.value(r, c)
        if math.isinf(inner):
            return inner
        return self.transform(inner)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MonotoneTransformedUtility({self.base!r})"
