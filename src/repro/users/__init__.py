"""User model: utility functions over (throughput, congestion).

The paper's users are characterized by private utility functions
``U_i(r_i, c_i)`` — strictly increasing in throughput ``r``, strictly
decreasing in congestion ``c``, convex, and C^2 (the acceptance set
``AU``).  Utilities are ordinal: all results must be invariant under
monotone transformations, which the tests verify.

This package provides the utility interface, the concrete families used
throughout the experiments (linear, the Lemma-5 exponential family,
power, quadratic, plus a deliberately *inadmissible* threshold utility
for negative tests), acceptance checking, and seeded random profile
generators.
"""

from repro.users.utility import Utility, check_acceptable
from repro.users.families import (
    BiconvexUtility,
    DelayBasedUtility,
    ExponentialUtility,
    LinearUtility,
    MonotoneTransformedUtility,
    PowerUtility,
    QuadraticUtility,
    ThresholdUtility,
)
from repro.users.profiles import (
    lemma5_profile,
    random_exponential_profile,
    random_linear_profile,
    random_mixed_profile,
    random_power_profile,
)

__all__ = [
    "Utility",
    "check_acceptable",
    "LinearUtility",
    "ExponentialUtility",
    "BiconvexUtility",
    "DelayBasedUtility",
    "PowerUtility",
    "QuadraticUtility",
    "ThresholdUtility",
    "MonotoneTransformedUtility",
    "lemma5_profile",
    "random_linear_profile",
    "random_exponential_profile",
    "random_power_profile",
    "random_mixed_profile",
]
