"""Seeded random utility-profile generators and the Lemma-5 construction.

A *profile* is a list of utilities, one per user (the paper's
``U in AU^N``).  Experiments sweep over seeded random profiles; the
Lemma-5 construction builds a profile that plants a Nash equilibrium at
a chosen rate vector for a chosen allocation function — the paper's
main proof device, and our main experimental probe.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.disciplines.base import AllocationFunction
from repro.users.families import (
    ExponentialUtility,
    LinearUtility,
    PowerUtility,
    QuadraticUtility,
)
from repro.users.utility import Utility


def random_linear_profile(n_users: int, rng: np.random.Generator,
                          gamma_low: float = 0.2,
                          gamma_high: float = 5.0) -> List[Utility]:
    """Linear utilities with log-uniform congestion sensitivities."""
    gammas = np.exp(rng.uniform(np.log(gamma_low), np.log(gamma_high),
                                size=n_users))
    return [LinearUtility(gamma=float(g)) for g in gammas]


def random_exponential_profile(n_users: int, rng: np.random.Generator,
                               curvature_low: float = 1.0,
                               curvature_high: float = 30.0) -> List[Utility]:
    """Lemma-5 family utilities with random anchors and curvatures."""
    log_alpha = (np.log(0.5), np.log(8.0))
    profile: List[Utility] = []
    for _ in range(n_users):
        alpha = float(np.exp(rng.uniform(*log_alpha)))
        gamma = 1.0
        beta = float(rng.uniform(curvature_low, curvature_high))
        nu = float(rng.uniform(curvature_low, curvature_high))
        r_ref = float(rng.uniform(0.05, 0.5))
        c_ref = float(rng.uniform(0.1, 2.0))
        profile.append(ExponentialUtility(alpha=alpha, beta=beta,
                                          gamma=gamma, nu=nu,
                                          r_ref=r_ref, c_ref=c_ref))
    return profile


def random_power_profile(n_users: int,
                         rng: np.random.Generator) -> List[Utility]:
    """Power utilities with random exponents in the concave range.

    ``p <= 1 <= q`` keeps the profile in concave AU, where interior
    equilibria exist under every discipline (marginal congestion pain
    vanishes at c = 0 and grows thereafter).
    """
    log_gamma = (np.log(0.3), np.log(4.0))
    profile: List[Utility] = []
    for _ in range(n_users):
        gamma = float(np.exp(rng.uniform(*log_gamma)))
        p = float(rng.uniform(0.6, 1.0))
        q = float(rng.uniform(1.0, 2.0))
        profile.append(PowerUtility(gamma=gamma, p=p, q=q))
    return profile


def random_mixed_profile(n_users: int,
                         rng: np.random.Generator) -> List[Utility]:
    """Each user drawn independently from a random family.

    Mixing families matters: several theorems fail only for
    *heterogeneous* populations (e.g. Theorem 2 makes symmetric rates
    necessary for Nash/Pareto coincidence).
    """
    log_gamma = (np.log(0.3), np.log(4.0))
    profile: List[Utility] = []
    for _ in range(n_users):
        kind = rng.integers(0, 4)
        if kind == 0:
            gamma = float(np.exp(rng.uniform(*log_gamma)))
            profile.append(LinearUtility(gamma=gamma))
        elif kind == 1:
            profile.extend(random_exponential_profile(1, rng))
        elif kind == 2:
            profile.extend(random_power_profile(1, rng))
        else:
            gamma = float(np.exp(rng.uniform(*log_gamma)))
            b = float(rng.uniform(-0.4, 0.0))   # concave variant
            profile.append(QuadraticUtility(gamma=gamma, b=b))
    return profile


def lemma5_profile(allocation: AllocationFunction,
                   rates: Sequence[float],
                   beta: float = 40.0,
                   nu: float = 40.0,
                   rng: Optional[np.random.Generator] = None) -> List[Utility]:
    """Plant a Nash equilibrium at ``rates`` (Lemma 5).

    For each user, anchor an :class:`ExponentialUtility` at
    ``(r_i, C_i(r))`` with ``alpha_i / gamma_i = dC_i/dr_i`` so the Nash
    first-derivative condition holds, and curvature ``beta, nu`` large
    enough that the anchor is the global best response.

    Parameters
    ----------
    allocation:
        The allocation function the profile is tailored to.
    rates:
        Target Nash point, inside the stable region.
    beta, nu:
        Curvatures; larger pins the equilibrium more sharply.  When
        ``rng`` is given, each user's curvatures are jittered around
        these values for diversity.
    """
    r = np.asarray(rates, dtype=float)
    congestion = allocation.congestion(r)
    if not np.all(np.isfinite(congestion)):
        raise ValueError(
            f"target rates {r} are outside the stable region of "
            f"{allocation.name}")
    profile: List[Utility] = []
    # greedwork: ignore[GW101] -- own_derivative is a scalar per-user
    # API and profiles are a handful of users; vectorizing would need
    # a full Jacobian for no measurable gain.
    for i in range(r.size):
        slope = allocation.own_derivative(r, i)
        gamma = 1.0
        alpha = max(float(slope), 1e-9) * gamma
        b = beta
        v = nu
        if rng is not None:
            b *= float(rng.uniform(0.75, 1.5))
            v *= float(rng.uniform(0.75, 1.5))
        profile.append(ExponentialUtility(alpha=alpha, beta=b, gamma=gamma,
                                          nu=v, r_ref=float(r[i]),
                                          c_ref=float(congestion[i])))
    return profile
