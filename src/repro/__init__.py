"""greedwork: a reproduction of Shenker's "Making Greed Work in Networks"
(SIGCOMM 1994).

Selfish users share a single M/M/1 switch; the switch's service
discipline decides whether their greed wrecks the network or runs it
well.  This library implements the paper's entire apparatus — the
queueing feasibility theory, the allocation functions (FIFO's
proportional split, Fair Share / serial cost sharing, and more), the
game-theoretic analysis (Nash, Pareto, envy, Stackelberg, learning
dynamics, revelation mechanisms, protection), a packet-level simulator
realizing the disciplines, and the experiment harness that regenerates
the paper's table and verifies each theorem numerically.

Quick start::

    import numpy as np
    from repro import FairShareAllocation, LinearUtility, solve_nash

    switch = FairShareAllocation()
    users = [LinearUtility(gamma=g) for g in (0.5, 1.0, 4.0)]
    eq = solve_nash(switch, users)
    print(eq.rates, eq.congestion)
"""

from repro.disciplines import (
    AllocationFunction,
    FairShareAllocation,
    PriorityAllocation,
    ProportionalAllocation,
    SeparableAllocation,
    WeightedProportionalAllocation,
    check_mac,
    make_discipline,
)
from repro.game import (
    NashResult,
    best_response,
    envy_matrix,
    fdc_residuals,
    find_all_nash,
    is_nash,
    leader_advantage,
    max_envy,
    pareto_improvement,
    protection_bound,
    relaxation_matrix,
    solve_nash,
    solve_stackelberg,
    solve_weighted_pareto,
    worst_case_congestion,
)
from repro.network import NetworkAllocation, Route
from repro.queueing import (
    FeasibilitySet,
    MG1Curve,
    MM1Curve,
    mm1_mean_queue,
)
from repro.users import (
    ExponentialUtility,
    LinearUtility,
    PowerUtility,
    QuadraticUtility,
    Utility,
    lemma5_profile,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # disciplines
    "AllocationFunction",
    "ProportionalAllocation",
    "FairShareAllocation",
    "PriorityAllocation",
    "SeparableAllocation",
    "WeightedProportionalAllocation",
    "check_mac",
    "make_discipline",
    # game
    "NashResult",
    "solve_nash",
    "find_all_nash",
    "is_nash",
    "best_response",
    "solve_weighted_pareto",
    "pareto_improvement",
    "envy_matrix",
    "max_envy",
    "solve_stackelberg",
    "leader_advantage",
    "relaxation_matrix",
    "fdc_residuals",
    "protection_bound",
    "worst_case_congestion",
    # network
    "NetworkAllocation",
    "Route",
    # queueing
    "MM1Curve",
    "MG1Curve",
    "FeasibilitySet",
    "mm1_mean_queue",
    # users
    "Utility",
    "LinearUtility",
    "ExponentialUtility",
    "PowerUtility",
    "QuadraticUtility",
    "lemma5_profile",
]
