"""Parametric (signalling) allocation families — Corollary 1 material.

Corollary 1 extends the Theorem-1 impossibility to allocation functions
``C(r, alpha)`` carrying user-chosen signalling parameters: no such
family (MAC for every fixed ``alpha``) makes every Nash equilibrium
Pareto optimal.  :class:`WeightedProportionalAllocation` is the natural
candidate family — congestion split in proportion to ``alpha_i r_i`` —
and the Corollary-1 experiment verifies that letting users pick their
weights still leaves Nash equilibria inefficient.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.disciplines.base import AllocationFunction
from repro.exceptions import DisciplineError
from repro.numerics.tolerances import is_zero
from repro.queueing.service_curves import ServiceCurve


class WeightedProportionalAllocation(AllocationFunction):
    """``C_i = (w_i r_i / sum_j w_j r_j) * g(sum r)``.

    With all weights equal this is the proportional (FIFO) allocation.
    Weights act as signalling parameters: a user lowering her weight
    shifts queueing onto others without changing the total.  For any
    fixed weight vector the function is in MAC on the region where all
    weights are positive (it is symmetric only when the weights are
    exchanged along with the rates, which is the Corollary-1 setting of
    user-attached parameters).
    """

    name = "weighted-proportional"

    def __init__(self, weights: Sequence[float],
                 curve: Optional[ServiceCurve] = None) -> None:
        super().__init__(curve)
        w = np.asarray(weights, dtype=float)
        if w.ndim != 1 or w.size == 0:
            raise DisciplineError("weights must be a non-empty vector")
        if np.any(w <= 0.0):
            raise DisciplineError(f"weights must be positive, got {w}")
        self.weights = w

    def with_weights(self, weights: Sequence[float]) -> (
            "WeightedProportionalAllocation"):
        """A copy of this discipline with different signalling weights."""
        return WeightedProportionalAllocation(weights, curve=self.curve)

    def congestion(self, rates: Sequence[float]) -> np.ndarray:
        r = np.asarray(rates, dtype=float)
        if r.size != self.weights.size:
            raise DisciplineError(
                f"expected {self.weights.size} rates, got {r.size}")
        if np.any(r < 0.0):
            raise DisciplineError(f"rates must be nonnegative, got {r}")
        total = float(r.sum())
        if total >= self.curve.capacity:
            return np.full(r.shape, math.inf)
        weighted = self.weights * r
        denom = float(weighted.sum())
        if is_zero(denom):
            return np.zeros_like(r)
        return (self.curve.value(total) / denom) * weighted
