"""Allocation functions induced by switch service disciplines.

An *allocation function* maps a rate vector ``r`` to the congestion
vector ``c = C(r)`` (per-user mean queue lengths) that a service
discipline realizes on the shared server.  This is the fluid-level
object the paper's game theory operates on; packet-level realizations
of the same disciplines live in :mod:`repro.sim`.

Provided disciplines:

* :class:`ProportionalAllocation` — FIFO (also LIFO, PS, polling):
  ``C_i = r_i / (1 - sum r)``.
* :class:`FairShareAllocation` — the paper's Fair Share / serial cost
  sharing allocation, with analytic first and second derivatives.
* :class:`PriorityAllocation` — preemptive priority in ascending (or
  descending) rate order.
* :class:`SeparableAllocation` — the Corollary-2 construction
  ``C_i = f(r) - h_i(r_{-i})`` whose Nash equilibria are Pareto optimal
  under separable constraints.
* :class:`WeightedProportionalAllocation` — a parameterized family used
  in signalling (Corollary 1) experiments.
"""

from repro.disciplines.base import AllocationFunction, Subsystem
from repro.disciplines.proportional import ProportionalAllocation
from repro.disciplines.fair_share import FairShareAllocation
from repro.disciplines.priority import PriorityAllocation
from repro.disciplines.separable import (
    SeparableAllocation,
    SumOfSquaresConstraint,
)
from repro.disciplines.parametric import WeightedProportionalAllocation
from repro.disciplines.stalling import PivotAllocation
from repro.disciplines.acceptance import ACReport, check_ac
from repro.disciplines.mac import MACReport, check_mac
from repro.disciplines.registry import available_disciplines, make_discipline

__all__ = [
    "AllocationFunction",
    "Subsystem",
    "ProportionalAllocation",
    "FairShareAllocation",
    "PriorityAllocation",
    "SeparableAllocation",
    "SumOfSquaresConstraint",
    "WeightedProportionalAllocation",
    "PivotAllocation",
    "MACReport",
    "check_mac",
    "ACReport",
    "check_ac",
    "available_disciplines",
    "make_discipline",
]
