"""Numeric AC-membership checking (Section 3.1's acceptability).

The paper's acceptable allocation functions (the set ``AC``) must

1. map the natural domain ``D`` into the *interior* of the feasible
   set (work conserving, no subset constraint saturated),
2. be symmetric under user permutations, and
3. be C^1 (one-sided derivatives agree everywhere).

This is the AC counterpart of :func:`repro.disciplines.mac.check_mac`,
and it discriminates the implemented disciplines exactly as the paper
classifies them: proportional and Fair Share are in AC; strict
rate-order priority fails C^1 at ties (and saturates subset
constraints); the stalling pivot fails work conservation by design;
weighted signalling families fail symmetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.disciplines.base import AllocationFunction
from repro.disciplines.mac import sample_domain
from repro.numerics.rng import default_rng


@dataclass
class ACReport:
    """Result of a numeric AC check.

    Attributes
    ----------
    is_ac:
        No violation found at any sampled point.
    violations:
        Human-readable description of each failure.
    points_checked:
        Number of rate vectors examined.
    """

    is_ac: bool
    violations: List[str] = field(default_factory=list)
    points_checked: int = 0


def _one_sided_derivatives(allocation: AllocationFunction,
                           rates: np.ndarray, i: int, j: int,
                           h: float = 1e-6) -> Tuple[float, float]:
    """Forward and backward difference of ``C_i`` along ``r_j``."""
    up = rates.copy()
    down = rates.copy()
    up[j] += h
    down[j] -= h
    base = allocation.congestion_i(rates, i)
    forward = (allocation.congestion_i(up, i) - base) / h
    backward = (base - allocation.congestion_i(down, i)) / h
    return forward, backward


def check_ac(allocation: AllocationFunction, n_users: int,
             n_points: int = 25,
             rng: Optional[np.random.Generator] = None,
             include_ties: bool = True,
             interior_tol: float = 1e-9,
             smooth_tol: float = 5e-3) -> ACReport:
    """Check the three AC conditions on sampled points.

    ``include_ties`` adds rate vectors with coinciding entries — the
    places where C^1 typically breaks (strict priority) while Fair
    Share stays smooth.
    """
    generator = default_rng(rng if rng is not None else 13)
    points = list(sample_domain(n_users, n_points, rng=generator,
                                max_load=0.85))
    if include_ties and n_users >= 2:
        for _ in range(max(n_points // 5, 2)):
            base = float(generator.uniform(0.05, 0.6 / n_users))
            tied = np.full(n_users, base)
            if n_users >= 3:
                tied[-1] = float(generator.uniform(0.05, 0.3))
            points.append(tied)
    violations: List[str] = []
    for rates in points:
        rates = np.asarray(rates, dtype=float)
        congestion = allocation.congestion(rates)
        if not np.all(np.isfinite(congestion)):
            violations.append(f"infinite congestion inside D at {rates}")
            continue
        # (1) interior feasibility.
        residual = allocation.feasibility.constraint_residual(
            rates, congestion)
        if abs(residual) > 1e-7:
            violations.append(
                f"not work conserving at {rates}: residual "
                f"{residual:.3e}")
        slacks = allocation.feasibility.subset_slacks(rates, congestion)
        if slacks.size and slacks.min() < interior_tol:
            violations.append(
                f"subset constraint saturated at {rates}: min slack "
                f"{slacks.min():.3e}")
        # (2) symmetry.
        if not allocation.check_symmetry(rates, rng=generator,
                                         tol=1e-8):
            violations.append(f"not symmetric at {rates}")
        # (3) C^1: one-sided derivatives agree for a sampled pair.
        i = int(generator.integers(0, n_users))
        j = int(generator.integers(0, n_users))
        forward, backward = _one_sided_derivatives(allocation, rates,
                                                   i, j)
        scale = 1.0 + abs(forward) + abs(backward)
        if abs(forward - backward) > smooth_tol * scale:
            violations.append(
                f"one-sided dC_{i}/dr_{j} disagree at {rates}: "
                f"{forward:.4f} vs {backward:.4f}")
    return ACReport(is_ac=not violations, violations=violations,
                    points_checked=len(points))
