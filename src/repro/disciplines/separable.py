"""Separable constraints and the Corollary-2 allocation.

Corollary 2 shows Pareto-optimal Nash equilibria *are* achievable when
the constraint function decomposes as
``f_hat(r) = (1/(N-1)) sum_i h_i(r)`` with ``dh_i/dr_i = 0`` and
``f_hat - h_i >= 0``: take ``C_i = f_hat - h_i``, so each user's own
congestion responds to her own rate exactly like the total does
(``dC_i/dr_i = df_hat/dr_i``), aligning the Nash FDC with the Pareto
FDC.

The canonical example from the paper text: ``f_hat(r) = sum_j r_j^2``
with ``h_i = sum_{j != i} r_j^2``, giving ``C_i(r) = r_i^2``.

The M/M/1 curve admits *no* such decomposition in any open neighborhood
(that is Theorem 1), which the tests verify numerically via the mixed
partial ``d^N f / dr_1 ... dr_N != 0``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.disciplines.base import (AllocationFunction, GridEvaluator,
                                    check_classes)
from repro.queueing.service_curves import QuadraticCurve


class SumOfSquaresConstraint:
    """The separable constraint ``f_hat(r) = a * sum_i r_i^2``.

    Exposes the interface the Pareto machinery needs: the total
    congestion and its partial derivatives.  Unlike a service curve,
    this is a function of the full rate vector, not just total load.
    """

    def __init__(self, a: float = 1.0) -> None:
        if a <= 0.0:
            raise ValueError(f"coefficient must be positive, got {a}")
        self.a = float(a)

    def total(self, rates: Sequence[float]) -> float:
        """``f_hat(r)``."""
        r = np.asarray(rates, dtype=float)
        return float(self.a * np.dot(r, r))

    def partial(self, rates: Sequence[float], i: int) -> float:
        """``df_hat/dr_i``."""
        r = np.asarray(rates, dtype=float)
        return 2.0 * self.a * float(r[i])

    def share(self, rates: Sequence[float], i: int) -> float:
        """``h_i(r_{-i}) = f_hat - a r_i^2`` (independent of ``r_i``)."""
        r = np.asarray(rates, dtype=float)
        return self.total(r) - self.a * float(r[i]) ** 2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SumOfSquaresConstraint(a={self.a})"


class SeparableAllocation(AllocationFunction):
    """The Corollary-2 allocation ``C_i = f_hat - h_i`` (= ``a r_i^2``).

    Every Nash equilibrium under this allocation is Pareto optimal with
    respect to the separable constraint: each user's marginal congestion
    equals the marginal total congestion, so individual optimality
    implies joint optimality.
    """

    name = "separable"
    vectorized_grid = True
    vectorized_class_grid = True

    def __init__(self, constraint: SumOfSquaresConstraint = None) -> None:
        self.constraint = (constraint if constraint is not None
                           else SumOfSquaresConstraint())
        # The separable world has no capacity pole; the quadratic curve
        # communicates that (capacity = inf) to best-response search and
        # Nash solvers.  Feasibility checks are overridden below.
        super().__init__(curve=QuadraticCurve(self.constraint.a))

    def congestion(self, rates: Sequence[float]) -> np.ndarray:
        r = np.asarray(rates, dtype=float)
        if np.any(r < 0.0):
            raise ValueError(f"rates must be nonnegative, got {r}")
        return self.constraint.a * r * r

    def congestion_grid(self, rates: Sequence[float], i: int,
                        xs: Sequence[float]) -> np.ndarray:
        """``C_i(x) = a x^2`` — the opponents do not matter at all."""
        cand = np.asarray(xs, dtype=float)
        if cand.size and float(cand.min()) < 0.0:
            raise ValueError("rates must be nonnegative")
        return self.constraint.a * cand * cand

    def congestion_many(self, profiles: Sequence[Sequence[float]]
                        ) -> np.ndarray:
        batch = np.asarray(profiles, dtype=float)
        if batch.ndim != 2:
            raise ValueError(
                f"profiles must be 2-D (batch, users), got {batch.shape}")
        if batch.size and float(batch.min()) < 0.0:
            raise ValueError("rates must be nonnegative")
        return self.constraint.a * batch * batch

    # -- symmetry-class evaluation -------------------------------------------

    def class_congestion(self, class_rates: Sequence[float],
                         counts: Sequence[int]) -> np.ndarray:
        """``C_k = a s_k^2``: fully decoupled, multiplicities irrelevant."""
        c, _ = check_classes(class_rates, counts)
        return self.constraint.a * c * c

    def class_deviation_evaluator(self, class_rates: Sequence[float],
                                  counts: Sequence[int], i: int,
                                  include_self: bool = False
                                  ) -> GridEvaluator:
        """``C(x) = a x^2`` — opponents (and multiplicities) don't matter."""
        check_classes(class_rates, counts)
        coefficient = self.constraint.a

        def evaluate(xs: Sequence[float]) -> np.ndarray:
            cand = np.asarray(xs, dtype=float)
            if cand.size and float(cand.min()) < 0.0:
                raise ValueError("rates must be nonnegative")
            return coefficient * cand * cand

        return evaluate

    def class_congestion_many(self, class_profiles: Sequence[Sequence[float]],
                              counts: Sequence[int]) -> np.ndarray:
        batch = np.asarray(class_profiles, dtype=float)
        if batch.ndim != 2:
            raise ValueError(
                f"class_profiles must be 2-D (batch, classes), got "
                f"{batch.shape}")
        if batch.size and float(batch.min()) < 0.0:
            raise ValueError("rates must be nonnegative")
        return self.constraint.a * batch * batch

    def class_own_derivative(self, class_rates: Sequence[float],
                             counts: Sequence[int], i: int,
                             include_self: bool = False) -> float:
        """``dC/dx = 2 a x`` — decoupled, like everything else here."""
        c, _ = check_classes(class_rates, counts)
        return 2.0 * self.constraint.a * float(c[i])

    def gradient_i(self, rates: Sequence[float], i: int) -> np.ndarray:
        r = np.asarray(rates, dtype=float)
        out = np.zeros(r.shape)
        out[i] = self.constraint.partial(r, i)
        return out

    def second_gradient_i(self, rates: Sequence[float], i: int) -> np.ndarray:
        r = np.asarray(rates, dtype=float)
        out = np.zeros(r.shape)
        out[i] = 2.0 * self.constraint.a
        return out

    def own_derivative(self, rates: Sequence[float], i: int) -> float:
        return self.constraint.partial(rates, i)

    def cross_derivative(self, rates: Sequence[float], i: int,
                         j: int) -> float:
        if i == j:
            return self.own_derivative(rates, i)
        return 0.0

    def own_second_derivative(self, rates: Sequence[float], i: int) -> float:
        return 2.0 * self.constraint.a

    def mixed_second_derivative(self, rates: Sequence[float], i: int,
                                j: int) -> float:
        if i == j:
            return self.own_second_derivative(rates, i)
        return 0.0

    def jacobian(self, rates: Sequence[float]) -> np.ndarray:
        r = np.asarray(rates, dtype=float)
        return np.diag(2.0 * self.constraint.a * r)

    # The separable world has no capacity pole; every positive rate
    # vector is admissible and the allocation is feasible by
    # construction against its own constraint.

    def in_domain(self, rates: Sequence[float]) -> bool:
        r = np.asarray(rates, dtype=float)
        return bool(np.all(r > 0.0))

    def is_feasible_at(self, rates: Sequence[float],
                       tol: float = 1e-8) -> bool:
        c = self.congestion(rates)
        return bool(abs(float(c.sum()) - self.constraint.total(rates)) <= tol)

    def in_stable_region(self, rates: Sequence[float]) -> bool:
        """Always stable: the quadratic world has no capacity pole."""
        return True


def mm1_is_not_separable(n_users: int, at_load: float = 0.5,
                         probe: float = 1e-3) -> float:
    """Numeric witness for Theorem 1's final step.

    If ``f(r) = g(sum r)`` could be written as
    ``(1/(N-1)) sum h_i`` with ``dh_i/dr_i = 0``, then the mixed
    partial ``d^N f / dr_1 ... dr_N`` would vanish (each ``h_i`` misses
    one variable, killing the full mixed partial).  For the M/M/1 curve
    that mixed partial equals ``g^(N)(sum r) != 0``.  Returns the mixed
    partial estimated by an N-dimensional central difference; callers
    assert it is bounded away from zero.
    """
    if n_users < 2:
        raise ValueError("separability is only meaningful for N >= 2")
    base = np.full(n_users, at_load / n_users)

    def f(r: np.ndarray) -> float:
        total = float(np.sum(r))
        if total >= 1.0:
            return math.inf
        return total / (1.0 - total)

    # N-dimensional central difference: sum over sign patterns weighted
    # by the product of the signs.
    total = 0.0
    for mask in range(1 << n_users):
        signs = np.array([1.0 if (mask >> b) & 1 else -1.0
                          for b in range(n_users)])
        n_minus = n_users - bin(mask).count("1")
        parity = 1.0 if n_minus % 2 == 0 else -1.0
        total += parity * f(base + probe * signs)
    return total / (2.0 * probe) ** n_users
