"""The Fair Share allocation function (serial cost sharing).

With users sorted so that ``r_1 <= r_2 <= ... <= r_N`` (``r_0 = 0``),
define the cumulative ladder loads

``R_m = (N - m + 1) r_m + sum_{j < m} r_j``  (``R_0 = 0``),

which are exactly the cumulative class rates of the Table-1 priority
ladder.  The Fair Share congestion of the user in sorted position ``k``
is

``C^FS_(k) = sum_{m=1}^{k} [g(R_m) - g(R_{m-1})] / (N - m + 1)``.

This reproduces the paper's recursion: the ``m``-th priority class has
aggregate mean queue ``g(R_m) - g(R_{m-1})`` shared equally by the
``N - m + 1`` users participating in it.

Key structural facts implemented here analytically:

* ``dC_i/dr_i = g'(R_k)`` (``k`` = sorted position of ``i``),
* ``dC_i/dr_j = 0`` whenever ``r_j >= r_i`` (``j != i``) — the partial
  insularity that makes the derivative matrix lower triangular,
* ``d^2 C_i/dr_i^2 = g''(R_k) (N - k + 1) > 0``,
* ``d^2 C_i/dr_i dr_j = g''(R_k)`` for ``r_j < r_i``, else 0.

Users whose ladder load reaches capacity receive infinite congestion,
but users below them keep finite congestion — the protection property
(Theorem 8) in action even outside the stable region.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.disciplines.base import (AllocationFunction, GridEvaluator,
                                    check_classes)


class FairShareAllocation(AllocationFunction):
    """Fair Share / serial cost sharing on a convex service curve."""

    name = "fair-share"
    vectorized_grid = True
    vectorized_class_grid = True

    # -- ladder geometry ---------------------------------------------------

    @staticmethod
    def _sorted_view(rates: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
        """Return (ascending rates, argsort order)."""
        r = np.asarray(rates, dtype=float)
        if np.any(r < 0.0):
            raise ValueError(f"rates must be nonnegative, got {r}")
        order = np.argsort(r, kind="stable")
        return r[order], order

    @staticmethod
    def ladder_loads(sorted_rates: np.ndarray) -> np.ndarray:
        """Cumulative class rates ``R_m`` for ascending ``sorted_rates``."""
        n = sorted_rates.size
        prefix = np.concatenate(([0.0], np.cumsum(sorted_rates)[:-1]))
        multiplicity = n - np.arange(n)
        return multiplicity * sorted_rates + prefix

    def ladder_matrix(self, rates: Sequence[float]) -> np.ndarray:
        """The Table-1 assignment: entry ``[i, m]`` is the rate user ``i``
        sends in priority class ``m`` (class 0 = highest priority).

        User ``i`` in sorted position ``k`` contributes
        ``delta_m = r_(m) - r_(m-1)`` to every class ``m <= k`` and
        nothing to lower-priority classes; row sums equal ``r_i``.
        """
        sorted_r, order = self._sorted_view(rates)
        n = sorted_r.size
        deltas = np.diff(np.concatenate(([0.0], sorted_r)))
        matrix = np.zeros((n, n))
        for pos, user in enumerate(order):
            matrix[user, : pos + 1] = deltas[: pos + 1]
        return matrix

    # -- allocation ----------------------------------------------------------

    def congestion(self, rates: Sequence[float]) -> np.ndarray:
        sorted_r, order = self._sorted_view(rates)
        n = sorted_r.size
        loads = self.ladder_loads(sorted_r)
        if loads.size and loads[-1] < self.curve.capacity:
            # Fast fully-stable path: one vectorized pass over the ladder.
            g_values = self.curve.values(loads)
            increments = np.diff(np.concatenate(([0.0], g_values)))
            multiplicity = n - np.arange(n)
            sorted_c = np.cumsum(increments / multiplicity)
        else:
            sorted_c = np.empty(n)
            cumulative = 0.0
            prev_g = 0.0
            for m in range(n):
                if (loads[m] >= self.curve.capacity
                        or math.isinf(cumulative)):
                    cumulative = math.inf
                else:
                    g = self.curve.value(float(loads[m]))
                    cumulative += (g - prev_g) / (n - m)
                    prev_g = g
                sorted_c[m] = cumulative
        out = np.empty(n)
        out[order] = sorted_c
        return out

    # -- batched evaluation --------------------------------------------------

    def congestion_grid(self, rates: Sequence[float], i: int,
                        xs: Sequence[float]) -> np.ndarray:
        """``C_i`` over candidate own-rates in one pass (insertion trick).

        The opponents' ladder is computed once.  A candidate ``x``
        inserts at sorted position ``p`` (the number of opponents
        strictly below it); the classes below ``p`` are unaffected by
        the insertion, so ``C_i(x)`` is the prefix share sum ``H_p``
        plus user ``i``'s own class increment::

            C_i(x) = H_p + [g((n - p) x + prefix_p) - g(L_{p-1})] / (n - p)

        where ``L_m`` are the opponents-only ladder loads and
        ``prefix_p`` the sum of the ``p`` smallest opponent rates.
        Tied candidates contribute zero ``g``-increments within their
        tie block, so the position within a block is irrelevant and
        the result matches the scalar :meth:`congestion_i` exactly.
        """
        return self.grid_evaluator(rates, i)(xs)

    def grid_evaluator(self, rates: Sequence[float], i: int):
        """One-time opponent-ladder setup, many cheap grid evaluations.

        The returned closure implements the :meth:`congestion_grid`
        insertion trick with the opponent sort, prefix sums, and
        ``g``-share table hoisted out — the grid-zoom solver calls it
        ~10 times per best response against the same opponents.
        """
        r = np.asarray(rates, dtype=float)
        opp = np.delete(r, i)
        if opp.size and float(opp.min()) < 0.0:
            raise ValueError("rates must be nonnegative")
        n = r.size
        cap = self.curve.capacity
        s = np.sort(opp)
        prefix = np.concatenate(([0.0], np.cumsum(s)))
        m_idx = np.arange(s.size)
        opp_loads = (n - m_idx) * s + prefix[:-1]
        # First opponent class at/over capacity (ladder loads ascend).
        unstable = opp_loads >= cap
        k_bad = int(np.searchsorted(unstable, True)) if unstable.any() \
            else s.size
        g_opp = np.full(s.size, math.inf)
        g_opp[:k_bad] = self.curve.values(opp_loads[:k_bad])
        shares = np.diff(g_opp[:k_bad], prepend=0.0) / (n - m_idx[:k_bad])
        h = np.full(s.size + 1, math.inf)
        h[:k_bad + 1] = np.concatenate(([0.0], np.cumsum(shares)))
        g_prev = np.concatenate(([0.0], g_opp))

        def evaluate(xs: Sequence[float]) -> np.ndarray:
            cand = np.asarray(xs, dtype=float)
            if cand.size and float(cand.min()) < 0.0:
                raise ValueError("rates must be nonnegative")
            p = np.searchsorted(s, cand, side="left")
            own_loads = (n - p) * cand + prefix[p]
            out = np.full(cand.shape, math.inf)
            ok = (p <= k_bad) & (own_loads < cap)
            out[ok] = h[p[ok]] + (
                (self.curve.values(own_loads[ok]) - g_prev[p[ok]])
                / (n - p[ok]))
            return out

        return evaluate

    def congestion_many(self, profiles: Sequence[Sequence[float]]
                        ) -> np.ndarray:
        """Whole-batch congestion: row-wise sort + cumsum, one pass."""
        batch = np.asarray(profiles, dtype=float)
        if batch.ndim != 2:
            raise ValueError(
                f"profiles must be 2-D (batch, users), got {batch.shape}")
        if batch.size and float(batch.min()) < 0.0:
            raise ValueError("rates must be nonnegative")
        n = batch.shape[1]
        order = np.argsort(batch, axis=1, kind="stable")
        sorted_r = np.take_along_axis(batch, order, axis=1)
        # Exclusive prefix sums, bit-identical to ladder_loads().
        prefix = np.concatenate(
            (np.zeros((batch.shape[0], 1)), np.cumsum(sorted_r, axis=1)[:, :-1]),
            axis=1)
        mult = (n - np.arange(n))[None, :]
        loads = mult * sorted_r + prefix
        g = self.curve.values(loads)
        finite = np.isfinite(g)
        if finite.all():
            increments = np.diff(g, prepend=0.0, axis=1)
            sorted_c = np.cumsum(increments / mult, axis=1)
        else:
            g_clipped = np.where(finite, g, 0.0)
            increments = np.diff(g_clipped, prepend=0.0, axis=1)
            sorted_c = np.cumsum(
                np.where(finite, increments / mult, 0.0), axis=1)
            overloaded = np.maximum.accumulate(~finite, axis=1)
            sorted_c = np.where(overloaded, math.inf, sorted_c)
        out = np.empty_like(sorted_c)
        np.put_along_axis(out, order, sorted_c, axis=1)
        return out

    # -- symmetry-class evaluation -------------------------------------------

    def class_congestion(self, class_rates: Sequence[float],
                         counts: Sequence[int]) -> np.ndarray:
        """Per-class Fair Share congestion in O(K log K).

        Users tied at a class rate contribute zero ``g``-increments
        within their tie block, so the N-user ladder collapses to one
        rung per class: with classes sorted ascending, ``M_k`` users in
        earlier blocks and prefix rate mass ``P_k``, the block-start
        load is ``R_k = (N - M_k) s_k + P_k`` and every member of the
        block gets ``C_k = C_{k-1} + [g(R_k) - g(R_{k-1})] / (N - M_k)``.
        """
        c, m = check_classes(class_rates, counts)
        order = np.argsort(c, kind="stable")
        s = c[order]
        w = m[order].astype(float)
        n_total = float(w.sum())
        before = np.concatenate(([0.0], np.cumsum(w)[:-1]))
        prefix = np.concatenate(([0.0], np.cumsum(w * s)[:-1]))
        rem = n_total - before
        loads = rem * s + prefix
        cap = self.curve.capacity
        unstable = loads >= cap
        k_bad = int(np.searchsorted(unstable, True)) if unstable.any() \
            else s.size
        g_vals = self.curve.values(loads[:k_bad])
        increments = np.diff(g_vals, prepend=0.0) / rem[:k_bad]
        sorted_c = np.full(s.size, math.inf)
        sorted_c[:k_bad] = np.cumsum(increments)
        out = np.empty(c.size)
        out[order] = sorted_c
        return out

    def class_deviation_evaluator(self, class_rates: Sequence[float],
                                  counts: Sequence[int], i: int,
                                  include_self: bool = False
                                  ) -> GridEvaluator:
        """The insertion trick against class-aggregated opponents.

        Identical structure to :meth:`grid_evaluator`, with the
        opponent ladder carrying one rung per class weighted by its
        multiplicity — O(K) setup, O(log K) per candidate.  With
        ``include_self`` the deviator's own class keeps its full count
        and the candidate inserts as an extra (N+1)-th user.
        """
        c, m = check_classes(class_rates, counts)
        w = m.astype(float)
        if not include_self:
            if m[i] < 1:
                raise ValueError(f"class {i} is empty")
            w[i] -= 1.0
        keep = w > 0.0
        order = np.argsort(c[keep], kind="stable")
        s = c[keep][order]
        w = w[keep][order]
        n = float(w.sum()) + 1.0          # opponents plus the deviator
        cap = self.curve.capacity
        before = np.concatenate(([0.0], np.cumsum(w)))
        prefix = np.concatenate(([0.0], np.cumsum(w * s)))
        opp_loads = (n - before[:-1]) * s + prefix[:-1]
        unstable = opp_loads >= cap
        k_bad = int(np.searchsorted(unstable, True)) if unstable.any() \
            else s.size
        g_opp = np.full(s.size, math.inf)
        g_opp[:k_bad] = self.curve.values(opp_loads[:k_bad])
        shares = np.diff(g_opp[:k_bad], prepend=0.0) / (n - before[:k_bad])
        h = np.full(s.size + 1, math.inf)
        h[:k_bad + 1] = np.concatenate(([0.0], np.cumsum(shares)))
        g_prev = np.concatenate(([0.0], g_opp))

        def evaluate(xs: Sequence[float]) -> np.ndarray:
            cand = np.asarray(xs, dtype=float)
            if cand.size and float(cand.min()) < 0.0:
                raise ValueError("rates must be nonnegative")
            p = np.searchsorted(s, cand, side="left")
            users_below = before[p]
            own_loads = (n - users_below) * cand + prefix[p]
            out = np.full(cand.shape, math.inf)
            ok = (p <= k_bad) & (own_loads < cap)
            out[ok] = h[p[ok]] + (
                (self.curve.values(own_loads[ok]) - g_prev[p[ok]])
                / (n - users_below[ok]))
            return out

        return evaluate

    def class_own_derivative(self, class_rates: Sequence[float],
                             counts: Sequence[int], i: int,
                             include_self: bool = False) -> float:
        """``dC/dx = g'(R)`` with ``R`` the deviator's block-start load.

        Differentiating the insertion formula: the candidate's share is
        ``[g((n - u) x + P) - g_prev] / (n - u)`` with ``u`` users
        strictly below, so the slope telescopes to ``g'`` at the
        deviator's own ladder load — the class-space twin of the
        per-user :meth:`own_derivative`.
        """
        c, m = check_classes(class_rates, counts)
        w = m.astype(float)
        if not include_self:
            if m[i] < 1:
                raise ValueError(f"class {i} is empty")
            w[i] -= 1.0
        x = float(c[i])
        keep = w > 0.0
        order = np.argsort(c[keep], kind="stable")
        s = c[keep][order]
        w = w[keep][order]
        n = float(w.sum()) + 1.0
        p = int(np.searchsorted(s, x, side="left"))
        users_below = float(np.sum(w[:p]))
        own_load = (n - users_below) * x + float(np.dot(w[:p], s[:p]))
        if own_load >= self.curve.capacity:
            return math.inf
        return self.curve.derivative(own_load)

    def class_congestion_many(self, class_profiles: Sequence[Sequence[float]],
                              counts: Sequence[int]) -> np.ndarray:
        """Whole-batch class congestion: row-wise weighted ladders."""
        batch = np.asarray(class_profiles, dtype=float)
        if batch.ndim != 2:
            raise ValueError(
                f"class_profiles must be 2-D (batch, classes), got "
                f"{batch.shape}")
        m = np.asarray(counts, dtype=int)
        if m.ndim != 1 or m.size != batch.shape[1]:
            raise ValueError(
                f"counts must be 1-D of length {batch.shape[1]}, got "
                f"shape {m.shape}")
        if m.size and int(m.min()) < 1:
            raise ValueError(f"class counts must be positive, got {m}")
        if batch.size and float(batch.min()) < 0.0:
            raise ValueError("rates must be nonnegative")
        order = np.argsort(batch, axis=1, kind="stable")
        s = np.take_along_axis(batch, order, axis=1)
        w = m.astype(float)[order]
        n_total = float(m.sum())
        zeros = np.zeros((batch.shape[0], 1))
        before = np.concatenate(
            (zeros, np.cumsum(w, axis=1)[:, :-1]), axis=1)
        prefix = np.concatenate(
            (zeros, np.cumsum(w * s, axis=1)[:, :-1]), axis=1)
        rem = n_total - before
        loads = rem * s + prefix
        g = self.curve.values(loads)
        finite = np.isfinite(g)
        if finite.all():
            increments = np.diff(g, prepend=0.0, axis=1)
            sorted_c = np.cumsum(increments / rem, axis=1)
        else:
            g_clipped = np.where(finite, g, 0.0)
            increments = np.diff(g_clipped, prepend=0.0, axis=1)
            sorted_c = np.cumsum(
                np.where(finite, increments / rem, 0.0), axis=1)
            overloaded = np.maximum.accumulate(~finite, axis=1)
            sorted_c = np.where(overloaded, math.inf, sorted_c)
        out = np.empty_like(sorted_c)
        np.put_along_axis(out, order, sorted_c, axis=1)
        return out

    # -- analytic derivatives ----------------------------------------------

    def jacobian(self, rates: Sequence[float]) -> np.ndarray:
        """Full derivative matrix, lower triangular in sorted order."""
        sorted_r, order = self._sorted_view(rates)
        n = sorted_r.size
        loads = self.ladder_loads(sorted_r)
        if np.any(loads >= self.curve.capacity):
            return self._jacobian_with_overload(sorted_r, order, loads)
        gp = np.array([self.curve.derivative(float(x)) for x in loads])
        jac_sorted = np.zeros((n, n))
        for q in range(n):           # sorted position of the varied rate
            # Partial sums of dC_(k)/dr_(q) accumulated over classes m.
            running = 0.0
            for k in range(q, n):
                if k == q:
                    running += gp[q]
                elif k == q + 1:
                    running += (gp[q + 1] - gp[q] * (n - q)) / (n - q - 1)
                else:
                    running += (gp[k] - gp[k - 1]) / (n - k)
                jac_sorted[k, q] = running
        out = np.zeros((n, n))
        for k in range(n):
            for q in range(n):
                out[order[k], order[q]] = jac_sorted[k, q]
        return out

    def _jacobian_with_overload(self, sorted_r: np.ndarray,
                                order: np.ndarray,
                                loads: np.ndarray) -> np.ndarray:
        """Jacobian when some ladder classes are unstable.

        Rows of overloaded users are ``inf`` on and below the diagonal
        (in sorted order); stable users' rows are computed as usual on
        the truncated ladder.
        """
        n = sorted_r.size
        stable = int(np.searchsorted(loads >= self.curve.capacity, True))
        jac_sorted = np.zeros((n, n))
        gp = np.array([self.curve.derivative(float(x))
                       for x in loads[:stable]])
        for q in range(stable):
            running = 0.0
            for k in range(q, stable):
                if k == q:
                    running += gp[q]
                elif k == q + 1:
                    running += (gp[q + 1] - gp[q] * (n - q)) / (n - q - 1)
                else:
                    running += (gp[k] - gp[k - 1]) / (n - k)
                jac_sorted[k, q] = running
        for k in range(stable, n):
            jac_sorted[k, : k + 1] = math.inf
        out = np.zeros((n, n))
        for k in range(n):
            for q in range(n):
                out[order[k], order[q]] = jac_sorted[k, q]
        return out

    def gradient_i(self, rates: Sequence[float], i: int) -> np.ndarray:
        """Row ``i`` of the Jacobian in closed form (one sort, no FD).

        Same entries as ``jacobian(rates)[i]`` — the running-sum
        recursion telescoped into prefix sums — at the cost of a
        single ladder evaluation instead of the full matrix.
        """
        sorted_r, order = self._sorted_view(rates)
        n = sorted_r.size
        loads = self.ladder_loads(sorted_r)
        k = int(np.nonzero(order == i)[0][0])
        row_sorted = np.zeros(n)
        overloaded = loads >= self.curve.capacity
        stable = int(np.searchsorted(overloaded, True)) if overloaded.any() \
            else n
        if k >= stable:
            row_sorted[: k + 1] = math.inf
        else:
            gp = self.curve.derivatives(loads[: k + 1])
            row_sorted[k] = gp[k]
            if k > 0:
                qs = np.arange(k)
                # D_m = (g'(R_m) - g'(R_{m-1})) / (n - m), m = 1..k
                d = np.concatenate(
                    ([0.0], (gp[1:] - gp[:-1]) / (n - np.arange(1, k + 1))))
                cum_d = np.cumsum(d)
                bridge = (gp[1: k + 1] - gp[:k] * (n - qs)) / (n - qs - 1)
                row_sorted[:k] = gp[:k] + bridge + (cum_d[k] - cum_d[qs + 1])
        out = np.zeros(n)
        out[order] = row_sorted
        return out

    def second_gradient_i(self, rates: Sequence[float], i: int) -> np.ndarray:
        """``d^2 C_i/dr_i dr_j`` over ``j``: ``g''(R_k)`` below, 0 above.

        One sort for the whole row instead of ``N`` scalar
        :meth:`mixed_second_derivative` calls (each of which sorts).
        """
        r = np.asarray(rates, dtype=float)
        sorted_r, order = self._sorted_view(r)
        n = sorted_r.size
        k = int(np.nonzero(order == i)[0][0])
        load = float(self.ladder_loads(sorted_r)[k])
        if load >= self.curve.capacity:
            gpp = math.inf
        else:
            gpp = self.curve.second_derivative(load)
        out = np.where(r < r[i], gpp, 0.0)
        out[i] = gpp * (n - k)
        return out

    def own_derivative(self, rates: Sequence[float], i: int) -> float:
        """``dC_i/dr_i = g'(R_k)`` with ``k`` the sorted position of ``i``."""
        sorted_r, order = self._sorted_view(rates)
        k = int(np.nonzero(order == i)[0][0])
        load = float(self.ladder_loads(sorted_r)[k])
        if load >= self.curve.capacity:
            return math.inf
        return self.curve.derivative(load)

    def cross_derivative(self, rates: Sequence[float], i: int,
                         j: int) -> float:
        if i == j:
            return self.own_derivative(rates, i)
        return float(self.jacobian(rates)[i, j])

    def own_second_derivative(self, rates: Sequence[float], i: int) -> float:
        """``d^2 C_i/dr_i^2 = g''(R_k) (N - k + 1)``."""
        sorted_r, order = self._sorted_view(rates)
        n = sorted_r.size
        k = int(np.nonzero(order == i)[0][0])
        load = float(self.ladder_loads(sorted_r)[k])
        if load >= self.curve.capacity:
            return math.inf
        return self.curve.second_derivative(load) * (n - k)

    def mixed_second_derivative(self, rates: Sequence[float], i: int,
                                j: int) -> float:
        """``d^2 C_i/dr_i dr_j``: ``g''(R_k)`` if ``r_j < r_i`` else 0."""
        if i == j:
            return self.own_second_derivative(rates, i)
        r = np.asarray(rates, dtype=float)
        if r[j] >= r[i]:
            return 0.0
        sorted_r, order = self._sorted_view(rates)
        k = int(np.nonzero(order == i)[0][0])
        load = float(self.ladder_loads(sorted_r)[k])
        if load >= self.curve.capacity:
            return math.inf
        return self.curve.second_derivative(load)

    # -- protection bound ----------------------------------------------------

    def protection_bound(self, own_rate: float, n_users: int) -> float:
        """The symmetric worst case ``C_i(r_i * e) = g(N r_i) / N``.

        Theorem 8: Fair Share never exceeds this bound no matter what
        the other ``N - 1`` users send.
        """
        if own_rate < 0.0:
            raise ValueError(f"rate must be nonnegative, got {own_rate}")
        total = n_users * own_rate
        if total >= self.curve.capacity:
            return math.inf
        return self.curve.value(total) / n_users
