"""The Fair Share allocation function (serial cost sharing).

With users sorted so that ``r_1 <= r_2 <= ... <= r_N`` (``r_0 = 0``),
define the cumulative ladder loads

``R_m = (N - m + 1) r_m + sum_{j < m} r_j``  (``R_0 = 0``),

which are exactly the cumulative class rates of the Table-1 priority
ladder.  The Fair Share congestion of the user in sorted position ``k``
is

``C^FS_(k) = sum_{m=1}^{k} [g(R_m) - g(R_{m-1})] / (N - m + 1)``.

This reproduces the paper's recursion: the ``m``-th priority class has
aggregate mean queue ``g(R_m) - g(R_{m-1})`` shared equally by the
``N - m + 1`` users participating in it.

Key structural facts implemented here analytically:

* ``dC_i/dr_i = g'(R_k)`` (``k`` = sorted position of ``i``),
* ``dC_i/dr_j = 0`` whenever ``r_j >= r_i`` (``j != i``) — the partial
  insularity that makes the derivative matrix lower triangular,
* ``d^2 C_i/dr_i^2 = g''(R_k) (N - k + 1) > 0``,
* ``d^2 C_i/dr_i dr_j = g''(R_k)`` for ``r_j < r_i``, else 0.

Users whose ladder load reaches capacity receive infinite congestion,
but users below them keep finite congestion — the protection property
(Theorem 8) in action even outside the stable region.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.disciplines.base import AllocationFunction


class FairShareAllocation(AllocationFunction):
    """Fair Share / serial cost sharing on a convex service curve."""

    name = "fair-share"

    # -- ladder geometry ---------------------------------------------------

    @staticmethod
    def _sorted_view(rates: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
        """Return (ascending rates, argsort order)."""
        r = np.asarray(rates, dtype=float)
        if np.any(r < 0.0):
            raise ValueError(f"rates must be nonnegative, got {r}")
        order = np.argsort(r, kind="stable")
        return r[order], order

    @staticmethod
    def ladder_loads(sorted_rates: np.ndarray) -> np.ndarray:
        """Cumulative class rates ``R_m`` for ascending ``sorted_rates``."""
        n = sorted_rates.size
        prefix = np.concatenate(([0.0], np.cumsum(sorted_rates)[:-1]))
        multiplicity = n - np.arange(n)
        return multiplicity * sorted_rates + prefix

    def ladder_matrix(self, rates: Sequence[float]) -> np.ndarray:
        """The Table-1 assignment: entry ``[i, m]`` is the rate user ``i``
        sends in priority class ``m`` (class 0 = highest priority).

        User ``i`` in sorted position ``k`` contributes
        ``delta_m = r_(m) - r_(m-1)`` to every class ``m <= k`` and
        nothing to lower-priority classes; row sums equal ``r_i``.
        """
        sorted_r, order = self._sorted_view(rates)
        n = sorted_r.size
        deltas = np.diff(np.concatenate(([0.0], sorted_r)))
        matrix = np.zeros((n, n))
        for pos, user in enumerate(order):
            matrix[user, : pos + 1] = deltas[: pos + 1]
        return matrix

    # -- allocation ----------------------------------------------------------

    def congestion(self, rates: Sequence[float]) -> np.ndarray:
        sorted_r, order = self._sorted_view(rates)
        n = sorted_r.size
        loads = self.ladder_loads(sorted_r)
        if loads.size and loads[-1] < self.curve.capacity:
            # Fast fully-stable path, vectorized for the M/M/1 curve
            # and generic otherwise.
            g_values = self._curve_values(loads)
            increments = np.diff(np.concatenate(([0.0], g_values)))
            multiplicity = n - np.arange(n)
            sorted_c = np.cumsum(increments / multiplicity)
        else:
            sorted_c = np.empty(n)
            cumulative = 0.0
            prev_g = 0.0
            for m in range(n):
                if (loads[m] >= self.curve.capacity
                        or math.isinf(cumulative)):
                    cumulative = math.inf
                else:
                    g = self.curve.value(float(loads[m]))
                    cumulative += (g - prev_g) / (n - m)
                    prev_g = g
                sorted_c[m] = cumulative
        out = np.empty(n)
        out[order] = sorted_c
        return out

    def _curve_values(self, loads: np.ndarray) -> np.ndarray:
        """``g`` applied to a load vector, vectorized for M/M/1.

        Overloaded entries (``load >= 1``) map to ``inf`` rather than
        crossing the pole of ``x / (1 - x)``.
        """
        from repro.queueing.service_curves import MM1Curve

        if type(self.curve) is MM1Curve:
            stable = loads < 1.0
            out = np.full(loads.shape, math.inf)
            out[stable] = loads[stable] / (1.0 - loads[stable])
            return out
        return np.array([self.curve.value(float(x)) for x in loads])

    # -- analytic derivatives ----------------------------------------------

    def jacobian(self, rates: Sequence[float]) -> np.ndarray:
        """Full derivative matrix, lower triangular in sorted order."""
        sorted_r, order = self._sorted_view(rates)
        n = sorted_r.size
        loads = self.ladder_loads(sorted_r)
        if np.any(loads >= self.curve.capacity):
            return self._jacobian_with_overload(sorted_r, order, loads)
        gp = np.array([self.curve.derivative(float(x)) for x in loads])
        jac_sorted = np.zeros((n, n))
        for q in range(n):           # sorted position of the varied rate
            # Partial sums of dC_(k)/dr_(q) accumulated over classes m.
            running = 0.0
            for k in range(q, n):
                if k == q:
                    running += gp[q]
                elif k == q + 1:
                    running += (gp[q + 1] - gp[q] * (n - q)) / (n - q - 1)
                else:
                    running += (gp[k] - gp[k - 1]) / (n - k)
                jac_sorted[k, q] = running
        out = np.zeros((n, n))
        for k in range(n):
            for q in range(n):
                out[order[k], order[q]] = jac_sorted[k, q]
        return out

    def _jacobian_with_overload(self, sorted_r: np.ndarray,
                                order: np.ndarray,
                                loads: np.ndarray) -> np.ndarray:
        """Jacobian when some ladder classes are unstable.

        Rows of overloaded users are ``inf`` on and below the diagonal
        (in sorted order); stable users' rows are computed as usual on
        the truncated ladder.
        """
        n = sorted_r.size
        stable = int(np.searchsorted(loads >= self.curve.capacity, True))
        jac_sorted = np.zeros((n, n))
        gp = np.array([self.curve.derivative(float(x))
                       for x in loads[:stable]])
        for q in range(stable):
            running = 0.0
            for k in range(q, stable):
                if k == q:
                    running += gp[q]
                elif k == q + 1:
                    running += (gp[q + 1] - gp[q] * (n - q)) / (n - q - 1)
                else:
                    running += (gp[k] - gp[k - 1]) / (n - k)
                jac_sorted[k, q] = running
        for k in range(stable, n):
            jac_sorted[k, : k + 1] = math.inf
        out = np.zeros((n, n))
        for k in range(n):
            for q in range(n):
                out[order[k], order[q]] = jac_sorted[k, q]
        return out

    def own_derivative(self, rates: Sequence[float], i: int) -> float:
        """``dC_i/dr_i = g'(R_k)`` with ``k`` the sorted position of ``i``."""
        sorted_r, order = self._sorted_view(rates)
        k = int(np.nonzero(order == i)[0][0])
        load = float(self.ladder_loads(sorted_r)[k])
        if load >= self.curve.capacity:
            return math.inf
        return self.curve.derivative(load)

    def cross_derivative(self, rates: Sequence[float], i: int,
                         j: int) -> float:
        if i == j:
            return self.own_derivative(rates, i)
        return float(self.jacobian(rates)[i, j])

    def own_second_derivative(self, rates: Sequence[float], i: int) -> float:
        """``d^2 C_i/dr_i^2 = g''(R_k) (N - k + 1)``."""
        sorted_r, order = self._sorted_view(rates)
        n = sorted_r.size
        k = int(np.nonzero(order == i)[0][0])
        load = float(self.ladder_loads(sorted_r)[k])
        if load >= self.curve.capacity:
            return math.inf
        return self.curve.second_derivative(load) * (n - k)

    def mixed_second_derivative(self, rates: Sequence[float], i: int,
                                j: int) -> float:
        """``d^2 C_i/dr_i dr_j``: ``g''(R_k)`` if ``r_j < r_i`` else 0."""
        if i == j:
            return self.own_second_derivative(rates, i)
        r = np.asarray(rates, dtype=float)
        if r[j] >= r[i]:
            return 0.0
        sorted_r, order = self._sorted_view(rates)
        k = int(np.nonzero(order == i)[0][0])
        load = float(self.ladder_loads(sorted_r)[k])
        if load >= self.curve.capacity:
            return math.inf
        return self.curve.second_derivative(load)

    # -- protection bound ----------------------------------------------------

    def protection_bound(self, own_rate: float, n_users: int) -> float:
        """The symmetric worst case ``C_i(r_i * e) = g(N r_i) / N``.

        Theorem 8: Fair Share never exceeds this bound no matter what
        the other ``N - 1`` users send.
        """
        if own_rate < 0.0:
            raise ValueError(f"rate must be nonnegative, got {own_rate}")
        total = n_users * own_rate
        if total >= self.curve.capacity:
            return math.inf
        return self.curve.value(total) / n_users
