"""Strict preemptive priority by rate order.

Gives each user their own priority class, ordered by rate (ascending
by default: the smallest sender is served first, a "serve the meek"
policy; descending gives the classic big-senders-win policy).  Users in
sorted position ``k`` see the queue increment

``C_(k) = g(P_k) - g(P_{k-1})``,  ``P_k = sum_{j <= k} r_(j)``.

Tied users share their classes' aggregate queue equally, which keeps
the allocation symmetric.  The allocation is continuous but *not* C^1
across ties, so it sits outside the paper's ``AC`` set; it is included
as an instructive extreme: like Fair Share it is insular in one
direction (ascending order: ``C_i`` depends only on rates ``<= r_i``)
but it shares nothing, and it fails envy-freeness and protectiveness in
the descending variant.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.disciplines.base import AllocationFunction
from repro.exceptions import DisciplineError
from repro.queueing.service_curves import ServiceCurve


class PriorityAllocation(AllocationFunction):
    """Per-user preemptive priority ordered by rate."""

    vectorized_grid = True

    def __init__(self, curve: Optional[ServiceCurve] = None,
                 ascending: bool = True) -> None:
        super().__init__(curve)
        self.ascending = bool(ascending)
        self.name = ("priority-ascending" if self.ascending
                     else "priority-descending")

    def congestion(self, rates: Sequence[float]) -> np.ndarray:
        r = np.asarray(rates, dtype=float)
        if np.any(r < 0.0):
            raise DisciplineError(f"rates must be nonnegative, got {r}")
        key = r if self.ascending else -r
        order = np.argsort(key, kind="stable")
        sorted_r = r[order]
        n = r.size
        prefix = np.cumsum(sorted_r)
        increments = np.empty(n)
        prev_g = 0.0
        for k in range(n):
            if prefix[k] >= self.curve.capacity or math.isinf(prev_g):
                increments[k] = math.inf
                prev_g = math.inf
            else:
                g = self.curve.value(float(prefix[k]))
                increments[k] = g - prev_g
                prev_g = g
        # Average increments across tie groups so equal rates get equal
        # congestion (symmetry).
        sorted_c = np.empty(n)
        start = 0
        while start < n:
            stop = start + 1
            while stop < n and sorted_r[stop] == sorted_r[start]:
                stop += 1
            block = increments[start:stop]
            if np.any(np.isinf(block)):
                sorted_c[start:stop] = math.inf
            else:
                sorted_c[start:stop] = block.sum() / (stop - start)
            start = stop
        out = np.empty(n)
        out[order] = sorted_c
        return out

    def congestion_grid(self, rates: Sequence[float], i: int,
                        xs: Sequence[float]) -> np.ndarray:
        """``C_i`` over candidate own-rates in one pass.

        For candidate ``x``, user ``i``'s tie block spans herself plus
        the opponents with rate exactly ``x``; the per-class
        increments inside the block telescope, so

        ``C_i(x) = [g(B + T + x) - g(B)] / (t + 1)``

        with ``B`` the total strictly-higher-priority opponent rate,
        ``T`` the tied opponents' total, and ``t`` their count.
        """
        r = np.asarray(rates, dtype=float)
        cand = np.asarray(xs, dtype=float)
        opp = np.delete(r, i)
        if (opp.size and float(opp.min()) < 0.0) or (
                cand.size and float(cand.min()) < 0.0):
            raise DisciplineError(f"rates must be nonnegative, got {r}")
        s = np.sort(opp)
        cs = np.concatenate(([0.0], np.cumsum(s)))
        lo = np.searchsorted(s, cand, side="left")
        hi = np.searchsorted(s, cand, side="right")
        block = (hi - lo + 1).astype(float)
        if self.ascending:
            before = cs[lo]
            after = cs[hi] + cand
        else:
            before = cs[-1] - cs[hi]
            after = (cs[-1] - cs[lo]) + cand
        out = np.full(cand.shape, math.inf)
        ok = after < self.curve.capacity
        out[ok] = (self.curve.values(after[ok])
                   - self.curve.values(before[ok])) / block[ok]
        return out
