"""Strict preemptive priority by rate order.

Gives each user their own priority class, ordered by rate (ascending
by default: the smallest sender is served first, a "serve the meek"
policy; descending gives the classic big-senders-win policy).  Users in
sorted position ``k`` see the queue increment

``C_(k) = g(P_k) - g(P_{k-1})``,  ``P_k = sum_{j <= k} r_(j)``.

Tied users share their classes' aggregate queue equally, which keeps
the allocation symmetric.  The allocation is continuous but *not* C^1
across ties, so it sits outside the paper's ``AC`` set; it is included
as an instructive extreme: like Fair Share it is insular in one
direction (ascending order: ``C_i`` depends only on rates ``<= r_i``)
but it shares nothing, and it fails envy-freeness and protectiveness in
the descending variant.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.disciplines.base import (AllocationFunction, GridEvaluator,
                                    check_classes)
from repro.exceptions import DisciplineError
from repro.queueing.service_curves import ServiceCurve


class PriorityAllocation(AllocationFunction):
    """Per-user preemptive priority ordered by rate."""

    vectorized_grid = True
    vectorized_class_grid = True

    def __init__(self, curve: Optional[ServiceCurve] = None,
                 ascending: bool = True) -> None:
        super().__init__(curve)
        self.ascending = bool(ascending)
        self.name = ("priority-ascending" if self.ascending
                     else "priority-descending")

    def congestion(self, rates: Sequence[float]) -> np.ndarray:
        r = np.asarray(rates, dtype=float)
        if np.any(r < 0.0):
            raise DisciplineError(f"rates must be nonnegative, got {r}")
        key = r if self.ascending else -r
        order = np.argsort(key, kind="stable")
        sorted_r = r[order]
        n = r.size
        prefix = np.cumsum(sorted_r)
        increments = np.empty(n)
        prev_g = 0.0
        for k in range(n):
            if prefix[k] >= self.curve.capacity or math.isinf(prev_g):
                increments[k] = math.inf
                prev_g = math.inf
            else:
                g = self.curve.value(float(prefix[k]))
                increments[k] = g - prev_g
                prev_g = g
        # Average increments across tie groups so equal rates get equal
        # congestion (symmetry).
        sorted_c = np.empty(n)
        start = 0
        while start < n:
            stop = start + 1
            while stop < n and sorted_r[stop] == sorted_r[start]:
                stop += 1
            block = increments[start:stop]
            if np.any(np.isinf(block)):
                sorted_c[start:stop] = math.inf
            else:
                sorted_c[start:stop] = block.sum() / (stop - start)
            start = stop
        out = np.empty(n)
        out[order] = sorted_c
        return out

    def congestion_grid(self, rates: Sequence[float], i: int,
                        xs: Sequence[float]) -> np.ndarray:
        """``C_i`` over candidate own-rates in one pass.

        For candidate ``x``, user ``i``'s tie block spans herself plus
        the opponents with rate exactly ``x``; the per-class
        increments inside the block telescope, so

        ``C_i(x) = [g(B + T + x) - g(B)] / (t + 1)``

        with ``B`` the total strictly-higher-priority opponent rate,
        ``T`` the tied opponents' total, and ``t`` their count.
        """
        r = np.asarray(rates, dtype=float)
        cand = np.asarray(xs, dtype=float)
        opp = np.delete(r, i)
        if (opp.size and float(opp.min()) < 0.0) or (
                cand.size and float(cand.min()) < 0.0):
            raise DisciplineError(f"rates must be nonnegative, got {r}")
        s = np.sort(opp)
        cs = np.concatenate(([0.0], np.cumsum(s)))
        lo = np.searchsorted(s, cand, side="left")
        hi = np.searchsorted(s, cand, side="right")
        block = (hi - lo + 1).astype(float)
        if self.ascending:
            before = cs[lo]
            after = cs[hi] + cand
        else:
            before = cs[-1] - cs[hi]
            after = (cs[-1] - cs[lo]) + cand
        out = np.full(cand.shape, math.inf)
        ok = after < self.curve.capacity
        out[ok] = (self.curve.values(after[ok])
                   - self.curve.values(before[ok])) / block[ok]
        return out

    # -- symmetry-class evaluation -------------------------------------------

    def class_congestion(self, class_rates: Sequence[float],
                         counts: Sequence[int]) -> np.ndarray:
        """Per-class priority congestion in O(K log K).

        In priority order the cumulative mass after block ``k`` is
        ``Q_k = sum_{j <= k} m_j s_j``; each member of a tie block
        (classes sharing a rate merge into one block) receives the
        block's aggregate increment divided by the block's user count:
        ``C = [g(Q_hi) - g(Q_lo)] / (users in block)``.
        """
        c, m = check_classes(class_rates, counts)
        key = c if self.ascending else -c
        order = np.argsort(key, kind="stable")
        s = c[order]
        w = m[order].astype(float)
        k_classes = s.size
        mass = np.cumsum(w * s)
        sorted_c = np.empty(k_classes)
        start = 0
        prev_mass = 0.0
        dead = False
        while start < k_classes:
            stop = start + 1
            while stop < k_classes and s[stop] == s[start]:
                stop += 1
            block_mass = float(mass[stop - 1])
            if dead or block_mass >= self.curve.capacity:
                sorted_c[start:stop] = math.inf
                dead = True
            else:
                g_hi = self.curve.value(block_mass)
                g_lo = self.curve.value(prev_mass)
                sorted_c[start:stop] = ((g_hi - g_lo)
                                        / float(w[start:stop].sum()))
                prev_mass = block_mass
            start = stop
        out = np.empty(c.size)
        out[order] = sorted_c
        return out

    def class_deviation_evaluator(self, class_rates: Sequence[float],
                                  counts: Sequence[int], i: int,
                                  include_self: bool = False
                                  ) -> GridEvaluator:
        """The :meth:`congestion_grid` closed form on class cumsums.

        ``C_i(x) = [g(B + T + x) - g(B)] / (t + 1)`` with ``B``/``T``/
        ``t`` read off weighted class prefix sums instead of a sorted
        opponent vector — O(K) setup, O(log K) per candidate.
        """
        c, m = check_classes(class_rates, counts)
        w = m.astype(float)
        if not include_self:
            if m[i] < 1:
                raise ValueError(f"class {i} is empty")
            w[i] -= 1.0
        keep = w > 0.0
        order = np.argsort(c[keep], kind="stable")
        s = c[keep][order]
        w = w[keep][order]
        mass = np.concatenate(([0.0], np.cumsum(w * s)))
        cnt = np.concatenate(([0.0], np.cumsum(w)))
        total_mass = float(mass[-1])
        ascending = self.ascending
        cap = self.curve.capacity

        def evaluate(xs: Sequence[float]) -> np.ndarray:
            cand = np.asarray(xs, dtype=float)
            if cand.size and float(cand.min()) < 0.0:
                raise DisciplineError(
                    f"rates must be nonnegative, got {cand}")
            lo = np.searchsorted(s, cand, side="left")
            hi = np.searchsorted(s, cand, side="right")
            block = (cnt[hi] - cnt[lo]) + 1.0
            if ascending:
                before = mass[lo]
                after = mass[hi] + cand
            else:
                before = total_mass - mass[hi]
                after = (total_mass - mass[lo]) + cand
            out = np.full(cand.shape, math.inf)
            ok = after < cap
            out[ok] = (self.curve.values(after[ok])
                       - self.curve.values(before[ok])) / block[ok]
            return out

        return evaluate
