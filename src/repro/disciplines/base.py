"""Base class for allocation functions.

The paper's acceptable allocation functions (the set ``AC``) map every
rate vector in the natural domain ``D`` to an interior feasible
congestion vector, are symmetric under user permutation, and are C^1.
Outside ``D`` they are still defined, possibly assigning infinite
congestion (needed so that learning dynamics can wander out of the
stable region, Section 4.2.2).

Subclasses implement :meth:`congestion`; analytic derivatives are
optional overrides of the numeric defaults.

Batched evaluation (the vectorized solver core)
-----------------------------------------------

Solvers scan candidate rates in bulk, so the base class also exposes

* :meth:`AllocationFunction.congestion_grid` — user ``i``'s congestion
  over a whole vector of candidate own-rates, opponents held fixed;
* :meth:`AllocationFunction.congestion_many` — the full congestion
  matrix for a batch of rate profiles;
* :meth:`AllocationFunction.gradient_i` /
  :meth:`AllocationFunction.second_gradient_i` — row ``i`` of the
  Jacobian and of the second-derivative tensor slice
  ``d^2 C_i / dr_i dr_j`` as vectors.

The defaults fall back to scalar loops (bit-identical to calling
:meth:`congestion_i` per point) and numeric differences; disciplines
with closed forms override them and set :attr:`vectorized_grid` so
solvers know a batched call is genuinely one numpy pass.

Symmetry-class evaluation (the class-space solver core)
-------------------------------------------------------

Profiles of interest almost always contain a handful of *distinct*
utility types, so the N-user game collapses to a K-class game with
multiplicities.  Because acceptable allocations are symmetric under
user permutation, users sharing a rate receive identical congestion,
and the whole congestion vector is a function of ``(class_rates,
counts)`` alone.  The base class exposes

* :meth:`AllocationFunction.class_congestion` — per-class congestion
  for a class-symmetric profile;
* :meth:`AllocationFunction.class_deviation_evaluator` — a reusable
  grid evaluator for one member of a class deviating unilaterally
  (``include_self=True`` keeps the deviator's class mass intact, the
  mean-field closure where a single agent is infinitesimal);
* :meth:`AllocationFunction.class_congestion_many` — a batch of
  class-rate profiles sharing one multiplicity vector.

The defaults expand classes to the full N-vector and delegate to the
per-user paths (exact, but O(N)); disciplines with closed forms
override them with O(K) passes and set :attr:`vectorized_class_grid`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.numerics.diff import diff_step
from repro.numerics.diff import gradient as numeric_gradient
from repro.numerics.diff import partial_derivative, second_partial
from repro.numerics.rng import default_rng
from repro.queueing.constraints import FeasibilitySet
from repro.queueing.service_curves import MM1Curve, ServiceCurve

#: A prepared batched objective: candidate own-rates -> ``C_i`` values.
GridEvaluator = Callable[[Sequence[float]], np.ndarray]


def expand_class_rates(class_rates: Sequence[float],
                       counts: Sequence[int]) -> np.ndarray:
    """The full N-vector for a class-symmetric profile (class-block order).

    User order is class 0's members first, then class 1's, and so on —
    the canonical expansion the class-space solvers certify against.
    """
    c, m = check_classes(class_rates, counts)
    return np.repeat(c, m)


def check_classes(class_rates: Sequence[float], counts: Sequence[int]
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and normalize a ``(class_rates, counts)`` pair.

    Returns ``(rates, counts)`` as float/int arrays.  Counts must be
    positive integers; rates must be nonnegative; lengths must match.
    """
    c = np.asarray(class_rates, dtype=float)
    m = np.asarray(counts, dtype=int)
    if c.ndim != 1 or m.ndim != 1 or c.size != m.size:
        raise ValueError(
            f"class_rates and counts must be 1-D of equal length, got "
            f"shapes {c.shape} and {m.shape}")
    if m.size and int(m.min()) < 1:
        raise ValueError(f"class counts must be positive, got {m}")
    if c.size and float(c.min()) < 0.0:
        raise ValueError(f"rates must be nonnegative, got {c}")
    return c, m


class AllocationFunction(ABC):
    """Map from rate vectors to per-user congestion vectors.

    Attributes
    ----------
    curve:
        The total-queue service curve this discipline is work-conserving
        against; congestion vectors sum to ``curve(sum r)`` inside the
        stable region.
    name:
        Human-readable discipline name used in experiment tables.
    """

    name: str = "allocation"

    #: True when :meth:`congestion_grid`/:meth:`congestion_many` are
    #: real one-pass numpy implementations rather than the scalar-loop
    #: fallback.  Solvers use it to decide whether a batched scan is
    #: worth routing through the grid path.
    vectorized_grid: bool = False

    #: True when the class-space paths (:meth:`class_congestion`,
    #: :meth:`class_deviation_evaluator`) are real O(K)
    #: implementations rather than the expand-to-N fallback.
    vectorized_class_grid: bool = False

    #: Smallest user count at which the batched grid path beats the
    #: scalar scan for this discipline (the auto-mode cost model,
    #: ``GREEDWORK_SOLVER_VECTOR=auto``).  0 means the grid always
    #: wins once implemented; disciplines whose scalar ``congestion_i``
    #: is a single cheap reduction (FIFO) set a measured crossover.
    grid_min_users: int = 0

    def __init__(self, curve: Optional[ServiceCurve] = None) -> None:
        self.curve = curve if curve is not None else MM1Curve()
        self.feasibility = FeasibilitySet(self.curve)

    # -- core ----------------------------------------------------------------

    @abstractmethod
    def congestion(self, rates: Sequence[float]) -> np.ndarray:
        """Per-user mean queue vector ``C(r)`` (entries may be ``inf``)."""

    def congestion_i(self, rates: Sequence[float], i: int) -> float:
        """``C_i(r)``; subclasses may shortcut this."""
        return float(self.congestion(rates)[i])

    def congestion_grid(self, rates: Sequence[float], i: int,
                        xs: Sequence[float]) -> np.ndarray:
        """``C_i`` over candidate own-rates ``xs``, opponents fixed.

        Entry ``k`` equals ``congestion_i(r with r[i] := xs[k], i)``;
        the value of ``rates[i]`` itself is irrelevant.  The default
        loops over the candidates (same work as a scalar scan);
        vectorized disciplines override it with one numpy pass over
        the whole grid.
        """
        base = np.array(rates, dtype=float)
        out = np.empty(len(xs))
        for k, x in enumerate(np.asarray(xs, dtype=float).tolist()):
            base[i] = x
            out[k] = self.congestion_i(base, i)
        return out

    def grid_evaluator(self, rates: Sequence[float], i: int
                       ) -> "GridEvaluator":
        """A reusable ``xs -> C_i`` evaluator with the opponents fixed.

        Iterative solvers (the batched grid zoom) evaluate many
        candidate grids against the *same* opponent profile; this hook
        lets a discipline hoist the opponent-only precomputation (sort,
        ladder, prefix sums) out of the per-grid call.  The default
        simply closes over :meth:`congestion_grid`, so overriding the
        grid alone is always enough for correctness.
        """
        def evaluate(xs: Sequence[float]) -> np.ndarray:
            return self.congestion_grid(rates, i, xs)

        return evaluate

    def congestion_many(self, profiles: Sequence[Sequence[float]]
                        ) -> np.ndarray:
        """Congestion matrix for a batch of profiles, shape ``(B, n)``.

        Row ``b`` equals ``congestion(profiles[b])``.  The default is a
        row loop; vectorized disciplines evaluate the whole batch in
        one pass.
        """
        batch = np.asarray(profiles, dtype=float)
        return np.stack([self.congestion(row) for row in batch])

    def __call__(self, rates: Sequence[float]) -> np.ndarray:
        return self.congestion(rates)

    # -- symmetry-class evaluation -------------------------------------------

    def class_congestion(self, class_rates: Sequence[float],
                         counts: Sequence[int]) -> np.ndarray:
        """Per-class congestion of the class-symmetric profile.

        Entry ``k`` is the congestion of *each* of the ``counts[k]``
        users sending ``class_rates[k]`` (symmetry makes them equal).
        The default expands to the N-vector and reads one
        representative per class — exact but O(N); disciplines with
        closed forms override it with an O(K) pass and advertise
        :attr:`vectorized_class_grid`.
        """
        c, m = check_classes(class_rates, counts)
        full = self.congestion(np.repeat(c, m))
        starts = np.concatenate(([0], np.cumsum(m)[:-1]))
        return np.asarray(full[starts], dtype=float)

    def class_deviation_evaluator(self, class_rates: Sequence[float],
                                  counts: Sequence[int], i: int,
                                  include_self: bool = False
                                  ) -> "GridEvaluator":
        """Grid evaluator for one member of class ``i`` deviating.

        The returned closure maps candidate own-rates ``xs`` to the
        deviator's congestion with every other user pinned at their
        class rate.  With ``include_self=False`` (the exact game) the
        deviator is removed from class ``i``, leaving ``counts[i]-1``
        opponents there; with ``include_self=True`` the full profile
        stays in place and the deviator rides on top as an extra
        infinitesimal-mass user — the mean-field closure, whose error
        against the exact game is O(1/N).

        The default expands the opponents to a full vector and
        delegates to :meth:`grid_evaluator` (exact, O(N) setup);
        vectorized disciplines override it with O(K) setup.
        """
        c, m = check_classes(class_rates, counts)
        opp = m.copy()
        if not include_self:
            if opp[i] < 1:
                raise ValueError(f"class {i} is empty")
            opp[i] -= 1
        full = np.concatenate((np.repeat(c, opp), [0.0]))
        return self.grid_evaluator(full, full.size - 1)

    def class_own_derivative(self, class_rates: Sequence[float],
                             counts: Sequence[int], i: int,
                             include_self: bool = False) -> float:
        """``dC/dx`` of a class-``i`` member's deviation at her class rate.

        The slope entering the class-space Nash first-derivative
        condition ``M_i(s_i, C_i) + dC/dx = 0``.  The default is a
        central difference on :meth:`class_deviation_evaluator` with
        the same curvature-aware step as
        :func:`repro.numerics.diff.partial_derivative`; disciplines
        with analytic own-derivatives override it in O(K).
        """
        c, _ = check_classes(class_rates, counts)
        evaluator = self.class_deviation_evaluator(
            c, counts, i, include_self=include_self)
        x = float(c[i])
        h = diff_step(x)
        lo = max(x - h, 0.0)
        pair = evaluator(np.asarray([lo, x + h]))
        return float((pair[1] - pair[0]) / (x + h - lo))

    def class_congestion_many(self, class_profiles: Sequence[Sequence[float]],
                              counts: Sequence[int]) -> np.ndarray:
        """Per-class congestion for a batch of class-rate profiles.

        Row ``b`` equals ``class_congestion(class_profiles[b],
        counts)``; the multiplicity vector is shared by the whole
        batch.  The default is a row loop; vectorized disciplines
        evaluate the batch in one pass.
        """
        batch = np.asarray(class_profiles, dtype=float)
        if batch.ndim != 2:
            raise ValueError(
                f"class_profiles must be 2-D (batch, classes), got "
                f"{batch.shape}")
        return np.stack([self.class_congestion(row, counts)
                         for row in batch])

    # -- derivatives -----------------------------------------------------

    def own_derivative(self, rates: Sequence[float], i: int) -> float:
        """``dC_i/dr_i``; numeric central difference by default."""
        r = np.asarray(rates, dtype=float)
        return partial_derivative(lambda x: self.congestion_i(x, i), r, i)

    def cross_derivative(self, rates: Sequence[float], i: int,
                         j: int) -> float:
        """``dC_i/dr_j``; numeric central difference by default."""
        r = np.asarray(rates, dtype=float)
        return partial_derivative(lambda x: self.congestion_i(x, i), r, j)

    def jacobian(self, rates: Sequence[float]) -> np.ndarray:
        """Matrix ``J[i, j] = dC_i/dr_j``."""
        r = np.asarray(rates, dtype=float)
        n = r.size
        out = np.empty((n, n))
        for i in range(n):
            out[i] = numeric_gradient(lambda x, k=i: self.congestion_i(x, k),
                                      r)
        return out

    def own_second_derivative(self, rates: Sequence[float], i: int) -> float:
        """``d^2 C_i / dr_i^2``; numeric by default."""
        r = np.asarray(rates, dtype=float)
        return second_partial(lambda x: self.congestion_i(x, i), r, i, i)

    def mixed_second_derivative(self, rates: Sequence[float], i: int,
                                j: int) -> float:
        """``d^2 C_i / dr_i dr_j``; numeric by default."""
        r = np.asarray(rates, dtype=float)
        return second_partial(lambda x: self.congestion_i(x, i), r, i, j)

    def gradient_i(self, rates: Sequence[float], i: int) -> np.ndarray:
        """Row ``i`` of the Jacobian: the vector ``dC_i/dr_j``.

        Numeric central differences by default (identical to the
        matching :meth:`jacobian` row); Fair Share and the
        proportional discipline override it with their closed forms.
        """
        r = np.asarray(rates, dtype=float)
        return numeric_gradient(lambda x: self.congestion_i(x, i), r)

    def second_gradient_i(self, rates: Sequence[float], i: int) -> np.ndarray:
        """The vector ``d^2 C_i / dr_i dr_j`` over ``j`` (numeric default)."""
        r = np.asarray(rates, dtype=float)
        return np.asarray(
            [second_partial(lambda x: self.congestion_i(x, i), r, i, j)
             for j in range(r.size)], dtype=float)

    # -- structure ---------------------------------------------------------

    def in_domain(self, rates: Sequence[float]) -> bool:
        """Whether ``rates`` lies in the natural domain ``D``."""
        return self.feasibility.rates_in_domain(rates)

    def is_feasible_at(self, rates: Sequence[float],
                       tol: float = 1e-8) -> bool:
        """Check the allocation satisfies the feasibility constraints."""
        c = self.congestion(rates)
        if not np.all(np.isfinite(c)):
            return False
        return self.feasibility.is_feasible(rates, c, tol=tol)

    def check_symmetry(self, rates: Sequence[float],
                       rng: Optional[np.random.Generator] = None,
                       tol: float = 1e-9) -> bool:
        """Spot-check permutation symmetry at ``rates``.

        Applies a random permutation ``pi`` and verifies
        ``C(pi(r)) == pi(C(r))``.
        """
        r = np.asarray(rates, dtype=float)
        generator = default_rng(rng if rng is not None else 0)
        perm = generator.permutation(r.size)
        base = self.congestion(r)
        permuted = self.congestion(r[perm])
        return bool(np.allclose(permuted, base[perm], atol=tol, rtol=0.0,
                                equal_nan=True))

    def subsystem(self, fixed: Mapping[int, float]) -> "Subsystem":
        """Freeze some users' rates, yielding an induced allocation.

        Parameters
        ----------
        fixed:
            Mapping from (original) user index to the constant rate that
            user holds.  The returned :class:`Subsystem` exposes the
            remaining users as a smaller allocation function.
        """
        return Subsystem(self, fixed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(curve={self.curve!r})"


class Subsystem:
    """An induced allocation function with some rates held constant.

    The paper requires the desirable properties to hold in every
    *subsystem* — the same allocation function with a subset of users
    frozen (e.g. non-optimizing users).  Induced allocations are not
    symmetric in general, so this is deliberately *not* an
    :class:`AllocationFunction` subclass; it exposes the same
    evaluation/derivative interface for the free users.
    """

    def __init__(self, parent: AllocationFunction,
                 fixed: Mapping[int, float]) -> None:
        if not fixed:
            raise ValueError("subsystem requires at least one frozen user")
        self.parent = parent
        self.fixed: Dict[int, float] = {int(k): float(v)
                                        for k, v in fixed.items()}
        self._fixed_idx = sorted(self.fixed)
        self.name = f"{parent.name}|fixed{self._fixed_idx}"

    @property
    def curve(self) -> ServiceCurve:
        """The parent discipline's service curve."""
        return self.parent.curve

    def free_indices(self, n_total: int) -> List[int]:
        """Original indices of the free (optimizing) users."""
        return [i for i in range(n_total) if i not in self.fixed]

    def embed(self, free_rates: Sequence[float]) -> np.ndarray:
        """Assemble the full rate vector from the free users' rates."""
        free = np.asarray(free_rates, dtype=float)
        n_total = free.size + len(self.fixed)
        full = np.empty(n_total)
        free_iter = iter(free)
        for i in range(n_total):
            full[i] = self.fixed.get(i, np.nan)
            if math.isnan(full[i]):
                full[i] = next(free_iter)
        return full

    def congestion(self, free_rates: Sequence[float]) -> np.ndarray:
        """Congestions of the free users only."""
        full = self.embed(free_rates)
        all_c = self.parent.congestion(full)
        free = self.free_indices(full.size)
        return all_c[free]

    def congestion_i(self, free_rates: Sequence[float], i: int) -> float:
        """``C_i`` of the ``i``-th *free* user."""
        return float(self.congestion(free_rates)[i])

    @property
    def vectorized_grid(self) -> bool:
        """Whether the parent discipline has a one-pass grid path."""
        return self.parent.vectorized_grid

    @property
    def grid_min_users(self) -> int:
        """Auto-mode crossover for subsystems: always take the grid.

        The scalar path re-embeds the full vector (a Python loop) on
        every candidate evaluation, while :meth:`grid_evaluator`
        hoists the embedding once — so the batched path wins here even
        for parents whose flat-profile scalar scan is cheaper.
        """
        return 0

    def congestion_grid(self, free_rates: Sequence[float], i: int,
                        xs: Sequence[float]) -> np.ndarray:
        """``C_i`` of free user ``i`` over candidates ``xs``.

        Delegates to the parent's grid at the embedded (original)
        index, so a vectorized parent keeps its one-pass path inside
        subsystems.
        """
        full = self.embed(free_rates)
        orig = self.free_indices(full.size)[i]
        return self.parent.congestion_grid(full, orig, xs)

    def grid_evaluator(self, free_rates: Sequence[float], i: int
                       ) -> GridEvaluator:
        """Reusable grid evaluator for free user ``i`` (see the
        :meth:`AllocationFunction.grid_evaluator` hook); the embedding
        and the parent's opponent precomputation both happen once."""
        full = self.embed(free_rates)
        orig = self.free_indices(full.size)[i]
        return self.parent.grid_evaluator(full, orig)

    def congestion_many(self, profiles: Sequence[Sequence[float]]
                        ) -> np.ndarray:
        """Free-user congestion matrix for a batch of free profiles.

        Embeds the whole batch at once and delegates to the parent's
        :meth:`AllocationFunction.congestion_many`, keeping a
        vectorized parent one-pass inside subsystems.
        """
        batch = np.asarray(profiles, dtype=float)
        n_total = batch.shape[1] + len(self.fixed)
        free = self.free_indices(n_total)
        full = np.empty((batch.shape[0], n_total))
        for idx, rate in self.fixed.items():
            full[:, idx] = rate
        full[:, free] = batch
        return self.parent.congestion_many(full)[:, free]

    def __call__(self, free_rates: Sequence[float]) -> np.ndarray:
        return self.congestion(free_rates)

    def own_derivative(self, free_rates: Sequence[float], i: int) -> float:
        """``dC_i/dr_i`` over the free users (numeric)."""
        r = np.asarray(free_rates, dtype=float)
        return partial_derivative(lambda x: self.congestion_i(x, i), r, i)

    def cross_derivative(self, free_rates: Sequence[float], i: int,
                         j: int) -> float:
        """``dC_i/dr_j`` over the free users (numeric)."""
        r = np.asarray(free_rates, dtype=float)
        return partial_derivative(lambda x: self.congestion_i(x, i), r, j)

    def jacobian(self, free_rates: Sequence[float]) -> np.ndarray:
        """``dC_i/dr_j`` over the free users (numeric)."""
        r = np.asarray(free_rates, dtype=float)
        n = r.size
        out = np.empty((n, n))
        for i in range(n):
            for j in range(n):
                out[i, j] = self.cross_derivative(r, i, j)
        return out

    def own_second_derivative(self, free_rates: Sequence[float],
                              i: int) -> float:
        """``d^2 C_i/dr_i^2`` over the free users (numeric)."""
        r = np.asarray(free_rates, dtype=float)
        return second_partial(lambda x: self.congestion_i(x, i), r, i, i)

    def mixed_second_derivative(self, free_rates: Sequence[float], i: int,
                                j: int) -> float:
        """``d^2 C_i/dr_i dr_j`` over the free users (numeric)."""
        r = np.asarray(free_rates, dtype=float)
        return second_partial(lambda x: self.congestion_i(x, i), r, i, j)

    def gradient_i(self, free_rates: Sequence[float], i: int) -> np.ndarray:
        """Row ``i`` of the free-user Jacobian (numeric)."""
        r = np.asarray(free_rates, dtype=float)
        return np.asarray([self.cross_derivative(r, i, j)
                           for j in range(r.size)], dtype=float)

    def second_gradient_i(self, free_rates: Sequence[float],
                          i: int) -> np.ndarray:
        """``d^2 C_i/dr_i dr_j`` over free ``j`` as a vector (numeric)."""
        r = np.asarray(free_rates, dtype=float)
        return np.asarray([self.mixed_second_derivative(r, i, j)
                           for j in range(r.size)], dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Subsystem({self.parent!r}, fixed={self.fixed})"
