"""Stalling mechanisms: buying efficient incentives with idle service.

Theorem 1 closes the door on work-conserving disciplines ever making
all Nash equilibria Pareto optimal; the paper immediately notes (citing
[33]) that *stalling* disciplines — where the constraint relaxes to
``sum c_i >= f(r)``, i.e. the server may deliberately idle — escape the
impossibility.  "Interestingly, it is the introduction of this
inefficiency (the stalling) that allows the Nash equilibrium to be
efficient."

:class:`PivotAllocation` is the cleanest such construction, the
queueing twin of Clarke-pivot pricing:

``C_i(r) = g(S) - g(S - r_i)``,  ``S = sum r``.

Each user's congestion is the *total-queue externality of her own
presence*, so ``dC_i/dr_i = g'(S) = df/dr_i`` identically: the Nash
first-derivative condition coincides with the Pareto FDC for every
utility profile.  Convexity of ``g`` (with ``g(0) = 0``) gives

``sum_i C_i = N g(S) - sum_i g(S - r_i) >= g(S)``,

so the allocation is realizable by a stalling server that holds
packets beyond their M/M/1 departure times; the overhead
``sum C - g(S)`` is the price of the aligned incentives.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.disciplines.base import (AllocationFunction, GridEvaluator,
                                    check_classes)


class PivotAllocation(AllocationFunction):
    """The stalling pivot mechanism ``C_i = g(S) - g(S - r_i)``."""

    name = "stalling-pivot"
    vectorized_grid = True
    vectorized_class_grid = True

    def congestion(self, rates: Sequence[float]) -> np.ndarray:
        r = np.asarray(rates, dtype=float)
        if np.any(r < 0.0):
            raise ValueError(f"rates must be nonnegative, got {r}")
        total = float(r.sum())
        if total >= self.curve.capacity:
            return np.full(r.shape, math.inf)
        g_total = self.curve.value(total)
        return np.array([g_total - self.curve.value(total - float(x))
                         for x in r])

    def congestion_grid(self, rates: Sequence[float], i: int,
                        xs: Sequence[float]) -> np.ndarray:
        """``C_i(x) = g(S_{-i} + x) - g(S_{-i})``: one curve pass."""
        r = np.asarray(rates, dtype=float)
        cand = np.asarray(xs, dtype=float)
        opp = np.delete(r, i)
        if (opp.size and float(opp.min()) < 0.0) or (
                cand.size and float(cand.min()) < 0.0):
            raise ValueError("rates must be nonnegative")
        opponent_total = float(opp.sum())
        totals = opponent_total + cand
        out = np.full(cand.shape, math.inf)
        ok = totals < self.curve.capacity
        if np.any(ok):
            g_absent = self.curve.value(opponent_total)
            out[ok] = self.curve.values(totals[ok]) - g_absent
        return out

    def congestion_many(self, profiles: Sequence[Sequence[float]]
                        ) -> np.ndarray:
        batch = np.asarray(profiles, dtype=float)
        if batch.ndim != 2:
            raise ValueError(
                f"profiles must be 2-D (batch, users), got {batch.shape}")
        if batch.size and float(batch.min()) < 0.0:
            raise ValueError("rates must be nonnegative")
        totals = batch.sum(axis=1)
        out = np.full(batch.shape, math.inf)
        ok = totals < self.curve.capacity
        g_totals = self.curve.values(totals[ok])
        out[ok] = g_totals[:, None] - self.curve.values(
            totals[ok, None] - batch[ok])
        return out

    # -- symmetry-class evaluation -------------------------------------------

    def class_congestion(self, class_rates: Sequence[float],
                         counts: Sequence[int]) -> np.ndarray:
        """``C_k = g(S) - g(S - s_k)`` with ``S = sum m_k s_k`` — O(K)."""
        c, m = check_classes(class_rates, counts)
        total = float(np.dot(m.astype(float), c))
        if total >= self.curve.capacity:
            return np.full(c.shape, math.inf)
        return self.curve.value(total) - self.curve.values(total - c)

    def class_deviation_evaluator(self, class_rates: Sequence[float],
                                  counts: Sequence[int], i: int,
                                  include_self: bool = False
                                  ) -> GridEvaluator:
        """``C(x) = g(S_opp + x) - g(S_opp)`` with a weighted opponent
        total hoisted out."""
        c, m = check_classes(class_rates, counts)
        w = m.astype(float)
        if not include_self:
            if m[i] < 1:
                raise ValueError(f"class {i} is empty")
            w[i] -= 1.0
        opponent_total = float(np.dot(w, c))
        cap = self.curve.capacity

        def evaluate(xs: Sequence[float]) -> np.ndarray:
            cand = np.asarray(xs, dtype=float)
            if cand.size and float(cand.min()) < 0.0:
                raise ValueError("rates must be nonnegative")
            totals = opponent_total + cand
            out = np.full(cand.shape, math.inf)
            ok = totals < cap
            if np.any(ok):
                g_absent = self.curve.value(opponent_total)
                out[ok] = self.curve.values(totals[ok]) - g_absent
            return out

        return evaluate

    def class_congestion_many(self, class_profiles: Sequence[Sequence[float]],
                              counts: Sequence[int]) -> np.ndarray:
        batch = np.asarray(class_profiles, dtype=float)
        if batch.ndim != 2:
            raise ValueError(
                f"class_profiles must be 2-D (batch, classes), got "
                f"{batch.shape}")
        if batch.size and float(batch.min()) < 0.0:
            raise ValueError("rates must be nonnegative")
        weights = np.asarray(counts, dtype=float)
        totals = batch @ weights
        out = np.full(batch.shape, math.inf)
        ok = totals < self.curve.capacity
        g_totals = self.curve.values(totals[ok])
        out[ok] = g_totals[:, None] - self.curve.values(
            totals[ok, None] - batch[ok])
        return out

    def class_own_derivative(self, class_rates: Sequence[float],
                             counts: Sequence[int], i: int,
                             include_self: bool = False) -> float:
        """``dC/dx = g'(S)`` — the Pareto marginal, in class space too."""
        c, m = check_classes(class_rates, counts)
        w = m.astype(float)
        if not include_self:
            if m[i] < 1:
                raise ValueError(f"class {i} is empty")
            w[i] -= 1.0
        total = float(np.dot(w, c)) + float(c[i])
        if total >= self.curve.capacity:
            return math.inf
        return self.curve.derivative(total)

    def own_derivative(self, rates: Sequence[float], i: int) -> float:
        """``dC_i/dr_i = g'(S)`` — the Pareto marginal, by design."""
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return math.inf
        return self.curve.derivative(total)

    def cross_derivative(self, rates: Sequence[float], i: int,
                         j: int) -> float:
        if i == j:
            return self.own_derivative(rates, i)
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return math.inf
        return (self.curve.derivative(total)
                - self.curve.derivative(total - float(r[i])))

    def jacobian(self, rates: Sequence[float]) -> np.ndarray:
        r = np.asarray(rates, dtype=float)
        n = r.size
        out = np.empty((n, n))
        for i in range(n):
            for j in range(n):
                out[i, j] = self.cross_derivative(r, i, j)
        return out

    def own_second_derivative(self, rates: Sequence[float], i: int) -> float:
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return math.inf
        return self.curve.second_derivative(total)

    def mixed_second_derivative(self, rates: Sequence[float], i: int,
                                j: int) -> float:
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return math.inf
        if i == j:
            return self.curve.second_derivative(total)
        return (self.curve.second_derivative(total)
                - self.curve.second_derivative(total - float(r[i])))

    def stalling_overhead(self, rates: Sequence[float]) -> float:
        """``sum C_i - g(S)``: the service deliberately burnt.

        Zero only in the single-user case; always nonnegative (the
        defining property of a stalling discipline).
        """
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return math.inf
        return float(self.congestion(r).sum() - self.curve.value(total))

    def is_feasible_at(self, rates: Sequence[float],
                       tol: float = 1e-8) -> bool:
        """Stalling feasibility: total at least the M/M/1 value."""
        c = self.congestion(rates)
        if not np.all(np.isfinite(c)):
            return False
        return self.stalling_overhead(rates) >= -tol
