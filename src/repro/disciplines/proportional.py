"""The proportional allocation (FIFO and friends).

Any discipline that treats packets symmetrically without looking at
their source — FIFO, preemptive LIFO, processor sharing, random order,
packet-level polling — splits the total mean queue in proportion to
arrival rates:

``C_i(r) = r_i * g(S) / S``,  ``S = sum r``,

which for the M/M/1 curve is the familiar ``r_i / (1 - S)``.  This is
the paper's baseline: it is in MAC but fails every one of the paper's
desiderata (efficiency, envy-freeness, uniqueness, Stackelberg
robustness, nilpotent dynamics, protection).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.disciplines.base import AllocationFunction


class ProportionalAllocation(AllocationFunction):
    """``C_i = r_i g(S)/S`` with analytic derivatives.

    Derivatives are expressed through the per-unit queue
    ``phi(S) = g(S)/S`` and its derivatives, which keeps the formulas
    valid for any service curve (M/M/1, M/G/1, ...).
    """

    name = "proportional"

    # -- curve helpers -----------------------------------------------------

    def _phi(self, total: float) -> float:
        """Queue per unit of rate, ``g(S)/S`` (limit ``g'(0)`` at 0)."""
        if total <= 0.0:
            return self.curve.derivative(0.0)
        return self.curve.value(total) / total

    def _psi(self, total: float) -> float:
        """``phi'(S) = (g' S - g) / S^2``."""
        if total <= 0.0:
            return 0.5 * self.curve.second_derivative(0.0)
        g = self.curve.value(total)
        gp = self.curve.derivative(total)
        return (gp * total - g) / (total * total)

    def _psi_prime(self, total: float) -> float:
        """``phi''(S) = g''/S - 2 phi'/S``."""
        if total <= 0.0:
            # Third-order Taylor limit; exact value is g'''(0)/3 which we
            # approximate by a one-sided difference of psi.
            h = 1e-6
            return (self._psi(h) - self._psi(0.0)) / h
        gpp = self.curve.second_derivative(total)
        return gpp / total - 2.0 * self._psi(total) / total

    # -- allocation ----------------------------------------------------------

    def congestion(self, rates: Sequence[float]) -> np.ndarray:
        r = np.asarray(rates, dtype=float)
        if np.any(r < 0.0):
            raise ValueError(f"rates must be nonnegative, got {r}")
        total = float(r.sum())
        if total >= self.curve.capacity:
            return np.full(r.shape, math.inf)
        return r * self._phi(total)

    def congestion_i(self, rates: Sequence[float], i: int) -> float:
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return math.inf
        return float(r[i]) * self._phi(total)

    # -- analytic derivatives ----------------------------------------------

    def own_derivative(self, rates: Sequence[float], i: int) -> float:
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return math.inf
        return self._phi(total) + float(r[i]) * self._psi(total)

    def cross_derivative(self, rates: Sequence[float], i: int,
                         j: int) -> float:
        if i == j:
            return self.own_derivative(rates, i)
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return math.inf
        return float(r[i]) * self._psi(total)

    def jacobian(self, rates: Sequence[float]) -> np.ndarray:
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        n = r.size
        if total >= self.curve.capacity:
            return np.full((n, n), math.inf)
        psi = self._psi(total)
        phi = self._phi(total)
        out = np.outer(r, np.ones(n)) * psi
        out[np.diag_indices(n)] += phi
        return out

    def own_second_derivative(self, rates: Sequence[float], i: int) -> float:
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return math.inf
        return 2.0 * self._psi(total) + float(r[i]) * self._psi_prime(total)

    def mixed_second_derivative(self, rates: Sequence[float], i: int,
                                j: int) -> float:
        if i == j:
            return self.own_second_derivative(rates, i)
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return math.inf
        return self._psi(total) + float(r[i]) * self._psi_prime(total)
