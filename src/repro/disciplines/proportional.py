"""The proportional allocation (FIFO and friends).

Any discipline that treats packets symmetrically without looking at
their source — FIFO, preemptive LIFO, processor sharing, random order,
packet-level polling — splits the total mean queue in proportion to
arrival rates:

``C_i(r) = r_i * g(S) / S``,  ``S = sum r``,

which for the M/M/1 curve is the familiar ``r_i / (1 - S)``.  This is
the paper's baseline: it is in MAC but fails every one of the paper's
desiderata (efficiency, envy-freeness, uniqueness, Stackelberg
robustness, nilpotent dynamics, protection).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.disciplines.base import (AllocationFunction, GridEvaluator,
                                    check_classes)


class ProportionalAllocation(AllocationFunction):
    """``C_i = r_i g(S)/S`` with analytic derivatives.

    Derivatives are expressed through the per-unit queue
    ``phi(S) = g(S)/S`` and its derivatives, which keeps the formulas
    valid for any service curve (M/M/1, M/G/1, ...).
    """

    name = "proportional"
    vectorized_grid = True
    vectorized_class_grid = True

    #: Measured crossover for the auto mode: the scalar objective here
    #: is one ``sum`` plus two curve calls, so the batched grid's numpy
    #: call overhead only pays off in the thousands of users
    #: (bench: scalar wins up to N~4096 on the reference box).
    grid_min_users = 4096

    # -- curve helpers -----------------------------------------------------

    def _phi_values(self, totals: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_phi` over an array of (stable) totals."""
        out = np.empty(totals.shape)
        pos = totals > 0.0
        out[pos] = self.curve.values(totals[pos]) / totals[pos]
        out[~pos] = self.curve.derivative(0.0)
        return out

    def _phi(self, total: float) -> float:
        """Queue per unit of rate, ``g(S)/S`` (limit ``g'(0)`` at 0)."""
        if total <= 0.0:
            return self.curve.derivative(0.0)
        return self.curve.value(total) / total

    def _psi(self, total: float) -> float:
        """``phi'(S) = (g' S - g) / S^2``."""
        if total <= 0.0:
            return 0.5 * self.curve.second_derivative(0.0)
        g = self.curve.value(total)
        gp = self.curve.derivative(total)
        return (gp * total - g) / (total * total)

    def _psi_prime(self, total: float) -> float:
        """``phi''(S) = g''/S - 2 phi'/S``."""
        if total <= 0.0:
            # Third-order Taylor limit; exact value is g'''(0)/3 which we
            # approximate by a one-sided difference of psi.
            h = 1e-6
            return (self._psi(h) - self._psi(0.0)) / h
        gpp = self.curve.second_derivative(total)
        return gpp / total - 2.0 * self._psi(total) / total

    # -- allocation ----------------------------------------------------------

    def congestion(self, rates: Sequence[float]) -> np.ndarray:
        r = np.asarray(rates, dtype=float)
        if np.any(r < 0.0):
            raise ValueError(f"rates must be nonnegative, got {r}")
        total = float(r.sum())
        if total >= self.curve.capacity:
            return np.full(r.shape, math.inf)
        return r * self._phi(total)

    def congestion_i(self, rates: Sequence[float], i: int) -> float:
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return math.inf
        return float(r[i]) * self._phi(total)

    # -- batched evaluation --------------------------------------------------

    def congestion_grid(self, rates: Sequence[float], i: int,
                        xs: Sequence[float]) -> np.ndarray:
        """``C_i(x) = x * phi(S_{-i} + x)`` over the whole grid at once."""
        return self.grid_evaluator(rates, i)(xs)

    def grid_evaluator(self, rates: Sequence[float], i: int):
        """Hoist the opponent total out of repeated grid evaluations."""
        r = np.asarray(rates, dtype=float)
        opponent_total = float(np.delete(r, i).sum())
        cap = self.curve.capacity

        def evaluate(xs: Sequence[float]) -> np.ndarray:
            cand = np.asarray(xs, dtype=float)
            totals = opponent_total + cand
            out = np.full(cand.shape, math.inf)
            ok = totals < cap
            out[ok] = cand[ok] * self._phi_values(totals[ok])
            return out

        return evaluate

    def congestion_many(self, profiles: Sequence[Sequence[float]]
                        ) -> np.ndarray:
        batch = np.asarray(profiles, dtype=float)
        if batch.ndim != 2:
            raise ValueError(
                f"profiles must be 2-D (batch, users), got {batch.shape}")
        if batch.size and float(batch.min()) < 0.0:
            raise ValueError("rates must be nonnegative")
        totals = batch.sum(axis=1)
        out = np.full(batch.shape, math.inf)
        ok = totals < self.curve.capacity
        out[ok] = batch[ok] * self._phi_values(totals[ok])[:, None]
        return out

    # -- symmetry-class evaluation -------------------------------------------

    def class_congestion(self, class_rates: Sequence[float],
                         counts: Sequence[int]) -> np.ndarray:
        """``C_k = s_k phi(S)`` with ``S = sum_k m_k s_k`` — O(K)."""
        c, m = check_classes(class_rates, counts)
        total = float(np.dot(m.astype(float), c))
        if total >= self.curve.capacity:
            return np.full(c.shape, math.inf)
        return c * self._phi(total)

    def class_deviation_evaluator(self, class_rates: Sequence[float],
                                  counts: Sequence[int], i: int,
                                  include_self: bool = False
                                  ) -> GridEvaluator:
        """Hoist the weighted opponent total; same closure as per-user."""
        c, m = check_classes(class_rates, counts)
        w = m.astype(float)
        if not include_self:
            if m[i] < 1:
                raise ValueError(f"class {i} is empty")
            w[i] -= 1.0
        opponent_total = float(np.dot(w, c))
        cap = self.curve.capacity

        def evaluate(xs: Sequence[float]) -> np.ndarray:
            cand = np.asarray(xs, dtype=float)
            totals = opponent_total + cand
            out = np.full(cand.shape, math.inf)
            ok = totals < cap
            out[ok] = cand[ok] * self._phi_values(totals[ok])
            return out

        return evaluate

    def class_congestion_many(self, class_profiles: Sequence[Sequence[float]],
                              counts: Sequence[int]) -> np.ndarray:
        batch = np.asarray(class_profiles, dtype=float)
        if batch.ndim != 2:
            raise ValueError(
                f"class_profiles must be 2-D (batch, classes), got "
                f"{batch.shape}")
        if batch.size and float(batch.min()) < 0.0:
            raise ValueError("rates must be nonnegative")
        weights = np.asarray(counts, dtype=float)
        totals = batch @ weights
        out = np.full(batch.shape, math.inf)
        ok = totals < self.curve.capacity
        out[ok] = batch[ok] * self._phi_values(totals[ok])[:, None]
        return out

    def class_own_derivative(self, class_rates: Sequence[float],
                             counts: Sequence[int], i: int,
                             include_self: bool = False) -> float:
        """``phi(S) + x psi(S)``, the per-user slope at the class point."""
        c, m = check_classes(class_rates, counts)
        w = m.astype(float)
        if not include_self:
            if m[i] < 1:
                raise ValueError(f"class {i} is empty")
            w[i] -= 1.0
        x = float(c[i])
        total = float(np.dot(w, c)) + x
        if total >= self.curve.capacity:
            return math.inf
        return self._phi(total) + x * self._psi(total)

    # -- analytic derivatives ----------------------------------------------

    def own_derivative(self, rates: Sequence[float], i: int) -> float:
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return math.inf
        return self._phi(total) + float(r[i]) * self._psi(total)

    def cross_derivative(self, rates: Sequence[float], i: int,
                         j: int) -> float:
        if i == j:
            return self.own_derivative(rates, i)
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return math.inf
        return float(r[i]) * self._psi(total)

    def jacobian(self, rates: Sequence[float]) -> np.ndarray:
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        n = r.size
        if total >= self.curve.capacity:
            return np.full((n, n), math.inf)
        psi = self._psi(total)
        phi = self._phi(total)
        out = np.outer(r, np.ones(n)) * psi
        out[np.diag_indices(n)] += phi
        return out

    def gradient_i(self, rates: Sequence[float], i: int) -> np.ndarray:
        """Row ``i`` of the Jacobian: ``r_i psi(S)`` off-diagonal,
        ``phi(S) + r_i psi(S)`` on it — no finite differences."""
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return np.full(r.shape, math.inf)
        psi = self._psi(total)
        out = np.full(r.shape, float(r[i]) * psi)
        out[i] = self._phi(total) + float(r[i]) * psi
        return out

    def second_gradient_i(self, rates: Sequence[float], i: int) -> np.ndarray:
        """``d^2 C_i/dr_i dr_j`` as a vector, from ``psi``/``psi'``."""
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return np.full(r.shape, math.inf)
        psi = self._psi(total)
        psi_prime = self._psi_prime(total)
        out = np.full(r.shape, psi + float(r[i]) * psi_prime)
        out[i] = 2.0 * psi + float(r[i]) * psi_prime
        return out

    def own_second_derivative(self, rates: Sequence[float], i: int) -> float:
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return math.inf
        return 2.0 * self._psi(total) + float(r[i]) * self._psi_prime(total)

    def mixed_second_derivative(self, rates: Sequence[float], i: int,
                                j: int) -> float:
        if i == j:
            return self.own_second_derivative(rates, i)
        r = np.asarray(rates, dtype=float)
        total = float(r.sum())
        if total >= self.curve.capacity:
            return math.inf
        return self._psi(total) + float(r[i]) * self._psi_prime(total)
