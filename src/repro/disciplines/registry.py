"""Name-based discipline construction for the CLI and experiments."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.disciplines.base import AllocationFunction
from repro.disciplines.fair_share import FairShareAllocation
from repro.disciplines.priority import PriorityAllocation
from repro.disciplines.proportional import ProportionalAllocation
from repro.disciplines.separable import SeparableAllocation
from repro.disciplines.stalling import PivotAllocation
from repro.exceptions import DisciplineError

_FACTORIES: Dict[str, Callable[[], AllocationFunction]] = {
    "fifo": ProportionalAllocation,
    "proportional": ProportionalAllocation,
    "fair-share": FairShareAllocation,
    "fs": FairShareAllocation,
    "priority": PriorityAllocation,
    "priority-ascending": PriorityAllocation,
    "priority-descending": lambda: PriorityAllocation(ascending=False),
    "separable": SeparableAllocation,
    "pivot": PivotAllocation,
    "stalling-pivot": PivotAllocation,
}


def available_disciplines() -> List[str]:
    """Canonical names accepted by :func:`make_discipline`."""
    return sorted(_FACTORIES)


def make_discipline(name: str) -> AllocationFunction:
    """Construct a discipline by (case-insensitive) name."""
    key = name.strip().lower()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise DisciplineError(
            f"unknown discipline {name!r}; available: "
            f"{', '.join(available_disciplines())}") from None
    return factory()
