"""Numeric MAC-membership checking (Definition 2).

An allocation function in ``AC`` is in ``MAC`` (monotonic AC) if

1. ``dC_i/dr_j >= 0`` for all ``i, j`` — nobody benefits from another
   user's extra traffic;
2. ``dC_i/dr_i > 0`` — your own congestion strictly rises with your own
   rate;
3. a technical persistence condition on where cross-derivatives vanish.

Conditions (1) and (2) are checked pointwise on a sample of the domain;
condition (3) is checked in its testable consequence: if
``dC_i/dr_j = 0`` at a point, it must remain 0 after decreasing ``r_i``
and increasing any ``r_k`` (``k != i``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.disciplines.base import AllocationFunction
from repro.numerics.rng import default_rng


@dataclass
class MACReport:
    """Result of a numeric MAC check.

    Attributes
    ----------
    is_mac:
        True when no violation was found at any sampled point.
    violations:
        Human-readable descriptions of each violation encountered.
    points_checked:
        Number of rate vectors examined.
    """

    is_mac: bool
    violations: List[str] = field(default_factory=list)
    points_checked: int = 0


def sample_domain(n_users: int, n_points: int,
                  rng: Optional[np.random.Generator] = None,
                  max_load: float = 0.95) -> np.ndarray:
    """Sample rate vectors from the natural domain ``D``.

    Draws Dirichlet directions scaled by a uniform total load, giving
    good coverage of both balanced and skewed rate vectors.
    """
    generator = default_rng(rng if rng is not None else 0)
    direction = generator.dirichlet(np.ones(n_users), size=n_points)
    load = generator.uniform(0.05, max_load, size=(n_points, 1))
    return direction * load


def check_mac(allocation: AllocationFunction, n_users: int,
              n_points: int = 40,
              rng: Optional[np.random.Generator] = None,
              derivative_tol: float = 1e-7,
              zero_tol: float = 1e-7) -> MACReport:
    """Numerically check Definition-2 conditions on sampled points."""
    generator = default_rng(rng if rng is not None else 7)
    points = sample_domain(n_users, n_points, rng=generator)
    violations: List[str] = []
    for rates in points:
        jac = allocation.jacobian(rates)
        if not np.all(np.isfinite(jac)):
            continue        # outside the reliable region; skip
        for i in range(n_users):
            if jac[i, i] <= derivative_tol:
                violations.append(
                    f"dC_{i}/dr_{i} = {jac[i, i]:.3e} <= 0 at {rates}")
        negative = np.argwhere(jac < -derivative_tol)
        for i, j in negative:
            violations.append(
                f"dC_{i}/dr_{j} = {jac[i, j]:.3e} < 0 at {rates}")
        violations.extend(
            _check_persistence(allocation, rates, jac, generator,
                               zero_tol=zero_tol))
    return MACReport(is_mac=not violations, violations=violations,
                     points_checked=len(points))


def _check_persistence(allocation: AllocationFunction,
                       rates: Sequence[float], jac: np.ndarray,
                       rng: np.random.Generator,
                       zero_tol: float) -> List[str]:
    """Condition 3: a vanished cross-derivative stays vanished when
    ``r_i`` decreases and the other rates increase."""
    r = np.asarray(rates, dtype=float)
    n = r.size
    out: List[str] = []
    zero_pairs = [(i, j) for i in range(n) for j in range(n)
                  if i != j and abs(jac[i, j]) <= zero_tol]
    for i, j in zero_pairs[:4]:     # a few probes per point suffice
        shifted = r.copy()
        shifted[i] *= rng.uniform(0.5, 0.95)
        for k in range(n):
            if k != i:
                shifted[k] *= rng.uniform(1.0, 1.05)
        if np.sum(shifted) >= allocation.curve.capacity * 0.98:
            continue
        moved = allocation.cross_derivative(shifted, i, j)
        if np.isfinite(moved) and abs(moved) > 100.0 * zero_tol:
            out.append(
                f"dC_{i}/dr_{j} vanished at {r} but is {moved:.3e} "
                f"at {shifted}")
    return out
