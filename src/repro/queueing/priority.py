"""Analytic priority-queue formulas (unit-rate exponential server).

These are the closed forms behind the Table-1 priority-ladder
realization of Fair Share and behind the HOL-priority allocation
function, and the references the discrete-event simulator is validated
against.

Class 1 is the *highest* priority throughout.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def _validate(class_rates: Sequence[float]) -> np.ndarray:
    rates = np.asarray(class_rates, dtype=float)
    if rates.ndim != 1 or rates.size == 0:
        raise ValueError("class_rates must be a non-empty vector")
    if np.any(rates < 0.0):
        raise ValueError(f"class rates must be nonnegative, got {rates}")
    return rates


def preemptive_priority_queues(class_rates: Sequence[float]) -> np.ndarray:
    """Per-class mean number in system under preemptive priority.

    Classes ``1..k`` are unaffected by lower classes, so their aggregate
    is an M/M/1 at load ``sigma_k = sum_{j<=k} lambda_j``; class ``k``'s
    mean number in system telescopes:

    ``L_k = g(sigma_k) - g(sigma_{k-1})``,  ``g(x) = x/(1-x)``.

    Classes whose cumulative load reaches 1 (and all lower ones) are
    unstable and get ``inf``.
    """
    rates = _validate(class_rates)
    sigma = np.cumsum(rates)
    stable = sigma < 1.0
    # sigma is nondecreasing, so the stable prefix is contiguous.
    n_stable = int(stable.sum())
    g = sigma[:n_stable] / (1.0 - sigma[:n_stable])
    queues = np.full_like(rates, math.inf)
    queues[:n_stable] = np.diff(g, prepend=0.0)
    return queues


def nonpreemptive_priority_queues(class_rates: Sequence[float]) -> np.ndarray:
    """Per-class mean number in system under HOL (nonpreemptive) priority.

    Cobham's formula with exponential service (``E[S] = 1``,
    ``E[S^2] = 2``): residual work ``W0 = rho``, class-``k`` queueing
    delay ``W_k = W0 / ((1 - sigma_{k-1})(1 - sigma_k))``, and by
    Little's law the mean number in system is
    ``L_k = lambda_k W_k + rho_k``.

    The whole system is unstable when total load reaches 1 (a
    nonpreemptive server still completes whatever it starts, so any
    class with ``sigma_k >= 1`` diverges).
    """
    rates = _validate(class_rates)
    sigma = np.cumsum(rates)
    if sigma[-1] >= 1.0:   # total load rho = sigma_N
        return np.full_like(rates, math.inf)
    w0 = float(sigma[-1])  # sum lambda_j * E[S^2] / 2 with E[S^2] = 2
    prev_sigma = np.concatenate(([0.0], sigma[:-1]))
    wait = w0 / ((1.0 - prev_sigma) * (1.0 - sigma))
    return rates * (wait + 1.0)


def fair_share_class_rates(user_rates: Sequence[float]) -> np.ndarray:
    """Aggregate per-class rates of the Table-1 Fair Share ladder.

    With users sorted so ``r_1 <= ... <= r_N`` (``r_0 = 0``), priority
    class ``m`` receives rate ``r_m - r_{m-1}`` from *each* of users
    ``m..N``, hence an aggregate rate ``(N - m + 1)(r_m - r_{m-1})``.
    The cumulative class rate through class ``m`` is then
    ``R_m = (N - m + 1) r_m + sum_{j<m} r_j`` — exactly the argument of
    ``g`` in the paper's recursion for ``C^FS``.
    """
    rates = _validate(user_rates)
    ordered = np.sort(rates)
    n = ordered.size
    increments = np.diff(np.concatenate(([0.0], ordered)))
    multiplicity = n - np.arange(n)
    return multiplicity * increments
