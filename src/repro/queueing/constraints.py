"""Feasibility of congestion allocations (Section 3.1).

A work-conserving (nonstalling) discipline can realize congestion
vector ``c`` for rate vector ``r`` iff

* ``sum_i c_i == g(sum_i r_i)``  (total queue is the M/M/1 value), and
* for every subset ``S`` of users, ``sum_{i in S} c_i >= g(sum_{i in S}
  r_i)`` (no subset can beat the queue it would have alone) —
  the Coffman-Mitrani characterization.

Checking every subset is exponential, but the paper notes it suffices
to check prefixes after sorting users by ``c_i / r_i`` ascending: any
other subset of size ``k`` has at least the aggregate queue of the
``k`` "cheapest" users.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import FeasibilityError
from repro.queueing.service_curves import MM1Curve, ServiceCurve


def _as_vector(values: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return arr


class FeasibilitySet:
    """The set of feasible ``(r, c)`` allocations for a service curve.

    Parameters
    ----------
    curve:
        The total-queue service curve ``g``; defaults to the paper's
        M/M/1 curve.
    """

    def __init__(self, curve: Optional[ServiceCurve] = None) -> None:
        self.curve = curve if curve is not None else MM1Curve()

    # -- rate-vector domain -------------------------------------------------

    def rates_in_domain(self, rates: Sequence[float]) -> bool:
        """Whether ``rates`` lies in the natural domain ``D``.

        ``D = { r : r_i > 0 and sum(r) < capacity }``.
        """
        r = _as_vector(rates, "rates")
        return bool(np.all(r > 0.0) and r.sum() < self.curve.capacity)

    def require_domain(self, rates: Sequence[float]) -> np.ndarray:
        """Validate and return ``rates``; raise if outside ``D``."""
        r = _as_vector(rates, "rates")
        if not np.all(r > 0.0):
            raise FeasibilityError(f"all rates must be positive, got {r}")
        if r.sum() >= self.curve.capacity:
            raise FeasibilityError(
                f"total load {r.sum():.6f} is at or above capacity "
                f"{self.curve.capacity}")
        return r

    # -- allocation feasibility --------------------------------------------

    def total_queue(self, rates: Sequence[float]) -> float:
        """``f(r) = g(sum r)``."""
        r = _as_vector(rates, "rates")
        return self.curve.value(float(r.sum()))

    def constraint_residual(self, rates: Sequence[float],
                            congestions: Sequence[float]) -> float:
        """``F(r, c) = sum(c) - f(r)`` (zero iff work-conserving)."""
        r = _as_vector(rates, "rates")
        c = _as_vector(congestions, "congestions")
        if r.size != c.size:
            raise ValueError("rates and congestions must have equal length")
        return float(c.sum() - self.total_queue(r))

    def subset_slacks(self, rates: Sequence[float],
                      congestions: Sequence[float]) -> np.ndarray:
        """Slacks of the binding subset constraints.

        Users are sorted by ``c_i / r_i`` ascending; entry ``k`` (for
        ``k = 1 .. N-1``) is ``sum_{i<=k} c_i - g(sum_{i<=k} r_i)``,
        which must be nonnegative for feasibility.  The full-set
        constraint is the equality handled separately.
        """
        r = _as_vector(rates, "rates")
        c = _as_vector(congestions, "congestions")
        if r.size != c.size:
            raise ValueError("rates and congestions must have equal length")
        if np.any(r <= 0.0):
            raise FeasibilityError("subset slacks require positive rates")
        order = np.argsort(c / r, kind="stable")
        r_sorted = r[order]
        c_sorted = c[order]
        slacks = np.empty(max(r.size - 1, 0))
        run_r = 0.0
        run_c = 0.0
        for k in range(r.size - 1):
            run_r += float(r_sorted[k])
            run_c += float(c_sorted[k])
            slacks[k] = run_c - self.curve.value(run_r)
        return slacks

    def is_feasible(self, rates: Sequence[float],
                    congestions: Sequence[float],
                    tol: float = 1e-9) -> bool:
        """Full feasibility test: equality constraint + subset slacks."""
        residual = self.constraint_residual(rates, congestions)
        if abs(residual) > tol:
            return False
        slacks = self.subset_slacks(rates, congestions)
        return bool(slacks.size == 0 or slacks.min() >= -tol)

    def is_interior(self, rates: Sequence[float],
                    congestions: Sequence[float],
                    tol: float = 1e-9) -> bool:
        """Feasible with *strictly* positive subset slacks.

        The paper restricts acceptable allocation functions to the
        interior of the feasible set, where no subset inequality is
        saturated.
        """
        residual = self.constraint_residual(rates, congestions)
        if abs(residual) > tol:
            return False
        slacks = self.subset_slacks(rates, congestions)
        return bool(slacks.size == 0 or slacks.min() > tol)

    def marginal_cost(self, rates: Sequence[float]) -> float:
        """``f'(sum r) = dF/dr_i / dF/dc_i`` — the Pareto FDC target.

        At a Pareto optimum every user's marginal rate of substitution
        ``M_i`` equals ``-f'``; this scalar is ``Z_i`` up to sign.
        """
        r = _as_vector(rates, "rates")
        return self.curve.derivative(float(r.sum()))


# Convenience module-level wrappers around a default M/M/1 set. ------------

_DEFAULT = FeasibilitySet()


def constraint_residual(rates: Sequence[float],
                        congestions: Sequence[float]) -> float:
    """``F(r, c)`` under the paper's M/M/1 curve."""
    return _DEFAULT.constraint_residual(rates, congestions)


def subset_slacks(rates: Sequence[float],
                  congestions: Sequence[float]) -> np.ndarray:
    """Subset-constraint slacks under the paper's M/M/1 curve."""
    return _DEFAULT.subset_slacks(rates, congestions)


def is_feasible(rates: Sequence[float], congestions: Sequence[float],
                tol: float = 1e-9) -> bool:
    """Feasibility under the paper's M/M/1 curve."""
    return _DEFAULT.is_feasible(rates, congestions, tol=tol)
