"""Service curves: total mean queue as a function of total load.

The paper's constraint is ``sum_i c_i = f(r) = g(sum_i r_i)`` with
``g(x) = x / (1 - x)`` for the preemptive M/M/1 switch.  Footnote 5
notes that every result holds for any strictly increasing, strictly
convex ``g`` — covering nonpreemptive M/M/1 and M/G/1 systems — and
Corollary 2 analyzes a quadratic ``f``.  We therefore make the curve an
explicit object that the constraint set, the disciplines, and the
Pareto machinery are all parameterized by.

Each curve exposes value, first and second derivatives, and its
capacity (the load at which the queue diverges; ``inf`` for curves
without a pole).  The batched counterparts (``values``,
``derivatives``, ``second_derivatives``) evaluate a whole numpy array
of loads at once; the concrete curves override them with masked
vector formulas so the vectorized solver core never pays a Python
call per grid point.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np


class ServiceCurve(ABC):
    """Strictly increasing, strictly convex map from load to mean queue."""

    #: Load at which the mean queue diverges (``inf`` if never).
    capacity: float = math.inf

    @abstractmethod
    def value(self, load: float) -> float:
        """Total mean queue at total offered ``load``."""

    @abstractmethod
    def derivative(self, load: float) -> float:
        """``g'(load)``."""

    @abstractmethod
    def second_derivative(self, load: float) -> float:
        """``g''(load)``."""

    def values(self, loads: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`value` over an array of loads.

        The default delegates to the scalar method elementwise;
        concrete curves override it with a masked vector formula that
        is bit-identical to the scalar one.
        """
        arr = np.asarray(loads, dtype=float)
        flat = [self.value(x) for x in arr.ravel().tolist()]
        return np.asarray(flat, dtype=float).reshape(arr.shape)

    def derivatives(self, loads: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`derivative` over an array of loads."""
        arr = np.asarray(loads, dtype=float)
        flat = [self.derivative(x) for x in arr.ravel().tolist()]
        return np.asarray(flat, dtype=float).reshape(arr.shape)

    def second_derivatives(self, loads: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`second_derivative` over an array of loads."""
        arr = np.asarray(loads, dtype=float)
        flat = [self.second_derivative(x) for x in arr.ravel().tolist()]
        return np.asarray(flat, dtype=float).reshape(arr.shape)

    def __call__(self, load: float) -> float:
        return self.value(load)

    def admits(self, load: float) -> bool:
        """Whether ``load`` lies strictly inside the stable region."""
        return 0.0 <= load < self.capacity

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class MM1Curve(ServiceCurve):
    """The paper's curve: ``g(x) = x / (1 - x)`` (preemptive M/M/1).

    Loads at or beyond capacity map to ``inf``, matching the paper's
    extension of allocation functions outside the natural domain ``D``
    (footnote 6 / Section 4.2.2).
    """

    capacity = 1.0

    def value(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        if load >= 1.0:
            return math.inf
        return load / (1.0 - load)

    def derivative(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        if load >= 1.0:
            return math.inf
        return 1.0 / (1.0 - load) ** 2

    def second_derivative(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        if load >= 1.0:
            return math.inf
        return 2.0 / (1.0 - load) ** 3

    def values(self, loads: np.ndarray) -> np.ndarray:
        arr = np.asarray(loads, dtype=float)
        _check_nonnegative(arr)
        out = np.full(arr.shape, math.inf)
        stable = arr < 1.0
        out[stable] = arr[stable] / (1.0 - arr[stable])
        return out

    def derivatives(self, loads: np.ndarray) -> np.ndarray:
        arr = np.asarray(loads, dtype=float)
        _check_nonnegative(arr)
        out = np.full(arr.shape, math.inf)
        stable = arr < 1.0
        out[stable] = 1.0 / (1.0 - arr[stable]) ** 2
        return out

    def second_derivatives(self, loads: np.ndarray) -> np.ndarray:
        arr = np.asarray(loads, dtype=float)
        _check_nonnegative(arr)
        out = np.full(arr.shape, math.inf)
        stable = arr < 1.0
        out[stable] = 2.0 / (1.0 - arr[stable]) ** 3
        return out


def _check_nonnegative(arr: np.ndarray) -> None:
    """Match the scalar methods' rejection of negative loads."""
    if arr.size and float(arr.min()) < 0.0:
        raise ValueError(
            f"load must be nonnegative, got {float(arr.min())}")


class MG1Curve(ServiceCurve):
    """Mean number in system of an M/G/1 queue (Pollaczek-Khinchine).

    ``g(x) = x + x^2 (1 + cv^2) / (2 (1 - x))`` where ``cv`` is the
    coefficient of variation of the service distribution.  ``cv = 1``
    recovers the M/M/1 curve; ``cv = 0`` is M/D/1.
    """

    capacity = 1.0

    def __init__(self, cv: float = 1.0) -> None:
        if cv < 0.0:
            raise ValueError(f"coefficient of variation must be >= 0, got {cv}")
        self.cv = float(cv)
        self._k = (1.0 + cv * cv) / 2.0

    def value(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        if load >= 1.0:
            return math.inf
        return load + self._k * load * load / (1.0 - load)

    def derivative(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        if load >= 1.0:
            return math.inf
        u = 1.0 - load
        return 1.0 + self._k * (2.0 * load * u + load * load) / (u * u)

    def second_derivative(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        if load >= 1.0:
            return math.inf
        u = 1.0 - load
        return self._k * 2.0 / (u * u * u)

    def values(self, loads: np.ndarray) -> np.ndarray:
        arr = np.asarray(loads, dtype=float)
        _check_nonnegative(arr)
        out = np.full(arr.shape, math.inf)
        stable = arr < 1.0
        x = arr[stable]
        out[stable] = x + self._k * x * x / (1.0 - x)
        return out

    def derivatives(self, loads: np.ndarray) -> np.ndarray:
        arr = np.asarray(loads, dtype=float)
        _check_nonnegative(arr)
        out = np.full(arr.shape, math.inf)
        stable = arr < 1.0
        x = arr[stable]
        u = 1.0 - x
        out[stable] = 1.0 + self._k * (2.0 * x * u + x * x) / (u * u)
        return out

    def second_derivatives(self, loads: np.ndarray) -> np.ndarray:
        arr = np.asarray(loads, dtype=float)
        _check_nonnegative(arr)
        out = np.full(arr.shape, math.inf)
        stable = arr < 1.0
        u = 1.0 - arr[stable]
        out[stable] = self._k * 2.0 / (u * u * u)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MG1Curve(cv={self.cv})"


class MD1Curve(MG1Curve):
    """M/D/1 mean number in system (deterministic service)."""

    def __init__(self) -> None:
        super().__init__(cv=0.0)


class QuadraticCurve(ServiceCurve):
    """The Corollary-2 curve ``g(x) = a x^2``.

    With the *separable* constraint ``f(r) = sum_i r_i^2`` (note: sum of
    squares, not the square of the sum), the allocation ``C_i = r_i^2``
    makes every Nash equilibrium Pareto optimal.  This class is the
    square-of-total variant used when the constraint really is a curve
    of total load; the separable constraint itself lives in
    :class:`repro.queueing.constraints.FeasibilitySet` via per-user
    curves.
    """

    capacity = math.inf

    def __init__(self, a: float = 1.0) -> None:
        if a <= 0.0:
            raise ValueError(f"coefficient must be positive, got {a}")
        self.a = float(a)

    def value(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        return self.a * load * load

    def derivative(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        return 2.0 * self.a * load

    def second_derivative(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        return 2.0 * self.a

    def values(self, loads: np.ndarray) -> np.ndarray:
        arr = np.asarray(loads, dtype=float)
        _check_nonnegative(arr)
        return self.a * arr * arr

    def derivatives(self, loads: np.ndarray) -> np.ndarray:
        arr = np.asarray(loads, dtype=float)
        _check_nonnegative(arr)
        return 2.0 * self.a * arr

    def second_derivatives(self, loads: np.ndarray) -> np.ndarray:
        arr = np.asarray(loads, dtype=float)
        _check_nonnegative(arr)
        return np.full(arr.shape, 2.0 * self.a)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuadraticCurve(a={self.a})"
