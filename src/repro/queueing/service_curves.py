"""Service curves: total mean queue as a function of total load.

The paper's constraint is ``sum_i c_i = f(r) = g(sum_i r_i)`` with
``g(x) = x / (1 - x)`` for the preemptive M/M/1 switch.  Footnote 5
notes that every result holds for any strictly increasing, strictly
convex ``g`` — covering nonpreemptive M/M/1 and M/G/1 systems — and
Corollary 2 analyzes a quadratic ``f``.  We therefore make the curve an
explicit object that the constraint set, the disciplines, and the
Pareto machinery are all parameterized by.

Each curve exposes value, first and second derivatives, and its
capacity (the load at which the queue diverges; ``inf`` for curves
without a pole).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


class ServiceCurve(ABC):
    """Strictly increasing, strictly convex map from load to mean queue."""

    #: Load at which the mean queue diverges (``inf`` if never).
    capacity: float = math.inf

    @abstractmethod
    def value(self, load: float) -> float:
        """Total mean queue at total offered ``load``."""

    @abstractmethod
    def derivative(self, load: float) -> float:
        """``g'(load)``."""

    @abstractmethod
    def second_derivative(self, load: float) -> float:
        """``g''(load)``."""

    def __call__(self, load: float) -> float:
        return self.value(load)

    def admits(self, load: float) -> bool:
        """Whether ``load`` lies strictly inside the stable region."""
        return 0.0 <= load < self.capacity

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class MM1Curve(ServiceCurve):
    """The paper's curve: ``g(x) = x / (1 - x)`` (preemptive M/M/1).

    Loads at or beyond capacity map to ``inf``, matching the paper's
    extension of allocation functions outside the natural domain ``D``
    (footnote 6 / Section 4.2.2).
    """

    capacity = 1.0

    def value(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        if load >= 1.0:
            return math.inf
        return load / (1.0 - load)

    def derivative(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        if load >= 1.0:
            return math.inf
        return 1.0 / (1.0 - load) ** 2

    def second_derivative(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        if load >= 1.0:
            return math.inf
        return 2.0 / (1.0 - load) ** 3


class MG1Curve(ServiceCurve):
    """Mean number in system of an M/G/1 queue (Pollaczek-Khinchine).

    ``g(x) = x + x^2 (1 + cv^2) / (2 (1 - x))`` where ``cv`` is the
    coefficient of variation of the service distribution.  ``cv = 1``
    recovers the M/M/1 curve; ``cv = 0`` is M/D/1.
    """

    capacity = 1.0

    def __init__(self, cv: float = 1.0) -> None:
        if cv < 0.0:
            raise ValueError(f"coefficient of variation must be >= 0, got {cv}")
        self.cv = float(cv)
        self._k = (1.0 + cv * cv) / 2.0

    def value(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        if load >= 1.0:
            return math.inf
        return load + self._k * load * load / (1.0 - load)

    def derivative(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        if load >= 1.0:
            return math.inf
        u = 1.0 - load
        return 1.0 + self._k * (2.0 * load * u + load * load) / (u * u)

    def second_derivative(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        if load >= 1.0:
            return math.inf
        u = 1.0 - load
        return self._k * 2.0 / (u * u * u)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MG1Curve(cv={self.cv})"


class MD1Curve(MG1Curve):
    """M/D/1 mean number in system (deterministic service)."""

    def __init__(self) -> None:
        super().__init__(cv=0.0)


class QuadraticCurve(ServiceCurve):
    """The Corollary-2 curve ``g(x) = a x^2``.

    With the *separable* constraint ``f(r) = sum_i r_i^2`` (note: sum of
    squares, not the square of the sum), the allocation ``C_i = r_i^2``
    makes every Nash equilibrium Pareto optimal.  This class is the
    square-of-total variant used when the constraint really is a curve
    of total load; the separable constraint itself lives in
    :class:`repro.queueing.constraints.FeasibilitySet` via per-user
    curves.
    """

    capacity = math.inf

    def __init__(self, a: float = 1.0) -> None:
        if a <= 0.0:
            raise ValueError(f"coefficient must be positive, got {a}")
        self.a = float(a)

    def value(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        return self.a * load * load

    def derivative(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        return 2.0 * self.a * load

    def second_derivative(self, load: float) -> float:
        if load < 0.0:
            raise ValueError(f"load must be nonnegative, got {load}")
        return 2.0 * self.a

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuadraticCurve(a={self.a})"
