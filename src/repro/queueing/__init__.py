"""Queueing-theory substrate.

The paper's switch is an M/M/1 queue; its feasibility theory (which
congestion vectors ``c`` a work-conserving discipline can realize for a
given rate vector ``r``) is what every allocation function must respect.
This package provides:

* *service curves* ``g`` mapping total offered load to total mean queue
  (M/M/1's ``x/(1-x)``, the general M/G/1 Pollaczek-Khinchine curve,
  and the quadratic curve used by Corollary 2);
* the feasibility *constraint* ``F(r, c) = sum(c) - g(sum(r))`` together
  with the Coffman-Mitrani subset inequalities;
* closed-form M/M/1 and priority-queue formulas used to validate the
  discrete-event simulator.
"""

from repro.queueing.service_curves import (
    MD1Curve,
    MG1Curve,
    MM1Curve,
    QuadraticCurve,
    ServiceCurve,
)
from repro.queueing.constraints import (
    FeasibilitySet,
    constraint_residual,
    is_feasible,
    subset_slacks,
)
from repro.queueing.mm1 import (
    mm1_mean_delay,
    mm1_mean_queue,
    mm1_utilization,
)
from repro.queueing.priority import (
    nonpreemptive_priority_queues,
    preemptive_priority_queues,
)

__all__ = [
    "ServiceCurve",
    "MM1Curve",
    "MG1Curve",
    "MD1Curve",
    "QuadraticCurve",
    "FeasibilitySet",
    "constraint_residual",
    "is_feasible",
    "subset_slacks",
    "mm1_mean_queue",
    "mm1_mean_delay",
    "mm1_utilization",
    "preemptive_priority_queues",
    "nonpreemptive_priority_queues",
]
