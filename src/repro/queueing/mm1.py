"""Closed-form M/M/1 quantities.

Unit-rate exponential server throughout (the paper normalizes the
service rate to 1); arrival rates are therefore also utilizations.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.numerics.tolerances import is_zero


def mm1_utilization(arrival_rate: float, service_rate: float = 1.0) -> float:
    """Server utilization ``rho = lambda / mu``."""
    if arrival_rate < 0.0:
        raise ValueError(f"arrival rate must be nonnegative, got {arrival_rate}")
    if service_rate <= 0.0:
        raise ValueError(f"service rate must be positive, got {service_rate}")
    return arrival_rate / service_rate


def mm1_mean_queue(arrival_rate: float, service_rate: float = 1.0) -> float:
    """Mean number in system, ``rho / (1 - rho)`` (``inf`` if unstable)."""
    rho = mm1_utilization(arrival_rate, service_rate)
    if rho >= 1.0:
        return math.inf
    return rho / (1.0 - rho)


def mm1_mean_delay(arrival_rate: float, service_rate: float = 1.0) -> float:
    """Mean sojourn time ``1 / (mu - lambda)`` (``inf`` if unstable)."""
    if service_rate <= 0.0:
        raise ValueError(f"service rate must be positive, got {service_rate}")
    if arrival_rate >= service_rate:
        return math.inf
    return 1.0 / (service_rate - arrival_rate)


def mm1_queue_distribution(arrival_rate: float, max_n: int,
                           service_rate: float = 1.0) -> np.ndarray:
    """P(N = n) for n = 0..max_n: geometric ``(1-rho) rho^n``."""
    rho = mm1_utilization(arrival_rate, service_rate)
    if rho >= 1.0:
        raise ValueError("queue-length distribution requires rho < 1")
    n = np.arange(max_n + 1)
    return (1.0 - rho) * rho ** n


def proportional_split(rates: Sequence[float],
                       service_rate: float = 1.0) -> np.ndarray:
    """Per-user mean queues under any user-oblivious discipline.

    When the discipline treats packets symmetrically without regard to
    their source (FIFO, preemptive LIFO, processor sharing, random
    order, packet-level polling), each user's share of the mean queue
    is proportional to their arrival rate — the paper's *proportional*
    allocation ``C_i = r_i / (1 - sum r)``.
    """
    r = np.asarray(rates, dtype=float)
    if np.any(r < 0.0):
        raise ValueError(f"rates must be nonnegative, got {r}")
    total = float(r.sum())
    if total >= service_rate:
        return np.full(r.shape, math.inf)
    rho = total / service_rate
    if is_zero(total):
        return np.zeros_like(r)
    return (rho / (1.0 - rho)) * (r / total)
