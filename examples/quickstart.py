#!/usr/bin/env python3
"""Quickstart: selfish users on one switch, FIFO vs Fair Share.

Three users with different congestion sensitivities share a unit-rate
M/M/1 switch.  We compute the Nash equilibrium their selfishness drives
the system to under the FIFO (proportional) discipline and under Fair
Share, and print the allocations side by side: Fair Share gives the
congestion-averse user a far better deal without central coordination.

Run:  python examples/quickstart.py
"""

from repro import (
    FairShareAllocation,
    PowerUtility,
    ProportionalAllocation,
    solve_nash,
)
from repro.experiments.base import Table


def main() -> None:
    # gamma is how much a user hates queueing; q > 1 means the pain
    # accelerates (these utilities are concave, i.e. in the paper's AU).
    users = [
        PowerUtility(gamma=0.4, q=1.5),    # throughput-hungry bulk user
        PowerUtility(gamma=1.2, q=1.5),    # balanced user
        PowerUtility(gamma=4.0, q=1.5),    # latency-sensitive user
    ]
    labels = ["bulk", "balanced", "interactive"]

    for switch in (ProportionalAllocation(), FairShareAllocation()):
        equilibrium = solve_nash(switch, users)
        table = Table(
            title=f"Nash equilibrium under {switch.name}",
            headers=["user", "rate r_i", "mean queue c_i",
                     "utility U_i"])
        for i, label in enumerate(labels):
            table.add_row(label, float(equilibrium.rates[i]),
                          float(equilibrium.congestion[i]),
                          float(equilibrium.utilities[i]))
        print(table.render())
        print(f"total load {equilibrium.rates.sum():.3f}, "
              f"total queue {equilibrium.congestion.sum():.3f}, "
              f"certified (max unilateral gain "
              f"{equilibrium.max_gain:.1e})\n")

    print("Under Fair Share the interactive user's queue is insulated "
          "from the bulk user's appetite;\nunder FIFO everyone shares "
          "one queue and the bulk user's traffic taxes everyone.")


if __name__ == "__main__":
    main()
