#!/usr/bin/env python3
"""The Section-5.5 generalization: load sharing on a compute cluster.

The paper closes by noting that its formalism covers *any* resource
whose quality degrades with total usage — file location, load sharing —
not just packet switches.  This example re-skins the machinery for a
shared batch-compute service: tenants submit jobs at a chosen rate, the
scheduler is an M/G/1 server (deterministic-ish job sizes, cv = 0.5),
and "congestion" is each tenant's backlog of queued jobs.

Everything transfers verbatim: a FIFO scheduler lets a heavy tenant tax
everyone and invites overload; a serial (Fair Share) scheduler insulates
light tenants, caps each tenant's backlog by the unanimity bound, and
makes truthful self-optimization safe.

Run:  python examples/load_sharing.py
"""

from repro import FairShareAllocation, ProportionalAllocation, solve_nash
from repro.experiments.base import Table
from repro.game.protection import protection_bound
from repro.queueing.service_curves import MG1Curve
from repro.users.families import PowerUtility

#: Job-size variability of the batch service (cv = 0.5: semi-regular).
CURVE = MG1Curve(cv=0.5)

#: Tenants: a bulk analytics team, a nightly-ETL team, and an
#: interactive-notebook team that hates backlog.
TENANTS = [
    ("analytics", PowerUtility(gamma=0.5, q=1.4)),
    ("etl", PowerUtility(gamma=1.0, q=1.4)),
    ("notebooks", PowerUtility(gamma=3.5, q=1.4)),
]


def main() -> None:
    profile = [utility for _, utility in TENANTS]
    table = Table(
        title="Self-optimizing tenants on a shared batch service "
              "(M/G/1, cv=0.5)",
        headers=["scheduler", "tenant", "job rate", "mean backlog",
                 "utility"])
    for scheduler in (ProportionalAllocation(curve=CURVE),
                      FairShareAllocation(curve=CURVE)):
        equilibrium = solve_nash(scheduler, profile)
        for i, (name, _) in enumerate(TENANTS):
            table.add_row(scheduler.name, name,
                          float(equilibrium.rates[i]),
                          float(equilibrium.congestion[i]),
                          float(equilibrium.utilities[i]))
    print(table.render())

    # The out-of-equilibrium guarantee, in cluster terms: however the
    # other tenants misbehave, a serial scheduler caps a 0.1-rate
    # tenant's backlog at the all-alike bound.
    bound = protection_bound(0.1, len(TENANTS), curve=CURVE)
    print(f"\nserial-scheduler backlog cap for a rate-0.1 tenant among "
          f"{len(TENANTS)}: {bound:.4f} jobs")
    print("The queueing game is the paper's; only the nouns changed — "
          "exactly the Section-5.5 point.")


if __name__ == "__main__":
    main()
