#!/usr/bin/env python3
"""Strategic sophistication: leaders and liars, FIFO vs Fair Share.

Two demonstrations of why Fair Share removes the payoff to strategic
sophistication:

1. *Stackelberg leadership* — a user who commits first and lets the
   other equilibrate gains under FIFO (on the multi-equilibrium witness
   game) but gains nothing under Fair Share (Theorem 5).
2. *Misreporting* — when the switch asks users to declare their
   preferences and plays the declared profile's equilibrium, a FIFO
   switch rewards exaggerating one's throughput appetite; the Fair
   Share mechanism B^FS is strategy-proof (Theorem 6).

Run:  python examples/strategic_users.py   (takes ~1 minute)
"""

import numpy as np

from repro import FairShareAllocation, ProportionalAllocation
from repro.experiments.base import Table
from repro.game.revelation import misreport_gain
from repro.game.stackelberg import leader_advantage
from repro.game.witnesses import witness_profile
from repro.users.families import ExponentialUtility


def stackelberg_demo() -> None:
    profile = witness_profile()
    table = Table(
        title="Stackelberg leader advantage (witness game)",
        headers=["discipline", "leader 0 advantage",
                 "leader 1 advantage"])
    for allocation in (ProportionalAllocation(), FairShareAllocation()):
        row = [allocation.name]
        for leader in (0, 1):
            row.append(leader_advantage(allocation, profile, leader,
                                        n_scan=21))
        table.add_row(*row)
    print(table.render())
    print("A FIFO leader steers the game to her favorite equilibrium; "
          "a Fair Share leader gains nothing.\n")


def revelation_demo() -> None:
    truth = [
        ExponentialUtility(alpha=3.0, beta=6.0, gamma=1.0, nu=6.0,
                           r_ref=0.2, c_ref=0.5),
        ExponentialUtility(alpha=1.8, beta=6.0, gamma=1.0, nu=6.0,
                           r_ref=0.15, c_ref=0.4),
    ]
    scales = np.concatenate([np.logspace(-0.5, 0.5, 9),
                             np.linspace(1.02, 1.3, 9)])
    lies = [ExponentialUtility(alpha=float(truth[0].alpha * s), beta=6.0,
                               gamma=1.0, nu=6.0, r_ref=0.2, c_ref=0.5)
            for s in scales]
    table = Table(
        title="Declared-preference mechanism: best gain from lying "
              "(user 0)",
        headers=["mechanism", "gain from best lie"])
    for allocation in (ProportionalAllocation(), FairShareAllocation()):
        outcome = misreport_gain(allocation, truth, 0, lies)
        table.add_row(allocation.name, outcome.gain)
    print(table.render())
    print("Under B^FS the truth is (weakly) optimal: the switch can "
          "safely ask users what they want.")


def main() -> None:
    stackelberg_demo()
    revelation_demo()


if __name__ == "__main__":
    main()
