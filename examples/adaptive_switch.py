#!/usr/bin/env python3
"""An adaptive Fair Share switch that learns its users' rates.

The Table-1 ladder needs the users' rates to build its priority
classes — information a real switch does not have.  The adaptive
variant estimates each user's rate online (EWMA over interarrivals)
and rebuilds the thinning weights as it learns, approaching the oracle
ladder's allocation with no configuration at all.

The demo also stresses the adaptation: halfway through, a formerly
modest user turns into a heavy sender, and the switch's estimates (and
thus its priority structure) follow.

Run:  python examples/adaptive_switch.py
"""

import numpy as np

from repro import FairShareAllocation
from repro.experiments.base import Table
from repro.sim.queues import AdaptiveFairShareQueue
from repro.sim.runner import SimulationConfig, simulate
from repro.numerics.rng import default_rng

RATES = np.array([0.1, 0.2, 0.3])


def static_comparison() -> None:
    fs = FairShareAllocation()
    oracle = simulate(SimulationConfig(
        rates=RATES, policy="fair-share", horizon=60000.0,
        warmup=3000.0, seed=5))
    adaptive = simulate(SimulationConfig(
        rates=RATES, policy="adaptive-fair-share", horizon=60000.0,
        warmup=3000.0, seed=5))
    analytic = fs.congestion(RATES)
    table = Table(
        title="Oracle ladder vs adaptive ladder (static rates)",
        headers=["user", "rate", "C^FS (theory)", "oracle ladder sim",
                 "adaptive ladder sim"])
    for i in range(RATES.size):
        table.add_row(i, float(RATES[i]), float(analytic[i]),
                      float(oracle.mean_queues[i]),
                      float(adaptive.mean_queues[i]))
    print(table.render())
    print()


def rate_change_tracking() -> None:
    """Drive the adaptive queue directly with a mid-run rate change."""
    rng = default_rng(11)
    queue = AdaptiveFairShareQueue(2, ewma=0.05, rebuild_every=100)
    from repro.sim.packet import Packet

    clock = 0.0
    snapshots = []
    for phase, (r0, r1, steps) in enumerate((( 0.3, 0.1, 6000),
                                             (0.3, 0.6, 6000))):
        for _ in range(steps):
            # Interleave the two Poisson streams by competing clocks.
            gap0 = rng.exponential(1.0 / r0)
            gap1 = rng.exponential(1.0 / r1)
            user = 0 if gap0 < gap1 else 1
            clock += min(gap0, gap1)
            queue.push(Packet(user=user, arrival_time=clock), rng=rng)
            queue.complete(rng)
        snapshots.append(queue.rate_estimates.copy())
    table = Table(
        title="Adaptive rate estimates before/after user 1 ramps up",
        headers=["phase", "true rates", "estimated rates"])
    table.add_row("user 1 quiet", "(0.30, 0.10)",
                  str(np.round(snapshots[0], 3)))
    table.add_row("user 1 heavy", "(0.30, 0.60)",
                  str(np.round(snapshots[1], 3)))
    print(table.render())
    print("\nThe switch re-learns who the heavy sender is and re-ranks "
          "its priority ladder accordingly —\nno operator input, no "
          "user cooperation.")


def main() -> None:
    static_comparison()
    rate_change_tracking()


if __name__ == "__main__":
    main()
