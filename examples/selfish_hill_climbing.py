#!/usr/bin/env python3
"""Greed, end to end: blind hill climbers on a simulated switch.

Two selfish flow controllers know nothing about the switch, each other,
or queueing theory.  Every episode they probe a slightly different
Poisson rate, watch their own measured (throughput, congestion), and
keep whatever made them happier — the paper's "adjust the knob until
the picture looks best" optimizer.

Under a Fair Share ladder the loop settles near the analytic Nash
equilibrium; under FIFO the same agents interact through one shared
queue and land elsewhere.  This is Theorem 5's robust-convergence story
told with packets instead of calculus.

Run:  python examples/selfish_hill_climbing.py   (takes ~1 minute)
"""

from repro import FairShareAllocation, ProportionalAllocation, solve_nash
from repro.experiments.base import Table
from repro.sim.agents import AgentConfig, run_selfish_loop
from repro.users.families import ExponentialUtility

PROFILE = [
    ExponentialUtility(alpha=2.5, beta=6.0, gamma=1.0, nu=6.0,
                       r_ref=0.2, c_ref=0.5),
    ExponentialUtility(alpha=1.6, beta=6.0, gamma=1.0, nu=6.0,
                       r_ref=0.15, c_ref=0.4),
]


def run_switch(policy_name: str, allocation) -> None:
    nash = solve_nash(allocation, PROFILE)
    configs = [AgentConfig(initial_rate=0.10, step=0.04, decay=0.97)
               for _ in PROFILE]
    loop = run_selfish_loop(PROFILE,
                            policy_factory=lambda rates: policy_name,
                            n_episodes=50, episode_length=4000.0,
                            warmup=400.0, agent_configs=configs, seed=3)
    table = Table(
        title=f"{allocation.name}: hill climbers vs analytic Nash",
        headers=["user", "start", "final rate", "Nash rate", "gap"])
    for i in range(len(PROFILE)):
        table.add_row(i, 0.10, float(loop.final_rates[i]),
                      float(nash.rates[i]),
                      float(abs(loop.final_rates[i] - nash.rates[i])))
    print(table.render())
    # A little convergence trace every tenth episode.
    marks = loop.rate_history[::10]
    trace = "  trace: " + "  ->  ".join(
        "(" + ", ".join(f"{x:.3f}" for x in row) + ")" for row in marks)
    print(trace + "\n")


def main() -> None:
    run_switch("fair-share", FairShareAllocation())
    run_switch("fifo", ProportionalAllocation())
    print("No agent ever saw the discipline, the other user, or a "
          "formula — only its own noisy measurements.")


if __name__ == "__main__":
    main()
