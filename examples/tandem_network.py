#!/usr/bin/env python3
"""A network of switches (the paper's Section-5.4 future work, built).

Topology: two switches; user A crosses only switch 0, user B only
switch 1, and user C crosses both.  Each user cares about her *total*
congestion along her route.  With Fair Share at every hop, the selfish
equilibrium is computed by the same solvers as the single-switch game,
the two-hop user stays protected by the sum of per-hop bounds, and a
packet-level tandem simulation probes the Poisson-output approximation
the analytic model relies on.

Run:  python examples/tandem_network.py
"""

import numpy as np

from repro import FairShareAllocation, ProportionalAllocation, solve_nash
from repro.experiments.base import Table
from repro.network import NetworkAllocation, Route, TandemConfig, \
    simulate_tandem
from repro.users.families import PowerUtility

PROFILE = [PowerUtility(gamma=0.5, q=1.5),    # A: one hop
           PowerUtility(gamma=0.8, q=1.5),    # B: one hop
           PowerUtility(gamma=0.6, q=1.5)]    # C: two hops
LABELS = ["A (S0)", "B (S1)", "C (S0+S1)"]


def main() -> None:
    table = Table(title="Selfish equilibrium on the crossing network",
                  headers=["switch discipline", "user", "rate",
                           "total congestion", "utility"])
    for factory in (FairShareAllocation, ProportionalAllocation):
        network = NetworkAllocation(
            switches=[factory(), factory()],
            routes=[Route([0]), Route([1]), Route([0, 1])])
        equilibrium = solve_nash(network, PROFILE)
        for i, label in enumerate(LABELS):
            table.add_row(factory().name, label,
                          float(equilibrium.rates[i]),
                          float(equilibrium.congestion[i]),
                          float(equilibrium.utilities[i]))
    print(table.render())
    print("The two-hop user pays congestion at both switches, so she "
          "sends less;\nFair Share still insulates each hop's smaller "
          "users from its bigger ones.\n")

    # Poisson-output probe: everyone crosses both switches.
    rates = np.array([0.1, 0.2, 0.3])
    analytic = NetworkAllocation(
        switches=[FairShareAllocation(), FairShareAllocation()],
        routes=[Route([0, 1])] * 3).congestion(rates)
    sim = simulate_tandem(TandemConfig(
        rates=rates, policies=("fair-share", "fair-share"),
        horizon=60000.0, warmup=3000.0, seed=11))
    probe = Table(
        title="Fair Share ladder tandem: Poisson approximation check",
        headers=["user", "analytic total c", "simulated total c",
                 "relative error"])
    for i in range(3):
        expected = float(analytic[i])
        measured = float(sim.total_mean_queues[i])
        probe.add_row(i, expected, measured,
                      abs(measured - expected) / expected)
    print(probe.render())
    print("The second hop's input is the ladder's output — not quite "
          "Poisson — so the analytic model is an\napproximation there, "
          "mild for small users and largest for the biggest one, as "
          "the paper anticipates.")


if __name__ == "__main__":
    main()
