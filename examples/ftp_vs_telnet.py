#!/usr/bin/env python3
"""The Section-5.2 workload: FTP-style vs Telnet-style users.

The paper motivates Fair Queueing with exactly this mix: bulk-transfer
users who care mostly about throughput, interactive users who care
mostly about delay.  We build that population, let every user
self-optimize, and then *validate the equilibrium on the packet-level
simulator*: the switch is run as an actual FIFO queue and as the
Table-1 Fair Share priority ladder with the equilibrium rates, and the
simulated per-user queues are compared with the analytic allocation.

Run:  python examples/ftp_vs_telnet.py
"""

import numpy as np

from repro import FairShareAllocation, ProportionalAllocation, solve_nash
from repro.experiments.base import Table
from repro.sim.runner import SimulationConfig, simulate
from repro.users.families import PowerUtility

#: Two FTP-ish flows (mild congestion aversion) and two Telnet-ish
#: flows (steep congestion aversion): all concave, all in AU.
PROFILE = [
    PowerUtility(gamma=0.35, q=1.3),
    PowerUtility(gamma=0.5, q=1.3),
    PowerUtility(gamma=5.0, q=1.3),
    PowerUtility(gamma=8.0, q=1.3),
]
LABELS = ["ftp-1", "ftp-2", "telnet-1", "telnet-2"]


def delay_of(rates: np.ndarray, congestion: np.ndarray) -> np.ndarray:
    """Per-user mean sojourn time via Little's law (c = r d)."""
    return congestion / rates


def main() -> None:
    for switch, policy in ((ProportionalAllocation(), "fifo"),
                           (FairShareAllocation(), "fair-share")):
        equilibrium = solve_nash(switch, PROFILE)
        rates = equilibrium.rates
        sim = simulate(SimulationConfig(rates=rates, policy=policy,
                                        horizon=60000.0, warmup=3000.0,
                                        seed=42))
        delays = delay_of(rates, equilibrium.congestion)
        sim_delays = delay_of(sim.throughputs, sim.mean_queues)
        table = Table(
            title=f"{switch.name}: selfish equilibrium, analytic vs "
                  "packet simulation",
            headers=["user", "rate", "c_i (analytic)", "c_i (sim)",
                     "delay (analytic)", "delay (sim)"])
        for i, label in enumerate(LABELS):
            table.add_row(label, float(rates[i]),
                          float(equilibrium.congestion[i]),
                          float(sim.mean_queues[i]), float(delays[i]),
                          float(sim_delays[i]))
        print(table.render())
        telnet_delay = float(delays[2:].mean())
        ftp_rate = float(rates[:2].sum())
        print(f"  -> telnet mean delay {telnet_delay:.3f}, "
              f"ftp aggregate throughput {ftp_rate:.3f}\n")

    print("Fair Share mirrors the paper's Fair Queueing findings: the "
          "interactive flows see low delay because\nthe ladder serves "
          "their small rates at high priority, while the bulk flows "
          "still get the residual capacity.")


if __name__ == "__main__":
    main()
