#!/usr/bin/env python3
"""Protection against a malicious flooder (Theorem 8, out of equilibrium).

A well-behaved user sends at a fixed modest rate while an adversary
ramps her rate far past the switch capacity.  Under FIFO the victim's
queue diverges with the attack; under Fair Share it never exceeds the
symmetric bound g(N r)/N no matter what the attacker does — the
"converse of the Golden Rule".

Both the analytic allocations and a packet-level simulation of the
attack are shown.

Run:  python examples/malicious_flooder.py
"""

import numpy as np

from repro import FairShareAllocation, ProportionalAllocation
from repro.experiments.base import Table
from repro.game.protection import protection_bound
from repro.sim.runner import SimulationConfig, simulate

VICTIM_RATE = 0.15
ATTACK_RATES = (0.2, 0.5, 0.8, 1.2, 2.0)


def main() -> None:
    fifo = ProportionalAllocation()
    fs = FairShareAllocation()
    bound = protection_bound(VICTIM_RATE, 2)
    table = Table(
        title=f"Victim's mean queue (rate {VICTIM_RATE}); protection "
              f"bound g(2r)/2 = {bound:.4f}",
        headers=["attacker rate", "FIFO victim c", "FS victim c",
                 "FS within bound"])
    for attack in ATTACK_RATES:
        rates = np.array([VICTIM_RATE, attack])
        fifo_c = float(fifo.congestion(rates)[0])
        fs_c = float(fs.congestion(rates)[0])
        table.add_row(attack, fifo_c, fs_c, fs_c <= bound + 1e-12)
    print(table.render())

    # Packet-level check of the worst stable-ish attack point.
    attack = 0.8
    rates = np.array([VICTIM_RATE, attack])
    sim_fs = simulate(SimulationConfig(rates=rates, policy="fair-share",
                                       horizon=40000.0, warmup=2000.0,
                                       seed=7))
    print(f"\nsimulated Fair Share ladder under attack at rate "
          f"{attack}: victim c = {sim_fs.mean_queues[0]:.4f} "
          f"(bound {bound:.4f})")
    sim_fifo = simulate(SimulationConfig(rates=rates, policy="fifo",
                                         horizon=40000.0, warmup=2000.0,
                                         seed=7))
    print(f"simulated FIFO under the same attack:        victim c = "
          f"{sim_fifo.mean_queues[0]:.4f}")
    print("\nFair Share caps the damage at what the victim would "
          "suffer among clones of herself;\nFIFO lets the flooder "
          "take the victim down with her.")


if __name__ == "__main__":
    main()
